#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints. Everything runs
# offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "CI OK"
