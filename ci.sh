#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints, docs, and a smoke
# run of the recording pipeline. Everything runs offline — the
# workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
# --workspace: a plain root build only covers the umbrella package and
# would skip the bsub-bench binaries the smoke steps below execute.
cargo build --release --workspace

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== dynamics --smoke (recording pipeline) =="
# A tiny synthetic trace exercises the event/time-series recorders end
# to end; artifacts go to a scratch directory so the committed figure
# CSVs are untouched.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/dynamics --smoke
for artifact in timeseries_fig7.csv events_fig7.jsonl; do
    test -s "$SMOKE_DIR/$artifact" || {
        echo "missing smoke artifact: $artifact" >&2
        exit 1
    }
done

echo "== degradation --smoke (fault-injection pipeline) =="
# The same trace under the fault-intensity grid: exercises contact
# loss, truncation, churn, and control-plane corruption end to end,
# including the monotone-degradation assertion inside the sweep.
BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/degradation --smoke
test -s "$SMOKE_DIR/degradation.csv" || {
    echo "missing smoke artifact: degradation.csv" >&2
    exit 1
}

echo "== perf --smoke --check (metrics & perf-regression gate) =="
# Profiles the smoke sweep with the bsub-obs metrics layer attached
# and gates on the committed BENCH_perf.json baseline: median-of-N on
# the host-normalized CPU time and the deterministic byte counters.
# BSUB_PERF_TOLERANCE widens the time factor on known-noisy hosts.
BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/perf --smoke --check
for artifact in metrics_perf_smoke.json perf_perf_smoke.csv BENCH_perf.json; do
    test -s "$SMOKE_DIR/$artifact" || {
        echo "missing perf artifact: $artifact" >&2
        exit 1
    }
done

echo "CI OK"
