#!/usr/bin/env bash
# Local CI gate: build, tests, formatting, lints, docs, and smoke runs
# of the recording, fault-injection, perf-gate, scale, matching,
# net-cluster, and broker pipelines. Everything runs offline — the
# workspace has no external dependencies.
#
# Usage:
#   ./ci.sh                full gate (every stage below)
#   ./ci.sh --quick        build + test only (the tier-1 inner loop)
#   ./ci.sh --stage NAME   build, then only the named stage — the
#                          local loop for debugging one smoke gate.
#                          Names: test, fmt, clippy, doc, dynamics,
#                          degradation, perf, scale, scale-sharded,
#                          matching, net-cluster, broker-bench
#
# Smoke artifacts go to BSUB_SMOKE_DIR when set (hosted CI sets it to
# upload them), otherwise to a scratch directory removed on exit.
# BSUB_PERF_TOLERANCE widens the perf gate's time factor on known-noisy
# hosts. BSUB_NET_SMOKE_TIMEOUT bounds the net-cluster smoke stage in
# seconds (default 120).
set -euo pipefail
cd "$(dirname "$0")"

STAGES="test fmt clippy doc dynamics degradation perf scale scale-sharded matching net-cluster broker-bench"
QUICK=0
STAGE_FILTER=""
while [ $# -gt 0 ]; do
    case "$1" in
    --quick) QUICK=1 ;;
    --stage)
        shift
        if [ $# -eq 0 ]; then
            echo "--stage requires a name (one of: $STAGES)" >&2
            exit 2
        fi
        STAGE_FILTER="$1"
        case " $STAGES " in
        *" $STAGE_FILTER "*) ;;
        *)
            echo "unknown stage: $STAGE_FILTER (one of: $STAGES)" >&2
            exit 2
            ;;
        esac
        ;;
    *)
        echo "unknown flag: $1 (supported: --quick, --stage NAME)" >&2
        exit 2
        ;;
    esac
    shift
done

if [ "$QUICK" = 1 ] && [ -n "$STAGE_FILTER" ]; then
    echo "--quick and --stage are mutually exclusive" >&2
    exit 2
fi

# With --stage set, only the named stage runs (the release build always
# does — every smoke stage executes its binaries).
want() {
    [ -z "$STAGE_FILTER" ] || [ "$STAGE_FILTER" = "$1" ]
}

STAGE_NAMES=()
STAGE_SECS=()
CURRENT_STAGE=""
STAGE_START=0

stage() {
    stage_end
    CURRENT_STAGE="$1"
    STAGE_START=$SECONDS
    echo "== $CURRENT_STAGE =="
}

stage_end() {
    if [ -n "$CURRENT_STAGE" ]; then
        STAGE_NAMES+=("$CURRENT_STAGE")
        STAGE_SECS+=($((SECONDS - STAGE_START)))
        CURRENT_STAGE=""
    fi
}

timing_summary() {
    stage_end
    echo
    echo "== stage timings =="
    for i in "${!STAGE_NAMES[@]}"; do
        printf '%4ss  %s\n' "${STAGE_SECS[$i]}" "${STAGE_NAMES[$i]}"
    done
    printf '%4ss  total\n' "$SECONDS"
}

stage "build (cargo build --release --workspace)"
# --workspace: a plain root build only covers the umbrella package and
# would skip the bsub-bench binaries the smoke stages below execute.
cargo build --release --workspace

if want test; then
    stage "test (cargo test --workspace)"
    # `-- -q` quiets the per-test lines while keeping cargo's `Running` /
    # `Doc-tests` headers, so the count summary below can name each suite.
    TEST_LOG="$(mktemp)"
    cargo test --workspace -- -q 2>&1 | tee "$TEST_LOG"

    test_counts() {
        echo
        echo "== test counts =="
        awk '
            / Running / {
                name = $0
                sub(/^.* Running +/, "", name)
                src = name
                sub(/ \(.*\)$/, "", src)
                bin = name
                sub(/^.*\(/, "", bin)
                sub(/\)$/, "", bin)
                sub(/^.*\//, "", bin)
                sub(/-[0-9a-f]+$/, "", bin)
                name = bin " (" src ")"
                next
            }
            / Doc-tests / { name = "doc-tests " $NF; next }
            /^test result:/ {
                passed = $4
                total += passed
                printf "%6d passed  %s\n", passed, name
            }
            END { printf "%6d passed  total\n", total }
        ' "$TEST_LOG"
    }

    if [ "$QUICK" = 1 ]; then
        test_counts
        rm -f "$TEST_LOG"
        timing_summary
        echo "CI OK (quick)"
        exit 0
    fi
    rm -f "$TEST_LOG"
fi

if want fmt; then
    stage "fmt (cargo fmt --check)"
    cargo fmt --check
fi

if want clippy; then
    stage "clippy (-D warnings)"
    cargo clippy --all-targets -- -D warnings
fi

if want doc; then
    stage "doc (-D warnings)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
fi

if [ -n "${BSUB_SMOKE_DIR:-}" ]; then
    SMOKE_DIR="$BSUB_SMOKE_DIR"
    mkdir -p "$SMOKE_DIR"
else
    SMOKE_DIR="$(mktemp -d)"
    trap 'rm -rf "$SMOKE_DIR"' EXIT
fi

if want dynamics; then
    stage "dynamics --smoke (recording pipeline)"
    # A tiny synthetic trace exercises the event/time-series recorders end
    # to end; artifacts go to the smoke directory so the committed figure
    # CSVs are untouched.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/dynamics --smoke
    for artifact in timeseries_fig7.csv events_fig7.jsonl; do
        test -s "$SMOKE_DIR/$artifact" || {
            echo "missing smoke artifact: $artifact" >&2
            exit 1
        }
    done
fi

if want degradation; then
    stage "degradation --smoke (fault-injection pipeline)"
    # The same trace under the fault-intensity grid: exercises contact
    # loss, truncation, churn, and control-plane corruption end to end,
    # including the monotone-degradation assertion inside the sweep.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/degradation --smoke
    test -s "$SMOKE_DIR/degradation.csv" || {
        echo "missing smoke artifact: degradation.csv" >&2
        exit 1
    }
fi

if want perf; then
    stage "perf --smoke --check (metrics & perf-regression gate)"
    # Profiles the smoke sweep with the bsub-obs metrics layer attached
    # and gates on the committed BENCH_perf.json baseline: median-of-N on
    # the host-normalized CPU time and the deterministic byte counters.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/perf --smoke --check
    for artifact in metrics_perf_smoke.json perf_perf_smoke.csv BENCH_perf.json; do
        test -s "$SMOKE_DIR/$artifact" || {
            echo "missing perf artifact: $artifact" >&2
            exit 1
        }
    done
fi

if want scale; then
    stage "scale --smoke --check (packed-kernel scale harness)"
    # Streams the 25k–100k-node synthetic contact schedules through the
    # word-packed TCBF kernels and gates throughput on the same baseline.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/scale --smoke --check
    test -s "$SMOKE_DIR/scale_smoke.csv" || {
        echo "missing smoke artifact: scale_smoke.csv" >&2
        exit 1
    }
fi

if want scale-sharded; then
    if [ ! -s "$SMOKE_DIR/scale_smoke.csv" ]; then
        # The shard-invariance diff needs the serial run's CSV; produce
        # it here when the scale stage was filtered out.
        BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/scale --smoke >/dev/null
    fi
    stage "scale --smoke --shards 4 (sharded engine, shard-invariance)"
    # The same sweep on the 4-shard barrier engine. Beyond exercising the
    # parallel path end to end, this asserts the shard-invariance
    # contract: every deterministic CSV column (all but the shards column
    # itself) must be byte-identical to the serial run above.
    mkdir -p "$SMOKE_DIR/sharded"
    BSUB_RESULTS_DIR="$SMOKE_DIR/sharded" ./target/release/scale --smoke --shards 4 --check
    test -s "$SMOKE_DIR/sharded/scale_smoke.csv" || {
        echo "missing smoke artifact: sharded/scale_smoke.csv" >&2
        exit 1
    }
    if ! diff <(cut -d, -f1,2,4- "$SMOKE_DIR/scale_smoke.csv") \
        <(cut -d, -f1,2,4- "$SMOKE_DIR/sharded/scale_smoke.csv"); then
        echo "sharded scale run diverged from the serial run" >&2
        exit 1
    fi
fi

if want matching; then
    stage "matching --smoke --check (subscription-aggregation index)"
    # Aggregates the smoke subscription sets, proves index-vs-reference
    # equality in-process, gates on the committed BENCH_perf.json entry,
    # and diffs the deterministic smoke CSV against the committed copy —
    # every column is a counter, so the file must match byte for byte.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/matching --smoke --check
    test -s "$SMOKE_DIR/matching_smoke.csv" || {
        echo "missing smoke artifact: matching_smoke.csv" >&2
        exit 1
    }
    if ! diff "$SMOKE_DIR/matching_smoke.csv" results/matching_smoke.csv; then
        echo "matching smoke run diverged from the committed artifact" >&2
        exit 1
    fi
fi

if want net-cluster; then
    stage "net-cluster --smoke --check (networked loopback cluster + live stats)"
    # Spins up a 3-process loopback cluster (coordinator + 2 workers over
    # Unix-domain sockets) running the smoke workload through the real
    # networked runtime with the stats plane on (STATS deltas every 100 ms
    # by default), then diffs every deterministic report column against
    # the serial simulator's — byte for byte. While the cluster runs, the
    # coordinator's stats endpoint is scraped from a separate process to
    # prove the merged cluster-wide report is retrievable live; the binary
    # additionally self-checks that the scraped exposition equals the
    # final offline merge. The whole stage is bounded by
    # BSUB_NET_SMOKE_TIMEOUT (default 120 s): a wedged cluster is killed
    # and its partial output dumped rather than busy-polling forever.
    NET_LOG="$SMOKE_DIR/net_cluster.log"
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/net-cluster --smoke --check \
        --stats-addr "unix:$SMOKE_DIR/stats.sock" >"$NET_LOG" 2>&1 &
    NET_CLUSTER_PID=$!
    NET_DEADLINE=$((SECONDS + ${BSUB_NET_SMOKE_TIMEOUT:-120}))
    LIVE_SCRAPE=""
    while kill -0 "$NET_CLUSTER_PID" 2>/dev/null; do
        if [ "$SECONDS" -ge "$NET_DEADLINE" ]; then
            echo "net-cluster smoke exceeded ${BSUB_NET_SMOKE_TIMEOUT:-120}s; partial output:" >&2
            cat "$NET_LOG" >&2
            kill "$NET_CLUSTER_PID" 2>/dev/null || true
            wait "$NET_CLUSTER_PID" 2>/dev/null || true
            exit 1
        fi
        if [ -z "$LIVE_SCRAPE" ] \
            && OUT="$(./target/release/net-cluster --scrape "unix:$SMOKE_DIR/stats.sock" 2>/dev/null)" \
            && printf '%s' "$OUT" | grep -q '^bsub_'; then
            LIVE_SCRAPE="$OUT"
        fi
        sleep 0.05
    done
    if ! wait "$NET_CLUSTER_PID"; then
        echo "net-cluster smoke failed; output:" >&2
        cat "$NET_LOG" >&2
        exit 1
    fi
    cat "$NET_LOG"
    if [ -z "$LIVE_SCRAPE" ]; then
        echo "live scrape of the running cluster never returned a bsub_ metric" >&2
        exit 1
    fi
    for artifact in net_smoke.csv net_smoke_sim.csv net_latency.csv net_metrics.json; do
        test -s "$SMOKE_DIR/$artifact" || {
            echo "missing smoke artifact: $artifact" >&2
            exit 1
        }
    done
    if ! diff "$SMOKE_DIR/net_smoke.csv" "$SMOKE_DIR/net_smoke_sim.csv"; then
        echo "networked cluster run diverged from the serial simulator" >&2
        exit 1
    fi
fi

if want broker-bench; then
    stage "broker-bench --smoke --check (live broker serving gate)"
    # Open-loop clients against a live BrokerNode over Unix-domain
    # sockets (DESIGN.md §16): exact delivery fan-out, wall-clock
    # publish→deliver latency, and a perf entry gated on the committed
    # broker_smoke baseline.
    BSUB_RESULTS_DIR="$SMOKE_DIR" ./target/release/broker-bench --smoke --check
    test -s "$SMOKE_DIR/broker_qps.csv" || {
        echo "missing smoke artifact: broker_qps.csv" >&2
        exit 1
    }
fi

timing_summary
echo "CI OK"
