//! The two comparison protocols of the B-SUB evaluation
//! (Section VII-A):
//!
//! - [`Push`] — epidemic flooding: "a node replicates an event it
//!   stores to every node it encounters that has not received a copy."
//!   Its delivery ratio and delay are the best achievable, at the cost
//!   of the most forwardings.
//! - [`Pull`] — one-hop collection: "a node only collects messages
//!   that it is interested in from its directly encountered
//!   neighbors." The most conservative scheme: almost no overhead, but
//!   delivery requires the producer and consumer to meet directly.
//!
//! Both deliver by *exact* key matching against the consumer's own
//! interests, so neither ever produces a false delivery — the
//! false-positive metric is B-SUB-specific.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod pull;
mod push;

pub use crate::pull::Pull;
pub use crate::push::Push;
