//! PULL: one-hop interest collection.

use bsub_obs::{self as obs, Gauge};
use bsub_sim::{Link, Message, MessageId, Protocol, SimCtx, TraceEvent};
use bsub_traces::{ContactEvent, NodeId, SimTime};
use std::collections::HashSet;
use std::sync::Arc;

/// The PULL baseline: on a contact, each node announces its own
/// interests (as raw strings) and collects matching messages from the
/// peer's *own published* store. Nothing is ever relayed, so delivery
/// requires a direct producer–consumer meeting — the paper's most
/// conservative scheme, with near-optimal per-delivery overhead
/// (Fig. 7(c): "PULL actually has the best performance because it is
/// the most conservative") but the worst delivery ratio and delay.
#[derive(Debug)]
pub struct Pull {
    nodes: Vec<NodeState>,
    /// Contacts seen while profiling — schedules the sampled
    /// occupancy walk. Metrics-only state: never read by the
    /// protocol logic, untouched when profiling is off.
    occupancy_probe: u64,
}

#[derive(Debug, Default)]
struct NodeState {
    /// Messages this node itself published (nobody relays in PULL).
    /// Payloads are shared with the simulator's registry.
    published: Vec<Arc<Message>>,
    /// Message ids this node already pulled (suppresses re-transfer).
    collected: HashSet<MessageId>,
}

impl Pull {
    /// Creates PULL state for `nodes` nodes.
    #[must_use]
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes: (0..nodes).map(|_| NodeState::default()).collect(),
            occupancy_probe: 0,
        }
    }

    fn prune(&mut self, ctx: &mut SimCtx<'_>, node: NodeId, now: SimTime) {
        let published = &mut self.nodes[node.index()].published;
        let before = published.len();
        published.retain(|m| !m.is_expired(now));
        let dropped = (before - published.len()) as u64;
        if dropped > 0 {
            ctx.emit(|| TraceEvent::Expired {
                at: now,
                node,
                count: dropped,
            });
        }
    }

    /// `consumer` pulls matching messages from `producer`'s published
    /// store.
    fn pull_from(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        consumer: NodeId,
        producer: NodeId,
    ) {
        // The consumer announces its interests as raw strings (plus
        // 2-byte length prefixes), the control cost PULL pays.
        let interests: Vec<_> = ctx.subscriptions().interests_of(consumer).to_vec();
        if interests.is_empty() {
            return;
        }
        let announce: u64 = interests.iter().map(|k| 2 + k.len() as u64).sum();
        if !ctx.send_control(link, announce) {
            return;
        }
        let now = ctx.now();
        let mut pulled = Vec::new();
        {
            let producer_state = &self.nodes[producer.index()];
            let consumer_state = &self.nodes[consumer.index()];
            for msg in &producer_state.published {
                if msg.is_expired(now)
                    || consumer_state.collected.contains(&msg.id)
                    || !interests.iter().any(|k| **k == *msg.key)
                {
                    continue;
                }
                if !ctx.transfer_message(link, msg) {
                    break;
                }
                pulled.push(Arc::clone(msg));
            }
        }
        for msg in pulled {
            self.nodes[consumer.index()].collected.insert(msg.id);
            let _ = ctx.deliver(consumer, &msg);
        }
    }
}

impl Protocol for Pull {
    fn name(&self) -> &str {
        "PULL"
    }

    fn on_message(&mut self, _ctx: &mut SimCtx<'_>, msg: &Arc<Message>) {
        self.nodes[msg.producer.index()]
            .published
            .push(Arc::clone(msg));
    }

    fn on_node_reset(&mut self, _ctx: &mut SimCtx<'_>, node: NodeId) {
        // A restart loses the published buffer and the pulled-id
        // history; already-delivered messages stay delivered (the
        // metrics layer owns that), but a re-encounter may re-transfer.
        self.nodes[node.index()] = NodeState::default();
    }

    /// PULL's per-node state: the published store (full message
    /// records, in Vec order — pull iteration order is behavioral) and
    /// the collected-id set (canonically sorted).
    fn export_node(&self, node: NodeId) -> Option<Vec<u8>> {
        let state = self.nodes.get(node.index())?;
        let mut w = bsub_sim::snapshot::SnapWriter::new();
        w.u8(1); // version
        w.u32(state.published.len() as u32);
        for msg in &state.published {
            w.message(msg);
        }
        let mut collected: Vec<u64> = state.collected.iter().map(|id| id.raw()).collect();
        collected.sort_unstable();
        w.u32(collected.len() as u32);
        for id in collected {
            w.u64(id);
        }
        Some(w.into_bytes())
    }

    fn import_node(&mut self, node: NodeId, bytes: &[u8]) -> bool {
        if node.index() >= self.nodes.len() {
            return false;
        }
        let mut r = bsub_sim::snapshot::SnapReader::new(bytes);
        let parsed = (|| {
            if r.u8()? != 1 {
                return None;
            }
            let mut published = Vec::new();
            for _ in 0..r.u32()? {
                published.push(Arc::new(r.message()?));
            }
            let mut collected = HashSet::new();
            for _ in 0..r.u32()? {
                collected.insert(MessageId::new(r.u64()?));
            }
            r.is_empty().then_some(NodeState {
                published,
                collected,
            })
        })();
        match parsed {
            Some(state) => {
                self.nodes[node.index()] = state;
                true
            }
            None => false,
        }
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: &ContactEvent, link: &mut Link) {
        let now = ctx.now();
        self.prune(ctx, contact.a, now);
        self.prune(ctx, contact.b, now);
        self.pull_from(ctx, link, contact.a, contact.b);
        self.pull_from(ctx, link, contact.b, contact.a);
        // PULL never relays: the only buffered copies are the
        // producers' own published stores. Walked on a sampled
        // schedule while profiling (see `OCCUPANCY_SAMPLE_PERIOD`).
        if obs::is_active() {
            if self
                .occupancy_probe
                .is_multiple_of(obs::OCCUPANCY_SAMPLE_PERIOD)
            {
                let mut msgs: u64 = 0;
                let mut bytes: u64 = 0;
                for n in &self.nodes {
                    msgs = msgs.saturating_add(n.published.len() as u64);
                    for m in &n.published {
                        bytes = bytes.saturating_add(u64::from(m.size));
                    }
                }
                obs::gauge_set(Gauge::BufferMsgs, msgs);
                obs::gauge_set(Gauge::BufferBytes, bytes);
            }
            self.occupancy_probe = self.occupancy_probe.wrapping_add(1);
        }
        ctx.emit(|| TraceEvent::Snapshot {
            at: now,
            brokers: 0,
            buffered: self.nodes.iter().map(|n| n.published.len() as u64).sum(),
            relay_fill: 0.0,
            relay_fpr: 0.0,
            max_counter: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsub_sim::{GeneratedMessage, SimConfig, Simulation, SubscriptionTable};
    use bsub_traces::{ContactTrace, SimDuration};

    fn contact(a: u32, b: u32, start: u64, end: u64) -> ContactEvent {
        ContactEvent::new(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start),
            SimTime::from_secs(end),
        )
    }

    fn message(at: u64, producer: u32, key: &str) -> GeneratedMessage {
        GeneratedMessage {
            at: SimTime::from_secs(at),
            producer: NodeId::new(producer),
            key: key.into(),
            size: 100,
        }
    }

    #[test]
    fn direct_meeting_delivers() {
        let trace = ContactTrace::new("d", 2, vec![contact(0, 1, 100, 200)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.delivered, 1);
        assert_eq!(report.forwardings, 1);
        assert!(
            report.control_bytes > 0,
            "interest announcement costs bytes"
        );
    }

    #[test]
    fn never_relays() {
        // 0 → 1 → 2 path exists, but PULL must not use node 1 as relay.
        let trace = ContactTrace::new(
            "line",
            3,
            vec![contact(0, 1, 100, 200), contact(1, 2, 300, 400)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Pull::new(3));
        assert_eq!(report.delivered, 0, "no producer-consumer meeting");
        assert_eq!(report.forwardings, 0);
    }

    #[test]
    fn only_matching_keys_pulled() {
        let trace = ContactTrace::new("m", 2, vec![contact(0, 1, 50, 150)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "sports");
        let sched = vec![message(10, 0, "news"), message(11, 0, "sports")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.delivered, 1);
        assert_eq!(report.forwardings, 1, "only the matching message moves");
    }

    #[test]
    fn repeat_contacts_do_not_redeliver() {
        let trace = ContactTrace::new(
            "rep",
            2,
            vec![contact(0, 1, 50, 150), contact(0, 1, 500, 600)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.forwardings, 1, "collected set suppresses re-pull");
        assert_eq!(report.delivered, 1);
    }

    #[test]
    fn ttl_respected() {
        let trace = ContactTrace::new("t", 2, vec![contact(0, 1, 500, 600)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let config = SimConfig {
            ttl: SimDuration::from_secs(100), // expires at 110 < 500
            ..SimConfig::default()
        };
        let sim = Simulation::new(trace, subs, sched, config);
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.delivered, 0);
        assert_eq!(report.forwardings, 0);
    }

    /// Published and pulled copies share one allocation per message.
    #[test]
    fn pull_shares_payload_allocation() {
        let trace = ContactTrace::new("d", 2, vec![contact(0, 1, 100, 200)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let mut pull = Pull::new(2);
        let report = sim.run(&mut pull);
        assert_eq!(report.delivered, 1);
        let published = &pull.nodes[0].published;
        assert_eq!(published.len(), 1);
        assert_eq!(
            Arc::strong_count(&published[0]),
            1,
            "the producer's store owns the only copy after the run"
        );
    }

    #[test]
    fn churn_reset_clears_published_store() {
        use bsub_sim::FaultSpec;
        // The producer restarts between publishing (t=10s) and its only
        // consumer meeting (t=300s): the published store is empty, so a
        // contact that would have delivered pulls nothing.
        let period = SimDuration::from_secs(100);
        let n = NodeId::new;
        let spec = (0..10_000u64)
            .map(|seed| {
                FaultSpec::none()
                    .with_seed(seed)
                    .with_churn(300_000, period)
            })
            .find(|s| {
                (0..=2).any(|c| s.node_down(n(0), c))
                    && !s.node_down(n(0), 3)
                    && !s.node_down(n(1), 3)
            })
            .expect("some seed downs the producer before the meeting");
        let trace = ContactTrace::new("r", 2, vec![contact(0, 1, 300, 400)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default()).with_faults(spec);
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.delivered, 0, "the restart dropped the publication");
        assert_eq!(report.forwardings, 0);
        assert!(report.control_bytes > 0, "the announcement was still paid");
    }

    /// export → import into a fresh sibling → re-export is
    /// byte-identical for both the published store and collected set.
    #[test]
    fn node_snapshot_round_trips() {
        let trace = ContactTrace::new(
            "rt",
            2,
            vec![contact(0, 1, 50, 150), contact(0, 1, 500, 600)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news"), message(11, 0, "other")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let mut pull = Pull::new(2);
        let _ = sim.run(&mut pull);
        assert!(!pull.nodes[0].published.is_empty());
        assert!(!pull.nodes[1].collected.is_empty());

        let mut sibling = Pull::new(2);
        for i in 0..2 {
            let node = NodeId::new(i);
            let snap = pull.export_node(node).expect("PULL exports");
            assert!(sibling.import_node(node, &snap));
            assert_eq!(sibling.export_node(node).unwrap(), snap);
        }
        assert_eq!(
            sibling.nodes[0].published.len(),
            pull.nodes[0].published.len()
        );
        assert_eq!(sibling.nodes[1].collected, pull.nodes[1].collected);
        // Malformed inputs reject.
        let good = pull.export_node(NodeId::new(0)).unwrap();
        assert!(!sibling.import_node(NodeId::new(0), &good[..good.len() - 1]));
        assert!(!sibling.import_node(NodeId::new(99), &good));
        assert_eq!(pull.export_node(NodeId::new(99)), None);
    }

    #[test]
    fn uninterested_consumer_costs_nothing() {
        let trace = ContactTrace::new("u", 2, vec![contact(0, 1, 50, 150)]).unwrap();
        let subs = SubscriptionTable::new(2); // nobody subscribed
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Pull::new(2));
        assert_eq!(report.total_bytes(), 0);
    }
}
