//! PUSH: epidemic flooding.

use bsub_obs::{self as obs, Gauge};
use bsub_sim::{Link, Message, Protocol, SimCtx, TraceEvent};
use bsub_traces::{ContactEvent, NodeId};
use std::sync::Arc;

/// The PUSH baseline: every node replicates every message it stores to
/// every encountered node that has not received a copy yet, within the
/// contact's bandwidth budget and the message's TTL.
///
/// PUSH floods, so (modulo bandwidth) its delivery ratio and delay are
/// the optimum any forwarding scheme can reach — the paper uses it as
/// the upper bound in Figs. 7–8.
///
/// Internally each node's holdings are a bit set over message ids
/// (the simulator assigns them densely from 0), so a contact is an
/// anti-entropy sweep: the candidate set is
/// `src.has & !dst.has & !expired`, computed word-wise — this is what
/// keeps full-trace PUSH runs fast despite millions of replications.
#[derive(Debug)]
pub struct Push {
    /// Registry of every generated message, indexed by raw id. Each
    /// entry shares the simulator's allocation — replication moves ids
    /// and bits, never payload copies.
    messages: Vec<Arc<Message>>,
    /// Per-node holdings.
    has: Vec<BitSet>,
    /// Globally expired messages (lazily discovered).
    expired: BitSet,
    /// Contacts seen while profiling — schedules the sampled
    /// occupancy walk. Metrics-only state: never read by the
    /// protocol logic, untouched when profiling is off.
    occupancy_probe: u64,
}

impl Push {
    /// Creates PUSH state for `nodes` nodes.
    #[must_use]
    pub fn new(nodes: u32) -> Self {
        Self {
            messages: Vec::new(),
            has: (0..nodes).map(|_| BitSet::default()).collect(),
            expired: BitSet::default(),
            occupancy_probe: 0,
        }
    }

    /// Number of live (unexpired-so-far-as-known) copies across nodes —
    /// diagnostics for tests.
    #[must_use]
    pub fn known_live_copies(&self) -> usize {
        self.has
            .iter()
            .map(|h| h.count_and_not(&self.expired))
            .sum()
    }

    /// Buffer occupancy across all nodes: (live copies, bytes those
    /// copies occupy). PUSH counts every replica — a message buffered
    /// on three nodes costs its size three times.
    fn buffer_occupancy(&self) -> (u64, u64) {
        let mut msgs: u64 = 0;
        let mut bytes: u64 = 0;
        for h in &self.has {
            for (w, &word) in h.words.iter().enumerate() {
                let mut live = word & !self.expired.word(w);
                while live != 0 {
                    let bit = live.trailing_zeros() as usize;
                    live &= live - 1;
                    msgs = msgs.saturating_add(1);
                    bytes = bytes.saturating_add(u64::from(self.messages[w * 64 + bit].size));
                }
            }
        }
        (msgs, bytes)
    }

    /// Replicates from `src` to `dst` until the link budget runs out.
    fn replicate(&mut self, ctx: &mut SimCtx<'_>, link: &mut Link, src: NodeId, dst: NodeId) {
        let now = ctx.now();
        let mut expired_now: u64 = 0;
        let words = self.has[src.index()].words.len();
        'sweep: for w in 0..words {
            let src_w = self.has[src.index()].word(w);
            let dst_w = self.has[dst.index()].word(w);
            let exp_w = self.expired.word(w);
            let mut candidates = src_w & !dst_w & !exp_w;
            while candidates != 0 {
                let bit = candidates.trailing_zeros() as usize;
                candidates &= candidates - 1;
                let id = w * 64 + bit;
                let msg = &self.messages[id];
                if msg.is_expired(now) {
                    self.expired.set(id);
                    expired_now += 1;
                    continue;
                }
                if !ctx.transfer_message(link, msg) {
                    break 'sweep; // bandwidth exhausted for this direction
                }
                self.has[dst.index()].set(id);
                // A node hands a message to its application only when
                // the key matches its own interest (exact match — no
                // filters, hence no false deliveries in PUSH).
                if ctx.subscriptions().is_interested(dst, &msg.key) {
                    let _ = ctx.deliver(dst, msg);
                }
            }
        }
        if expired_now > 0 {
            ctx.emit(|| TraceEvent::Expired {
                at: now,
                node: src,
                count: expired_now,
            });
        }
    }
}

impl Protocol for Push {
    fn name(&self) -> &str {
        "PUSH"
    }

    fn on_message(&mut self, ctx: &mut SimCtx<'_>, msg: &Arc<Message>) {
        let id = msg.id.raw() as usize;
        // The simulator assigns ids densely in generation order.
        debug_assert_eq!(id, self.messages.len(), "dense message ids expected");
        self.messages.push(Arc::clone(msg));
        self.has[msg.producer.index()].set(id);
        if ctx.subscriptions().is_interested(msg.producer, &msg.key) {
            let _ = ctx.deliver(msg.producer, msg);
        }
    }

    fn on_node_reset(&mut self, _ctx: &mut SimCtx<'_>, node: NodeId) {
        // A node rejoining after churn lost its buffer: the has-bits
        // ARE its store, so the restart clears them. (Flooding will
        // refill the buffer from any peer, including re-transfers of
        // copies held before the outage.)
        self.has[node.index()] = BitSet::default();
    }

    /// PUSH's per-node state is exactly its holdings bit set: the
    /// message registry is rebuilt identically by every process (all
    /// of them apply every publish in schedule order), and the global
    /// `expired` set is pure memoization of `is_expired` — forwarding
    /// decisions are identical whether or not it is warm.
    fn export_node(&self, node: NodeId) -> Option<Vec<u8>> {
        let has = self.has.get(node.index())?;
        let mut w = bsub_sim::snapshot::SnapWriter::new();
        w.u8(1); // version
        w.u32(has.words.len() as u32);
        for &word in &has.words {
            w.u64(word);
        }
        Some(w.into_bytes())
    }

    fn import_node(&mut self, node: NodeId, bytes: &[u8]) -> bool {
        if node.index() >= self.has.len() {
            return false;
        }
        let mut r = bsub_sim::snapshot::SnapReader::new(bytes);
        let parsed = (|| {
            if r.u8()? != 1 {
                return None;
            }
            let mut words = Vec::new();
            for _ in 0..r.u32()? {
                words.push(r.u64()?);
            }
            r.is_empty().then_some(words)
        })();
        match parsed {
            Some(words) => {
                self.has[node.index()] = BitSet { words };
                true
            }
            None => false,
        }
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: &ContactEvent, link: &mut Link) {
        self.replicate(ctx, link, contact.a, contact.b);
        self.replicate(ctx, link, contact.b, contact.a);
        // PUSH has no brokers or filters; only the buffered-copy gauge
        // is meaningful. The walk is O(nodes × messages) — under
        // flooding that dwarfs the contact itself, so it runs on a
        // sampled schedule, and only while profiling.
        if obs::is_active() {
            if self
                .occupancy_probe
                .is_multiple_of(obs::OCCUPANCY_SAMPLE_PERIOD)
            {
                let (msgs, bytes) = self.buffer_occupancy();
                obs::gauge_set(Gauge::BufferMsgs, msgs);
                obs::gauge_set(Gauge::BufferBytes, bytes);
            }
            self.occupancy_probe = self.occupancy_probe.wrapping_add(1);
        }
        let now = ctx.now();
        ctx.emit(|| TraceEvent::Snapshot {
            at: now,
            brokers: 0,
            buffered: self.known_live_copies() as u64,
            relay_fill: 0.0,
            relay_fpr: 0.0,
            max_counter: 0,
        });
    }
}

/// A growable bit set over dense message ids.
#[derive(Debug, Default, Clone)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn set(&mut self, idx: usize) {
        let w = idx / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (idx % 64);
    }

    fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    #[cfg(test)]
    fn get(&self, idx: usize) -> bool {
        self.word(idx / 64) & (1 << (idx % 64)) != 0
    }

    fn count_and_not(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .enumerate()
            .map(|(w, &bits)| (bits & !other.word(w)).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsub_sim::{GeneratedMessage, SimConfig, Simulation, SubscriptionTable};
    use bsub_traces::{ContactTrace, SimDuration, SimTime};

    fn line_trace() -> ContactTrace {
        // 0 meets 1, later 1 meets 2: a two-hop path.
        ContactTrace::new(
            "line",
            3,
            vec![
                ContactEvent::new(
                    NodeId::new(0),
                    NodeId::new(1),
                    SimTime::from_secs(100),
                    SimTime::from_secs(200),
                ),
                ContactEvent::new(
                    NodeId::new(1),
                    NodeId::new(2),
                    SimTime::from_secs(300),
                    SimTime::from_secs(400),
                ),
            ],
        )
        .unwrap()
    }

    fn one_message(key: &str) -> Vec<GeneratedMessage> {
        vec![GeneratedMessage {
            at: SimTime::from_secs(10),
            producer: NodeId::new(0),
            key: key.into(),
            size: 100,
        }]
    }

    #[test]
    fn floods_across_multiple_hops() {
        let trace = line_trace();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sched = one_message("news");
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Push::new(3));
        assert_eq!(report.delivered, 1, "two-hop delivery via flooding");
        assert_eq!(report.forwardings, 2, "0→1 and 1→2");
        assert_eq!(report.false_delivered, 0, "PUSH never falsely delivers");
    }

    #[test]
    fn no_duplicate_replication() {
        // Two contacts between the same pair: the second must not
        // re-transfer.
        let trace = ContactTrace::new(
            "pair",
            2,
            vec![
                ContactEvent::new(
                    NodeId::new(0),
                    NodeId::new(1),
                    SimTime::from_secs(100),
                    SimTime::from_secs(200),
                ),
                ContactEvent::new(
                    NodeId::new(0),
                    NodeId::new(1),
                    SimTime::from_secs(300),
                    SimTime::from_secs(400),
                ),
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = one_message("news");
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let report = sim.run(&mut Push::new(2));
        assert_eq!(report.forwardings, 1);
        assert_eq!(report.delivered, 1);
    }

    #[test]
    fn respects_ttl() {
        let trace = line_trace();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sched = one_message("news");
        let config = SimConfig {
            ttl: SimDuration::from_secs(150), // expires at t=160 < 300
            ..SimConfig::default()
        };
        let sim = Simulation::new(trace, subs, sched, config);
        let mut push = Push::new(3);
        let report = sim.run(&mut push);
        // First hop may happen (contact at 100 < 160) but the second
        // cannot.
        assert_eq!(report.delivered, 0);
        assert!(report.forwardings <= 1);
        // The second contact lazily discovers the expiry.
        assert_eq!(push.known_live_copies(), 0);
    }

    #[test]
    fn respects_bandwidth() {
        let trace = ContactTrace::new(
            "tight",
            2,
            vec![ContactEvent::new(
                NodeId::new(0),
                NodeId::new(1),
                SimTime::from_secs(100),
                SimTime::from_secs(101), // 1 s contact
            )],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        // Three 100-byte messages, budget 150 bytes => at most 1 fits.
        let sched: Vec<GeneratedMessage> = (0..3)
            .map(|i| GeneratedMessage {
                at: SimTime::from_secs(10 + i),
                producer: NodeId::new(0),
                key: "news".into(),
                size: 100,
            })
            .collect();
        let config = SimConfig {
            bytes_per_sec: 150,
            ..SimConfig::default()
        };
        let sim = Simulation::new(trace, subs, sched, config);
        let report = sim.run(&mut Push::new(2));
        assert_eq!(report.forwardings, 1);
        assert_eq!(report.delivered, 1);
    }

    /// Replication shares the payload allocation: after a flooding run
    /// every copy in the network is a bit in `has`, and the registry
    /// holds the only strong reference to each message — storing and
    /// forwarding never clone the payload.
    #[test]
    fn replication_shares_payload_allocation() {
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sim = Simulation::new(
            line_trace(),
            subs,
            one_message("news"),
            SimConfig::default(),
        );
        let mut push = Push::new(3);
        let report = sim.run(&mut push);
        assert_eq!(report.delivered, 1);
        assert_eq!(push.messages.len(), 1);
        assert_eq!(
            Arc::strong_count(&push.messages[0]),
            1,
            "flooding to two peers must not copy the payload"
        );
    }

    #[test]
    fn churn_reset_clears_relay_buffer() {
        use bsub_sim::FaultSpec;
        // Two-hop line: node 1 picks up the copy at t=100s, goes down
        // for a churn cell, and rejoins for the t=300s contact with an
        // empty buffer — the flood dies at the relay.
        let period = SimDuration::from_secs(100);
        let n = NodeId::new;
        let spec = (0..10_000u64)
            .map(|seed| {
                FaultSpec::none()
                    .with_seed(seed)
                    .with_churn(300_000, period)
            })
            .find(|s| {
                (0..=1).all(|c| !s.node_down(n(0), c))
                    && !s.node_down(n(1), 1)
                    && s.node_down(n(1), 2)
                    && !s.node_down(n(1), 3)
                    && (0..=3).all(|c| !s.node_down(n(2), c))
            })
            .expect("some seed downs the relay between the hops");
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sim = Simulation::new(
            line_trace(),
            subs,
            one_message("news"),
            SimConfig::default(),
        )
        .with_faults(spec);
        let mut push = Push::new(3);
        let report = sim.run(&mut push);
        assert_eq!(report.forwardings, 1, "only the first hop happened");
        assert_eq!(report.delivered, 0, "the relay's buffer was wiped");
        assert_eq!(push.known_live_copies(), 1, "only the producer's copy");
    }

    /// export → import into a fresh sibling → re-export is
    /// byte-identical, and the imported holdings flood onward exactly
    /// like the originals.
    #[test]
    fn node_snapshot_round_trips() {
        let trace = line_trace();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(2), "news");
        let sched = one_message("news");
        let sim = Simulation::new(trace, subs, sched, SimConfig::default());
        let mut push = Push::new(3);
        let _ = sim.run(&mut push);

        let mut sibling = Push::new(3);
        for i in 0..3 {
            let node = NodeId::new(i);
            let snap = push.export_node(node).expect("PUSH exports");
            assert!(sibling.import_node(node, &snap));
            assert_eq!(sibling.export_node(node).unwrap(), snap);
        }
        for i in 0..3 {
            assert_eq!(
                sibling.has[i].words, push.has[i].words,
                "holdings of node {i} survive the round trip"
            );
        }
        // Malformed inputs reject.
        let good = push.export_node(NodeId::new(1)).unwrap();
        assert!(!sibling.import_node(NodeId::new(1), &good[..good.len() - 1]));
        assert!(!sibling.import_node(NodeId::new(99), &good));
        assert_eq!(push.export_node(NodeId::new(99)), None);
    }

    #[test]
    fn bitset_set_get_across_words() {
        let mut b = BitSet::default();
        for idx in [0usize, 63, 64, 127, 1000] {
            assert!(!b.get(idx));
            b.set(idx);
            assert!(b.get(idx));
        }
        assert!(!b.get(500));
        assert_eq!(b.word(100), 0, "unset high words read as zero");
    }

    #[test]
    fn bitset_count_and_not() {
        let mut a = BitSet::default();
        let mut b = BitSet::default();
        a.set(1);
        a.set(70);
        a.set(200);
        b.set(70);
        assert_eq!(a.count_and_not(&b), 2);
        assert_eq!(b.count_and_not(&a), 0);
    }
}
