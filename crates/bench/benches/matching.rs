//! Content matching: TCBF query vs raw-string matching (Section IV-B:
//! "The content matching using TCBF is also more efficient than the
//! string matching method"), plus the end-to-end cost of one simulated
//! B-SUB contact.

use bsub_bloom::Tcbf;
use bsub_core::{BsubConfig, BsubProtocol, DfMode};
use bsub_sim::{SimConfig, Simulation};
use bsub_traces::synthetic::SyntheticTrace;
use bsub_traces::SimDuration;
use bsub_workload::keys::trend_keys;
use bsub_workload::{interests, WorkloadBuilder};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Match one message key against an interest table of 38 entries,
/// the raw-string way: linear scan with string equality.
fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("content_matching");
    let interest_strings: Vec<&str> = trend_keys().iter().map(|k| k.name).collect();
    let filter = Tcbf::from_keys(256, 4, 50, interest_strings.iter().copied());

    // Worst case for the scan: the key sits at the end of the table.
    let last = *interest_strings.last().expect("non-empty");
    group.bench_function("raw_string_scan_38", |b| {
        b.iter(|| {
            interest_strings
                .iter()
                .any(|k| *k == black_box(last))
        });
    });
    group.bench_function("tcbf_query_38", |b| {
        b.iter(|| filter.contains(black_box(last)));
    });
    group.finish();
}

/// End-to-end: a small B-SUB simulation, amortizing the full contact
/// pipeline (election, filter exchange, preferential forwarding).
fn bench_simulation(c: &mut Criterion) {
    let trace = SyntheticTrace::new("bench", 20, SimDuration::from_hours(12), 3000)
        .seed(1)
        .build();
    let subs = interests::assign_interests(trace.node_count(), trend_keys(), 1);
    let schedule = WorkloadBuilder::new(&trace).seed(1).build();
    let contacts = trace.len() as u64;

    let mut group = c.benchmark_group("simulation");
    group.throughput(criterion::Throughput::Elements(contacts));
    group.sample_size(10);
    group.bench_function("bsub_contact_pipeline", |b| {
        b.iter(|| {
            let config = BsubConfig::builder().df(DfMode::Fixed(0.1)).build();
            let mut bsub = BsubProtocol::new(config, &subs);
            let sim = Simulation::new(&trace, &subs, &schedule, SimConfig::default());
            black_box(sim.run(&mut bsub))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matching, bench_simulation);
criterion_main!(benches);
