//! Content matching: TCBF query vs raw-string matching (Section IV-B:
//! "The content matching using TCBF is also more efficient than the
//! string matching method"), plus the end-to-end cost of one simulated
//! B-SUB contact. Since the simulator now shares its world behind
//! `Arc`s, the simulation benchmark clones no trace data per
//! iteration — each run only builds a fresh protocol. Runs on the
//! in-tree [`bsub_bench::microbench`] harness
//! (`cargo bench -p bsub-bench --bench matching`).

use bsub_bench::microbench::Harness;
use bsub_bloom::Tcbf;
use bsub_core::{BsubConfig, BsubProtocol, DfMode};
use bsub_sim::{SimConfig, Simulation};
use bsub_traces::synthetic::SyntheticTrace;
use bsub_traces::SimDuration;
use bsub_workload::keys::trend_keys;
use bsub_workload::{interests, WorkloadBuilder};
use std::hint::black_box;

/// Match one message key against an interest table of 38 entries,
/// the raw-string way: linear scan with string equality.
fn bench_matching(h: &mut Harness) {
    let interest_strings: Vec<&str> = trend_keys().iter().map(|k| k.name).collect();
    let filter = Tcbf::from_keys(256, 4, 50, interest_strings.iter().copied());

    // Worst case for the scan: the key sits at the end of the table.
    let last = *interest_strings.last().expect("non-empty");
    h.bench("content_matching", "raw_string_scan_38", || {
        interest_strings.iter().any(|k| *k == black_box(last))
    });
    h.bench("content_matching", "tcbf_query_38", || {
        filter.contains(black_box(last))
    });
}

/// End-to-end: a small B-SUB simulation, amortizing the full contact
/// pipeline (election, filter exchange, preferential forwarding).
fn bench_simulation(h: &mut Harness) {
    let trace = SyntheticTrace::new("bench", 20, SimDuration::from_hours(12), 3000)
        .seed(1)
        .build();
    let subs = interests::assign_interests(trace.node_count(), trend_keys(), 1);
    let schedule = WorkloadBuilder::new(&trace).seed(1).build();
    let sim = Simulation::new(trace, subs.clone(), schedule, SimConfig::default());
    let contacts = sim.trace().len() as f64;

    h.bench("simulation", "bsub_contact_pipeline", || {
        let config = BsubConfig::builder().df(DfMode::Fixed(0.1)).build();
        let mut bsub = BsubProtocol::new(config, &subs);
        black_box(sim.run(&mut bsub))
    });
    if let Some(m) = h.results().last() {
        eprintln!(
            "simulation/bsub_contact_pipeline: {:.1} ns/contact over {contacts} contacts",
            m.nanos() / contacts,
        );
    }
}

fn main() {
    let mut h = Harness::new();
    bench_matching(&mut h);
    bench_simulation(&mut h);
    h.report("matching — TCBF vs raw-string matching");
}
