//! Microbenchmarks of the TCBF's primitive operations — the paper's
//! "simple and fast" claims (Sections IV-B and V-A): insertion,
//! existential and preferential queries, the two merges, decay, and
//! the compressed wire codec, with classic BF/CBF operations for
//! scale. Runs on the in-tree [`bsub_bench::microbench`] harness
//! (`cargo bench -p bsub-bench --bench tcbf_ops`).

use bsub_bench::microbench::Harness;
use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{BloomFilter, CountingBloomFilter, Tcbf};
use bsub_workload::keys::trend_keys;
use std::hint::black_box;

const M: usize = 256;
const K: usize = 4;
const C: u32 = 50;

fn loaded_tcbf(n: usize) -> Tcbf {
    Tcbf::from_keys(M, K, C, trend_keys().iter().take(n).map(|k| k.name))
}

fn bench_inserts(h: &mut Harness) {
    let mut bloom = BloomFilter::new(M, K);
    h.bench("insert", "bloom", || bloom.insert(black_box("NewMoon")));
    let mut cbf = CountingBloomFilter::new(M, K);
    h.bench("insert", "cbf", || cbf.insert(black_box("NewMoon")));
    // The TCBF rejects duplicate inserts, so each iteration needs a
    // fresh filter; the clone cost is part of the measured loop.
    let empty = Tcbf::new(M, K, C);
    h.bench("insert", "tcbf_clone_and_insert", || {
        let mut f = empty.clone();
        f.insert(black_box("NewMoon")).expect("fresh");
        f
    });
}

fn bench_queries(h: &mut Harness) {
    let tcbf = loaded_tcbf(38);
    let bloom = tcbf.to_bloom();
    h.bench("query", "bloom_hit", || {
        bloom.contains(black_box("NewMoon"))
    });
    h.bench("query", "tcbf_existential_hit", || {
        tcbf.contains(black_box("NewMoon"))
    });
    h.bench("query", "tcbf_existential_miss", || {
        tcbf.contains(black_box("definitely-absent"))
    });
    h.bench("query", "tcbf_min_counter", || {
        tcbf.min_counter(black_box("NewMoon"))
    });
    let other = loaded_tcbf(20);
    h.bench("query", "tcbf_preferential", || {
        tcbf.preference(&other, black_box("NewMoon"))
            .expect("params")
    });
}

fn bench_merges(h: &mut Harness) {
    let left = loaded_tcbf(20);
    let right = loaded_tcbf(38);
    h.bench("merge", "a_merge", || {
        let mut f = left.clone();
        f.a_merge(black_box(&right)).expect("params");
        f
    });
    h.bench("merge", "m_merge", || {
        let mut f = left.clone();
        f.m_merge(black_box(&right)).expect("params");
        f
    });
    h.bench("merge", "decay", || {
        let mut f = right.clone();
        f.decay(black_box(3));
        f
    });
}

fn bench_wire(h: &mut Harness) {
    let filter = loaded_tcbf(38);
    let full = wire::encode(&filter, CounterMode::Full).expect("encodes");
    let ripped = wire::encode(&filter, CounterMode::Ripped).expect("encodes");
    h.bench("wire", "encode_full", || {
        wire::encode(black_box(&filter), CounterMode::Full).expect("encodes")
    });
    h.bench("wire", "encode_ripped", || {
        wire::encode(black_box(&filter), CounterMode::Ripped).expect("encodes")
    });
    h.bench("wire", "decode_full", || {
        wire::decode(black_box(&full)).expect("decodes")
    });
    h.bench("wire", "decode_ripped", || {
        wire::decode(black_box(&ripped)).expect("decodes")
    });
}

fn main() {
    let mut h = Harness::new();
    bench_inserts(&mut h);
    bench_queries(&mut h);
    bench_merges(&mut h);
    bench_wire(&mut h);
    h.report("tcbf_ops — TCBF primitive operations");
}
