//! Microbenchmarks of the TCBF's primitive operations — the paper's
//! "simple and fast" claims (Sections IV-B and V-A): insertion,
//! existential and preferential queries, the two merges, decay, and
//! the compressed wire codec, with classic BF/CBF operations for
//! scale.

use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{BloomFilter, CountingBloomFilter, Tcbf};
use bsub_workload::keys::trend_keys;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const M: usize = 256;
const K: usize = 4;
const C: u32 = 50;

fn loaded_tcbf(n: usize) -> Tcbf {
    Tcbf::from_keys(M, K, C, trend_keys().iter().take(n).map(|k| k.name))
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.bench_function("bloom", |b| {
        let mut f = BloomFilter::new(M, K);
        b.iter(|| f.insert(black_box("NewMoon")));
    });
    group.bench_function("cbf", |b| {
        let mut f = CountingBloomFilter::new(M, K);
        b.iter(|| f.insert(black_box("NewMoon")));
    });
    group.bench_function("tcbf", |b| {
        b.iter_batched(
            || Tcbf::new(M, K, C),
            |mut f| f.insert(black_box("NewMoon")).expect("fresh"),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    let tcbf = loaded_tcbf(38);
    let bloom = tcbf.to_bloom();
    group.bench_function("bloom_hit", |b| {
        b.iter(|| bloom.contains(black_box("NewMoon")));
    });
    group.bench_function("tcbf_existential_hit", |b| {
        b.iter(|| tcbf.contains(black_box("NewMoon")));
    });
    group.bench_function("tcbf_existential_miss", |b| {
        b.iter(|| tcbf.contains(black_box("definitely-absent")));
    });
    group.bench_function("tcbf_min_counter", |b| {
        b.iter(|| tcbf.min_counter(black_box("NewMoon")));
    });
    let other = loaded_tcbf(20);
    group.bench_function("tcbf_preferential", |b| {
        b.iter(|| tcbf.preference(&other, black_box("NewMoon")).expect("params"));
    });
    group.finish();
}

fn bench_merges(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    let left = loaded_tcbf(20);
    let right = loaded_tcbf(38);
    group.bench_function("a_merge", |b| {
        b.iter_batched(
            || left.clone(),
            |mut f| f.a_merge(black_box(&right)).expect("params"),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("m_merge", |b| {
        b.iter_batched(
            || left.clone(),
            |mut f| f.m_merge(black_box(&right)).expect("params"),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("decay", |b| {
        b.iter_batched(
            || right.clone(),
            |mut f| f.decay(black_box(3)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let filter = loaded_tcbf(38);
    let full = wire::encode(&filter, CounterMode::Full).expect("encodes");
    let ripped = wire::encode(&filter, CounterMode::Ripped).expect("encodes");
    group.bench_function("encode_full", |b| {
        b.iter(|| wire::encode(black_box(&filter), CounterMode::Full).expect("encodes"));
    });
    group.bench_function("encode_ripped", |b| {
        b.iter(|| wire::encode(black_box(&filter), CounterMode::Ripped).expect("encodes"));
    });
    group.bench_function("decode_full", |b| {
        b.iter(|| wire::decode(black_box(&full)).expect("decodes"));
    });
    group.bench_function("decode_ripped", |b| {
        b.iter(|| wire::decode(black_box(&ripped)).expect("decodes"));
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_queries, bench_merges, bench_wire);
criterion_main!(benches);
