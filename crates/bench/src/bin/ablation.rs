//! Ablation study of B-SUB's design choices. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::ablation();
}
