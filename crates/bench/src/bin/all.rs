//! Regenerates every table and figure in one run (several minutes).
fn main() {
    bsub_bench::experiments::table1();
    bsub_bench::experiments::table2();
    bsub_bench::experiments::analysis();
    bsub_bench::experiments::ablation();
    bsub_bench::experiments::fig7();
    bsub_bench::experiments::fig8();
    bsub_bench::experiments::fig9();
    bsub_bench::experiments::degradation();
}
