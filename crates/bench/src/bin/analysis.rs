//! Regenerates the paper's analysis artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::analysis();
}
