//! Open-loop broker benchmark: client processes drive a live
//! [`BrokerNode`] over Unix-domain sockets and measure end-to-end
//! publish→deliver latency.
//!
//! The coordinator starts the broker (match index behind the peer
//! plane, DESIGN.md §16), spawns `--workers` client processes
//! (re-invocations of this binary with `--worker`), and barriers them
//! on a control topic: every worker subscribes to all `--keys` bench
//! topics plus `::go`, the coordinator waits until the broker's live
//! count shows every subscription applied, then publishes `::go`.
//! From that instant each worker publishes `--publishes` messages
//! open-loop (no waiting between sends) while draining its own
//! deliveries; with every worker subscribed to every topic the
//! delivery fan-out is exact and deterministic — `workers²×publishes`
//! deliveries in total — so the perf entry's work counters are
//! seed-independent even though the latencies are wall clock.
//!
//! Artifacts (under `results/` or `$BSUB_RESULTS_DIR`):
//!
//! - `broker_qps.csv` — publish QPS, p50/p99 publish→deliver latency,
//!   and one row per observed frame kind from the broker's metrics
//!   sink (the DESIGN.md §15 stats plane; host-dependent, never
//!   diffed).
//! - `BENCH_perf.json` — one appended `broker_smoke` perf entry.
//!
//! Flags: `--smoke` (the only load shape for now), `--check` (gate
//! the perf entry against the committed baseline), `--workers N`
//! (default 2), `--publishes N` (per worker, default 150), `--keys N`
//! (bench topics, default 8), `--stats-addr A` (also serve the
//! broker's live metrics as Prometheus/JSON while the run executes;
//! `HOST:PORT` or `unix:PATH`). `--worker --dir D --peer N
//! --workers W --publishes P --keys K` is the internal client mode.

use bsub_bench::output::{render_table, results_dir, write_csv};
use bsub_bench::perf::{self, PerfEntry, Tolerance};
use bsub_net::{
    frame_time_hist, BrokerClient, BrokerConfig, BrokerNode, EndpointAddr, FrameKind, PeerConfig,
    PeerId, StatsHandle, StatsServer, HEADER_LEN,
};
use bsub_obs::{calibrate_ns, ProfReport};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The broker's peer id; client workers are `1..=workers` and the
/// coordinator's own control client sits just above them.
const BROKER: PeerId = PeerId(10_000);
const CONTROL: PeerId = PeerId(10_001);

/// The barrier topic. Workers subscribe to it alongside the bench
/// topics and hold their publish loop until its delivery arrives.
const GO: &str = "::go";

fn topic(i: u64) -> String {
    format!("bench-{i}")
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn numeric(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{key} requires a non-negative integer, got {v}");
            std::process::exit(2);
        })
    })
}

/// Parses a stats endpoint address: `unix:PATH` or a TCP `HOST:PORT`.
fn parse_stats_addr(raw: &str) -> EndpointAddr {
    if let Some(path) = raw.strip_prefix("unix:") {
        return EndpointAddr::Unix(PathBuf::from(path));
    }
    match raw.parse() {
        Ok(sock) => EndpointAddr::Tcp(sock),
        Err(_) => {
            eprintln!("--stats-addr wants HOST:PORT or unix:PATH, got {raw}");
            std::process::exit(2);
        }
    }
}

fn broker_addr(dir: &Path) -> EndpointAddr {
    EndpointAddr::Unix(dir.join("broker.sock"))
}

fn percentile_us(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (sorted_ns.len() - 1) * pct / 100;
    sorted_ns[rank] as f64 / 1e3
}

fn worker_main(args: &[String]) -> ! {
    let dir = PathBuf::from(arg_value(args, "--dir").expect("--dir"));
    let peer = numeric(args, "--peer", 0) as u32;
    let workers = numeric(args, "--workers", 0);
    let publishes = numeric(args, "--publishes", 0);
    let keys = numeric(args, "--keys", 0);
    assert!(peer > 0 && workers > 0 && publishes > 0 && keys > 0);

    let local = EndpointAddr::Unix(dir.join(format!("client-{peer}.sock")));
    let client = BrokerClient::connect(
        PeerConfig::new(PeerId(peer), local, u64::from(peer)),
        BROKER,
        &broker_addr(&dir),
    )
    .unwrap_or_else(|e| {
        eprintln!("worker {peer}: connect failed: {e}");
        std::process::exit(1);
    });
    // Arm the client-side metrics sink: the coordinator merges every
    // worker's report so the per-kind histogram rows cover the frames
    // clients write (SUBSCRIBE, PUBLISH), not just the broker's.
    client.manager().metrics().enable();

    // Subscribe to every bench topic plus the barrier topic, then hold
    // for the coordinator's `::go`.
    let mut topics: Vec<String> = (0..keys).map(topic).collect();
    topics.push(GO.to_string());
    client.subscribe(&topics, None).expect("subscribe");
    let go = Instant::now() + Duration::from_secs(60);
    loop {
        let left = go.saturating_duration_since(Instant::now());
        match client.recv_delivery(left) {
            Some(d) if d.body.key == GO => break,
            Some(_) => continue,
            None => {
                eprintln!("worker {peer}: no `{GO}` barrier within 60s");
                std::process::exit(1);
            }
        }
    }

    // Open-loop publish on this thread; a drain thread collects our
    // own delivery stream concurrently (every publish in the run fans
    // out to every worker, ourselves included).
    let client = Arc::new(client);
    let expected = (workers * publishes) as usize;
    let drain = {
        let client = Arc::clone(&client);
        thread::spawn(move || {
            let mut latencies_ns = Vec::with_capacity(expected);
            let deadline = Instant::now() + Duration::from_secs(120);
            while latencies_ns.len() < expected {
                let left = deadline.saturating_duration_since(Instant::now());
                match client.recv_delivery(left) {
                    Some(d) if d.body.key == GO => continue,
                    Some(d) => latencies_ns.push(d.latency_ns()),
                    None => break,
                }
            }
            latencies_ns
        })
    };
    for i in 0..publishes {
        let seq = (u64::from(peer) << 32) | i;
        client.publish(seq, &topic(i % keys)).expect("publish");
    }
    let latencies_ns = drain.join().expect("drain thread");

    let lines: String = latencies_ns.iter().map(|ns| format!("{ns}\n")).collect();
    std::fs::write(dir.join(format!("lat-{peer}.txt")), lines).expect("write latency samples");
    std::fs::write(
        dir.join(format!("stats-{peer}.bin")),
        client.manager().metrics().snapshot().encode(),
    )
    .expect("write worker metrics");
    if latencies_ns.len() < expected {
        eprintln!(
            "worker {peer}: {} of {expected} deliveries arrived before the deadline",
            latencies_ns.len()
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        worker_main(&args);
    }
    let check = args.iter().any(|a| a == "--check");
    // `--smoke` is the only load shape today; accept and ignore it so
    // the ci.sh invocation reads like the other smoke gates.
    let workers = numeric(&args, "--workers", 2);
    // Sized so the smoke run's wall clock is comfortably above
    // scheduler noise (~100 ms) — the perf gate medians normalized CPU
    // time, and a single-digit-millisecond wall would make it flaky.
    let publishes = numeric(&args, "--publishes", 5000);
    let keys = numeric(&args, "--keys", 16);
    assert!(workers > 0 && publishes > 0 && keys > 0);

    let dir = std::env::temp_dir().join(format!("bsub-broker-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench socket dir");

    let broker =
        BrokerNode::serve(BrokerConfig::new(BROKER, broker_addr(&dir), 0x1B)).expect("bind broker");
    broker.manager().metrics().enable();

    // The live stats plane: a merger thread ships the broker's metrics
    // deltas into a handle the optional endpoint serves while the
    // bench is running; the per-kind rows below come from the same
    // merged report.
    let stats = StatsHandle::new();
    let server = arg_value(&args, "--stats-addr").map(|raw| {
        let server = StatsServer::serve(&parse_stats_addr(&raw), stats.clone())
            .expect("bind stats endpoint");
        println!(
            "[stats endpoint {} — /metrics, /metrics.json]",
            server.local_addr()
        );
        server
    });
    let merger_stop = Arc::new(AtomicBool::new(false));
    let merger = {
        let stats = stats.clone();
        let metrics = Arc::clone(broker.manager());
        let stop = Arc::clone(&merger_stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                stats.merge(&metrics.metrics().take_delta());
                thread::sleep(Duration::from_millis(100));
            }
            stats.merge(&metrics.metrics().take_delta());
        })
    };

    let exe = std::env::current_exe().expect("current executable");
    let mut children: Vec<_> = (1..=workers)
        .map(|w| {
            Command::new(&exe)
                .args([
                    "--worker",
                    "--dir",
                    dir.to_str().expect("utf-8 temp dir"),
                    "--peer",
                    &w.to_string(),
                    "--workers",
                    &workers.to_string(),
                    "--publishes",
                    &publishes.to_string(),
                    "--keys",
                    &keys.to_string(),
                ])
                .stdin(Stdio::null())
                .spawn()
                .expect("spawn client worker")
        })
        .collect();

    // Barrier: one subscription per worker; once the broker has
    // applied them all, every client is ready for `::go`.
    let subscribed = Instant::now() + Duration::from_secs(60);
    while broker.live_count() < workers as usize {
        if Instant::now() >= subscribed {
            eprintln!(
                "broker-bench: only {} of {workers} workers subscribed within 60s",
                broker.live_count()
            );
            for child in &mut children {
                let _ = child.kill();
            }
            std::process::exit(1);
        }
        thread::sleep(Duration::from_millis(5));
    }

    let control = BrokerClient::connect(
        PeerConfig::new(CONTROL, EndpointAddr::Unix(dir.join("control.sock")), 0x60),
        BROKER,
        &broker_addr(&dir),
    )
    .expect("connect control client");
    let t0 = Instant::now();
    control.publish(0, GO).expect("publish barrier");

    for mut child in children {
        let status = child.wait().expect("wait for client worker");
        if !status.success() {
            eprintln!("broker-bench: a client worker failed");
            std::process::exit(1);
        }
    }
    let wall = t0.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;

    let mut latencies_ns: Vec<u64> = Vec::new();
    for w in 1..=workers {
        let text =
            std::fs::read_to_string(dir.join(format!("lat-{w}.txt"))).expect("latency samples");
        latencies_ns.extend(text.lines().filter_map(|l| l.parse::<u64>().ok()));
        let encoded = std::fs::read(dir.join(format!("stats-{w}.bin"))).expect("worker metrics");
        stats.merge(&ProfReport::decode(&encoded).expect("decode worker metrics"));
    }
    latencies_ns.sort_unstable();

    merger_stop.store(true, Ordering::Release);
    merger.join().expect("merger thread");
    let merged = stats.snapshot();
    drop(server);
    drop(broker);
    let _ = std::fs::remove_dir_all(&dir);

    let total_publishes = workers * publishes;
    let total_deliveries = total_publishes * workers;
    assert_eq!(
        latencies_ns.len() as u64,
        total_deliveries,
        "delivery fan-out must be exact: every worker subscribes to every topic"
    );
    let qps = total_publishes as f64 / wall.as_secs_f64().max(1e-9);

    let headers = [
        "metric", "samples", "p50_us", "p99_us", "per_sec", "wall_ms",
    ];
    let mut rows = vec![vec![
        "publish_deliver".to_string(),
        latencies_ns.len().to_string(),
        format!("{:.1}", percentile_us(&latencies_ns, 50)),
        format!("{:.1}", percentile_us(&latencies_ns, 99)),
        format!("{qps:.1}"),
        format!("{wall_ms:.1}"),
    ]];
    for kind in FrameKind::ALL {
        let hist = merged.time_hist(frame_time_hist(kind));
        if hist.count() == 0 {
            continue;
        }
        rows.push(vec![
            format!("frame_{}", kind.name()),
            hist.count().to_string(),
            format!("{:.1}", hist.quantile(0.5) as f64 / 1e3),
            format!("{:.1}", hist.quantile(0.99) as f64 / 1e3),
            format!("{:.1}", hist.count() as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{wall_ms:.1}"),
        ]);
    }
    print!(
        "{}",
        render_table(
            "broker_qps — open-loop publish→deliver (wall clock, not diffed)",
            &headers,
            &rows
        )
    );
    write_csv("broker_qps", &headers, &rows);

    // Deterministic work counters: the fan-out is exact, so the frame
    // byte volume follows from the key schedule alone (PUBLISH body is
    // 20 bytes + key, DELIVER is 24 bytes + key, both behind the
    // 8-byte frame header).
    let mut bytes = 0u64;
    for i in 0..publishes {
        let key_len = topic(i % keys).len() as u64;
        bytes += workers * (HEADER_LEN as u64 + 20 + key_len);
        bytes += workers * workers * (HEADER_LEN as u64 + 24 + key_len);
    }
    let entry = PerfEntry {
        experiment: "broker_smoke".to_string(),
        workers,
        runs: 1,
        total_ms: wall_ms,
        cpu_ms: wall_ms,
        speedup: 1.0,
        calib_ns: calibrate_ns(),
        bytes,
        forwardings: total_publishes,
        delivered: total_deliveries,
    };
    let trajectory = results_dir().join("BENCH_perf.json");
    perf::append(&trajectory, &entry);
    println!("[appended {}]", trajectory.display());

    if check {
        let baseline_path = match std::env::var("BSUB_PERF_BASELINE") {
            Ok(custom) => PathBuf::from(custom),
            Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
        };
        let baseline = perf::load(&baseline_path);
        match perf::check(&baseline, &entry, Tolerance::from_env()) {
            Ok(msg) => println!("[perf ok] {msg}"),
            Err(msg) => {
                eprintln!("[perf REGRESSION] {msg}");
                std::process::exit(3);
            }
        }
    }
    println!(
        "broker-bench: {total_publishes} publishes → {total_deliveries} deliveries at {qps:.0}/s"
    );
}
