//! Regenerates `degradation.csv`: delivery ratio, delay, and
//! forwarding cost vs fault intensity for PUSH, B-SUB, and PULL under
//! the deterministic fault model (contact loss, contact truncation,
//! node churn, control-plane corruption). See DESIGN.md §8.
//!
//! `--smoke` runs the same pipeline on a small synthetic trace in a
//! couple of seconds — CI uses it to keep the fault-injection path
//! honest without paying for the full Haggle-like replay.

use bsub_bench::Experiment;
use bsub_traces::synthetic::SyntheticTrace;
use bsub_traces::SimDuration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let trace = SyntheticTrace::new("smoke", 16, SimDuration::from_hours(6), 900)
            .seed(7)
            .build();
        let experiment = Experiment::over(trace, 7);
        bsub_bench::experiments::degradation_with(&experiment, SimDuration::from_mins(120));
    } else {
        bsub_bench::experiments::degradation();
    }
}
