//! Regenerates the dynamics artifacts: `timeseries_fig7.csv` /
//! `events_fig7.jsonl` (the Fig. 7 B-SUB run observed over time) and
//! the `fig6_amerge` pair (the Additive-merge counter pathology).
//! See DESIGN.md §3 and §7.
//!
//! `--smoke` runs the same pipeline on a small synthetic trace in a
//! couple of seconds — CI uses it to keep the recording path honest
//! without paying for the full Haggle-like replay.

use bsub_bench::Experiment;
use bsub_traces::synthetic::SyntheticTrace;
use bsub_traces::SimDuration;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        let trace = SyntheticTrace::new("smoke", 16, SimDuration::from_hours(6), 900)
            .seed(7)
            .build();
        let experiment = Experiment::over(trace, 7);
        bsub_bench::experiments::dynamics_with(
            &experiment,
            SimDuration::from_mins(120),
            SimDuration::from_mins(15),
        );
    } else {
        bsub_bench::experiments::dynamics();
    }
}
