//! Regenerates the paper's fig7 artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::fig7();
}
