//! Regenerates the paper's fig8 artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::fig8();
}
