//! Regenerates the paper's fig9 artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::fig9();
}
