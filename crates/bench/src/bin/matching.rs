//! The broker-side matching sweep: aggregated-index batch matching
//! ([`bsub_match::MatchIndex`]) against the naive per-filter reference
//! scan ([`bsub_match::ReferenceMatcher`]) as subscription counts grow
//! to a million.
//!
//! Unlike the figure sweeps, which replay Table-I-sized traces through
//! the full contact protocol, this harness isolates the *matching
//! plane* of a large broker: a deterministic population of subscribers
//! (1–4 topics each, drawn from a shared topic space) is loaded into
//! both matchers, decayed a few epochs, churned (every 20th subscriber
//! unsubscribes, forcing tombstones and tier compactions), and then a
//! deterministic event batch is matched through both paths.
//!
//! Every cell **proves** the index before timing it: the two matchers
//! must return identical per-event subscriber lists on the comparison
//! batch — the same equivalence the differential suite in
//! `crates/match/tests/differential.rs` establishes over randomized
//! interleavings, re-checked here at bench scale. At the largest cell,
//! the reference scan is timed on a truncated batch (the naive path is
//! O(subscribers) *per event*) and rates are compared per event.
//!
//! Flags (combinable):
//!
//! - `--smoke` — the CI-sized sweep (2k–10k subscribers,
//!   `matching_smoke.csv`, deterministic columns only, golden-diffed
//!   by CI) instead of the full 10k–1M sweep (`matching.csv`, which
//!   additionally records the measured per-event rates and speedup —
//!   see EXPERIMENTS.md);
//! - `--prof` — profile with `bsub-obs` and print the `match_*`
//!   counter/histogram tables per cell;
//! - `--check` — after measuring, gate the host-normalized CPU time
//!   against the committed `BENCH_perf.json` baseline, exactly like
//!   `scale --check`.
//!
//! Deterministic work counters (live subscribers, tiers, pool filters,
//! compactions, tier probes, candidates, matches) go into the CSV in
//! both modes; wall-clock rates go to stdout, the full CSV, and the
//! perf-gate entry in `BENCH_perf.json`.

use bsub_bench::output::{render_table, results_dir, write_csv};
use bsub_bench::perf::{self, PerfEntry, Tolerance};
use bsub_bloom::rng::SplitMix64;
use bsub_match::{Event, MatchIndex, MatchParams, ReferenceMatcher};
use bsub_obs::{self as obs, MetricsReport, ProfReport};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Master seed for subscriber interests and the event batch.
const MATCH_SEED: u64 = 0x00b5_0b0a_7c41;
/// Stream salts separating the independent deterministic draws.
const SUB_STREAM: u64 = 1;
const EVENT_STREAM: u64 = 2;
/// Events per matched batch.
const BATCH_EVENTS: usize = 512;
/// Decay epochs applied after loading (both matchers, lock-step).
const DECAY: u32 = 4;
/// Every CHURN-th subscriber unsubscribes before matching.
const CHURN: u64 = 20;
/// One in this many event draws is a key nobody subscribed to.
const ABSENT_EVERY: u64 = 10;

/// One cell of the sweep.
struct Cell {
    subs: u64,
    topics: u64,
    /// Events the reference scan is timed on (the naive path is
    /// O(subs) per event; at 1M subscribers a full batch would
    /// dominate the sweep). Equality is asserted on this prefix too.
    ref_events: usize,
}

struct CellOutcome {
    subs: u64,
    topics: u64,
    events: usize,
    live: usize,
    tiers: usize,
    pool_filters: usize,
    compactions: u64,
    tier_probes: u64,
    tier_hits: u64,
    candidates: u64,
    matched: u64,
    ref_events: usize,
    ref_candidates: u64,
    index_ns_per_event: f64,
    ref_ns_per_event: f64,
    speedup: f64,
    wall_ms: f64,
    prof: Option<ProfReport>,
}

fn smoke_cells() -> Vec<Cell> {
    vec![
        Cell {
            subs: 2_000,
            topics: 500,
            ref_events: BATCH_EVENTS,
        },
        Cell {
            subs: 10_000,
            topics: 1_000,
            ref_events: BATCH_EVENTS,
        },
    ]
}

fn full_cells() -> Vec<Cell> {
    vec![
        Cell {
            subs: 10_000,
            topics: 1_000,
            ref_events: BATCH_EVENTS,
        },
        Cell {
            subs: 100_000,
            topics: 4_000,
            ref_events: 128,
        },
        Cell {
            subs: 1_000_000,
            topics: 10_000,
            ref_events: 32,
        },
    ]
}

fn params() -> MatchParams {
    MatchParams::default()
}

fn topic(t: u64) -> String {
    format!("topic-{t}")
}

/// The 1–4 topics subscriber `id` registers, a stateless draw.
fn interests_of(id: u64, topics: u64) -> Vec<String> {
    let mut rng = SplitMix64::new(SplitMix64::mix(SplitMix64::mix(MATCH_SEED, SUB_STREAM), id));
    let n = 1 + (rng.next_u64() % 4) as usize;
    (0..n).map(|_| topic(rng.next_u64() % topics)).collect()
}

/// The deterministic event batch: mostly live topics, salted with
/// keys nobody subscribed to (the pruning path's bread and butter).
fn event_batch(topics: u64) -> Vec<Event> {
    let mut rng = SplitMix64::new(SplitMix64::mix(MATCH_SEED, EVENT_STREAM));
    (0..BATCH_EVENTS)
        .map(|_| {
            if rng.next_u64().is_multiple_of(ABSENT_EVERY) {
                Event::new(format!("unsubscribed-{}", rng.next_u64() % 4096))
            } else {
                Event::new(topic(rng.next_u64() % topics))
            }
        })
        .collect()
}

fn run_cell(cell: &Cell, prof: bool) -> CellOutcome {
    let wall_start = Instant::now();
    let p = params();
    let mut index = MatchIndex::new(p);
    let mut reference = ReferenceMatcher::from_params(&p);
    for id in 0..cell.subs {
        let keys = interests_of(id, cell.topics);
        index.subscribe(id, &keys);
        reference.subscribe(id, &keys);
    }
    index.decay(DECAY);
    reference.decay(DECAY);
    for id in (0..cell.subs).step_by(CHURN as usize) {
        index.unsubscribe(id);
        reference.unsubscribe(id);
    }

    let batch = event_batch(cell.topics);
    let ref_batch = &batch[..cell.ref_events.min(batch.len())];

    // Prove before measuring: index ≡ reference on the comparison
    // prefix, per-event subscriber lists byte-identical.
    let oracle = reference.match_events(ref_batch);
    let checked = index.match_events(ref_batch);
    assert_eq!(
        checked.matches, oracle.matches,
        "index diverged from the reference scan at {} subscribers",
        cell.subs
    );

    if prof {
        obs::start();
    }
    let start = Instant::now();
    let set = index.match_events(&batch);
    let index_ns = start.elapsed().as_nanos() as f64;
    let prof_report = prof.then(obs::finish);

    let start = Instant::now();
    let ref_set = reference.match_events(ref_batch);
    let ref_ns = start.elapsed().as_nanos() as f64;

    let index_ns_per_event = index_ns / batch.len() as f64;
    let ref_ns_per_event = ref_ns / ref_batch.len().max(1) as f64;

    CellOutcome {
        subs: cell.subs,
        topics: cell.topics,
        events: batch.len(),
        live: index.live_count(),
        tiers: index.tier_count(),
        pool_filters: index.pool_filter_count(),
        compactions: index.compactions(),
        tier_probes: set.stats.tier_probes,
        tier_hits: set.stats.tier_hits,
        candidates: set.stats.candidates,
        matched: set.stats.matched,
        ref_events: ref_batch.len(),
        ref_candidates: ref_set.stats.candidates,
        index_ns_per_event,
        ref_ns_per_event,
        speedup: ref_ns_per_event / index_ns_per_event.max(f64::MIN_POSITIVE),
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
        prof: prof_report,
    }
}

fn baseline_path() -> PathBuf {
    match std::env::var("BSUB_PERF_BASELINE") {
        Ok(custom) => PathBuf::from(custom),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let prof = args.iter().any(|a| a == "--prof");

    let (name, cells) = if smoke {
        ("matching-smoke", smoke_cells())
    } else {
        ("matching", full_cells())
    };

    let sweep_start = Instant::now();
    let outcomes: Vec<CellOutcome> = cells.iter().map(|c| run_cell(c, prof)).collect();
    let total_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    // Deterministic columns: identical on every host, so the smoke CSV
    // can be golden-diffed by CI. The full CSV additionally records
    // the measured per-event rates — it is the committed record of the
    // sweep, not a byte-stability gate.
    let det_headers = [
        "subs",
        "topics",
        "events",
        "live",
        "tiers",
        "pool_filters",
        "compactions",
        "tier_probes",
        "tier_hits",
        "candidates",
        "matches",
        "ref_events",
        "ref_candidates",
    ];
    let det_row = |o: &CellOutcome| {
        vec![
            o.subs.to_string(),
            o.topics.to_string(),
            o.events.to_string(),
            o.live.to_string(),
            o.tiers.to_string(),
            o.pool_filters.to_string(),
            o.compactions.to_string(),
            o.tier_probes.to_string(),
            o.tier_hits.to_string(),
            o.candidates.to_string(),
            o.matched.to_string(),
            o.ref_events.to_string(),
            o.ref_candidates.to_string(),
        ]
    };
    if smoke {
        let rows: Vec<Vec<String>> = outcomes.iter().map(det_row).collect();
        write_csv("matching_smoke", &det_headers, &rows);
    } else {
        let headers: Vec<&str> = det_headers
            .iter()
            .copied()
            .chain(["index_ns_per_event", "ref_ns_per_event", "speedup"])
            .collect();
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                let mut row = det_row(o);
                row.push(format!("{:.0}", o.index_ns_per_event));
                row.push(format!("{:.0}", o.ref_ns_per_event));
                row.push(format!("{:.1}", o.speedup));
                row
            })
            .collect();
        write_csv("matching", &headers, &rows);
    }

    let table_rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.subs.to_string(),
                o.live.to_string(),
                o.tiers.to_string(),
                format!("{:.1}", o.index_ns_per_event / 1e3),
                format!("{:.1}", o.ref_ns_per_event / 1e3),
                format!("{:.1}", o.speedup),
                format!(
                    "{:.1}",
                    o.candidates as f64 / (o.live.max(1) as f64 * o.events as f64) * 100.0
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name} — batched index vs per-filter scan"),
            &[
                "subs",
                "live",
                "tiers",
                "index_us/ev",
                "ref_us/ev",
                "speedup",
                "scan%"
            ],
            &table_rows,
        )
    );

    if prof {
        let mut metrics = MetricsReport::new();
        for o in &outcomes {
            if let Some(report) = &o.prof {
                metrics.add(&format!("matching-{}s", o.subs), report);
            }
        }
        print!("{}", metrics.render_table());
    }

    let largest = outcomes.last().expect("sweep has cells");
    if !smoke {
        assert!(
            largest.speedup >= 5.0,
            "batched matching must be ≥5x the reference scan at {} subscribers (got {:.1}x)",
            largest.subs,
            largest.speedup
        );
    }

    let entry = PerfEntry {
        experiment: name.to_string(),
        workers: 1,
        runs: outcomes.len() as u64,
        total_ms,
        cpu_ms: outcomes.iter().map(|o| o.wall_ms).sum(),
        speedup: largest.speedup,
        calib_ns: bsub_obs::calibrate_ns(),
        bytes: outcomes.iter().map(|o| o.candidates).sum(),
        forwardings: outcomes.iter().map(|o| o.tier_probes).sum(),
        delivered: outcomes.iter().map(|o| o.matched).sum(),
    };
    let trajectory = results_dir().join("BENCH_perf.json");
    perf::append(&trajectory, &entry);
    println!("[appended {}]", trajectory.display());

    if check {
        let baseline = perf::load(&baseline_path());
        match perf::check(&baseline, &entry, Tolerance::from_env()) {
            Ok(note) => println!("[perf check] {note}"),
            Err(err) => {
                eprintln!("[perf check FAILED] {err}");
                std::process::exit(1);
            }
        }
    }
}
