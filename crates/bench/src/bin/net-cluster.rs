//! The loopback cluster harness: runs the smoke workload over real
//! sockets and proves the networked runtime reproduces the serial
//! simulator *exactly*.
//!
//! For each smoke protocol (PUSH, B-SUB, PULL) the coordinator:
//!
//! 1. runs the serial simulator on the shared smoke environment
//!    (ground truth),
//! 2. spawns `--workers` OS processes (re-invocations of this binary
//!    with `--worker`), each hosting a full protocol instance behind
//!    a `bsub-net` peer manager on Unix-domain sockets,
//! 3. drives the same contact schedule through the cluster and
//!    asserts the resulting [`bsub_sim::SimReport`] equals the serial
//!    one — exiting non-zero on any divergence.
//!
//! The run doubles as the live observability demo (DESIGN.md §15):
//! with a stats cadence set (the default), every worker ships `STATS`
//! deltas of its in-process profile to the coordinator, which merges
//! them into one cluster-wide [`bsub_obs::ProfReport`] served live by
//! a [`StatsServer`] for the whole run. After the last protocol the
//! harness scrapes its own endpoint once and asserts the scrape
//! equals the in-process snapshot byte for byte — the live path and
//! the offline merge cannot drift apart silently.
//!
//! Artifacts (under `results/` or `$BSUB_RESULTS_DIR`):
//!
//! - `net_smoke.csv` — the cluster's per-protocol report columns;
//! - `net_smoke_sim.csv` — the serial simulator's, same schema. CI
//!   diffs the two files byte for byte.
//! - `net_latency.csv` — wall-clock p50/p99 exchange latency plus one
//!   per-frame-kind latency row per observed kind, from the merged
//!   cluster report's `net_frame_*_ns` histograms (host-dependent;
//!   never diffed).
//! - `net_metrics.json` — the final merged cluster report, same JSON
//!   the `/metrics.json` endpoint serves (host-dependent).
//! - `BENCH_perf.json` — one appended `net_smoke` perf entry.
//!
//! Flags: `--smoke` (the only cluster size for now), `--check` (gate
//! the perf entry against the committed baseline), `--workers N`
//! (default 2), `--stats-cadence-ms N` (worker STATS delta cadence;
//! default 100, `0` disables the whole stats plane), `--stats-addr A`
//! (endpoint bind, `HOST:PORT` or `unix:PATH`; default
//! `127.0.0.1:0`). `--scrape A` is a client mode: fetch `/metrics`
//! from a running endpoint, print it, and exit. `--worker --protocol
//! P --dir D --peer N --workers W` is the internal worker-process
//! mode.

use bsub_bench::experiments::{smoke_environment, smoke_protocols};
use bsub_bench::output::{render_table, results_dir, write_csv};
use bsub_bench::perf::{self, PerfEntry, Tolerance};
use bsub_bench::{Experiment, MASTER_SEED};
use bsub_net::{
    frame_time_hist, render_prometheus, run_coordinator_with, run_worker, scrape, ClusterSpec,
    EndpointAddr, FrameKind, StatsHandle, StatsServer,
};
use bsub_obs::calibrate_ns;
use bsub_sim::{ProtocolFactory, SimConfig, SimReport};
use bsub_traces::SimDuration;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

fn spec_for(experiment: &Experiment, ttl: SimDuration, workers: u32) -> ClusterSpec {
    ClusterSpec::new(
        Arc::clone(&experiment.trace),
        Arc::clone(&experiment.subscriptions),
        Arc::clone(&experiment.schedule),
        SimConfig {
            ttl,
            ..SimConfig::default()
        },
        MASTER_SEED,
        workers,
    )
}

fn factory_for(experiment: &Experiment, ttl: SimDuration, label: &str) -> Box<dyn ProtocolFactory> {
    let kind = smoke_protocols(experiment, ttl)
        .into_iter()
        .find(|(l, _)| *l == label)
        .unwrap_or_else(|| panic!("unknown protocol {label}"))
        .1;
    experiment.factory(kind, ttl)
}

/// The deterministic report columns — identical between the cluster
/// and serial CSVs when (and only when) the runs are equal.
const REPORT_HEADERS: [&str; 12] = [
    "protocol",
    "generated",
    "target_pairs",
    "delivered",
    "false_delivered",
    "delay_ms",
    "forwardings",
    "control_bytes",
    "data_bytes",
    "contacts",
    "injections",
    "false_injections",
];

fn report_row(report: &SimReport) -> Vec<String> {
    vec![
        report.protocol.clone(),
        report.generated.to_string(),
        report.target_pairs.to_string(),
        report.delivered.to_string(),
        report.false_delivered.to_string(),
        report.delay_total.as_millis().to_string(),
        report.forwardings.to_string(),
        report.control_bytes.to_string(),
        report.data_bytes.to_string(),
        report.contacts.to_string(),
        report.injections.to_string(),
        report.false_injections.to_string(),
    ]
}

fn percentile_us(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = (sorted_ns.len() - 1) * pct / 100;
    sorted_ns[rank] as f64 / 1e3
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// STATS delta cadence from `--stats-cadence-ms` (default 100 ms);
/// `0` switches the whole stats plane off.
fn stats_cadence(args: &[String]) -> Option<Duration> {
    let ms: u64 = match arg_value(args, "--stats-cadence-ms") {
        Some(raw) => match raw.parse() {
            Ok(ms) => ms,
            Err(_) => {
                eprintln!("--stats-cadence-ms requires a non-negative integer");
                std::process::exit(2);
            }
        },
        None => 100,
    };
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// Parses a stats endpoint address: `unix:PATH` or a TCP `HOST:PORT`.
fn parse_stats_addr(raw: &str) -> EndpointAddr {
    if let Some(path) = raw.strip_prefix("unix:") {
        return EndpointAddr::Unix(PathBuf::from(path));
    }
    match raw.parse() {
        Ok(sock) => EndpointAddr::Tcp(sock),
        Err(_) => {
            eprintln!("--stats-addr/--scrape want HOST:PORT or unix:PATH, got {raw}");
            std::process::exit(2);
        }
    }
}

fn worker_main(args: &[String]) -> ! {
    let protocol = arg_value(args, "--protocol").expect("--protocol");
    let dir = PathBuf::from(arg_value(args, "--dir").expect("--dir"));
    let peer: u32 = arg_value(args, "--peer")
        .expect("--peer")
        .parse()
        .expect("numeric --peer");
    let workers: u32 = arg_value(args, "--workers")
        .expect("--workers")
        .parse()
        .expect("numeric --workers");
    let (experiment, ttl) = smoke_environment();
    let mut spec = spec_for(&experiment, ttl, workers);
    if let Some(cadence) = stats_cadence(args) {
        spec = spec.with_stats_cadence(cadence);
    }
    let factory = factory_for(&experiment, ttl, &protocol);
    match run_worker(&spec, factory.as_ref(), &dir, peer) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {peer} ({protocol}): {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        worker_main(&args);
    }
    if let Some(raw) = arg_value(&args, "--scrape") {
        match scrape(&parse_stats_addr(&raw), "/metrics") {
            Ok(text) => {
                print!("{text}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("net-cluster: scrape {raw} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let check = args.iter().any(|a| a == "--check");
    let workers: u32 = arg_value(&args, "--workers")
        .map(|v| v.parse().expect("numeric --workers"))
        .unwrap_or(2);
    // `--smoke` is the only cluster size today; accept and ignore it
    // so the ci.sh invocation reads like the other smoke gates.
    let cadence = stats_cadence(&args);
    let cadence_ms = cadence.map_or(0, |c| c.as_millis() as u64);

    // One handle for the whole run: the coordinator merges every
    // worker's STATS deltas into it across all three protocols, and
    // the server exposes it live while the cluster is executing.
    let stats = cadence.map(|_| StatsHandle::new());
    let server = stats.as_ref().map(|handle| {
        let bind = arg_value(&args, "--stats-addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
        let server = StatsServer::serve(&parse_stats_addr(&bind), handle.clone())
            .expect("bind stats endpoint");
        println!(
            "[stats endpoint {} — /metrics, /metrics.json]",
            server.local_addr()
        );
        server
    });

    let (experiment, ttl) = smoke_environment();
    let dir_root = std::env::temp_dir().join(format!("bsub-net-cluster-{}", std::process::id()));
    let exe = std::env::current_exe().expect("current executable");

    let mut cluster_rows = Vec::new();
    let mut serial_rows = Vec::new();
    let mut latency_rows = Vec::new();
    let mut total_wall_ms = 0.0f64;
    let mut sum_bytes = 0u64;
    let mut sum_forwardings = 0u64;
    let mut sum_delivered = 0u64;
    let mut runs = 0u64;

    for (label, kind) in smoke_protocols(&experiment, ttl) {
        let factory = experiment.factory(kind, ttl);
        let serial = experiment
            .sim(ttl)
            .run_factory(factory.as_ref(), MASTER_SEED)
            .0;

        let dir = dir_root.join(label);
        std::fs::create_dir_all(&dir).expect("create cluster socket dir");
        let mut children: Vec<_> = (1..=workers)
            .map(|w| {
                Command::new(&exe)
                    .args([
                        "--worker",
                        "--protocol",
                        label,
                        "--dir",
                        dir.to_str().expect("utf-8 temp dir"),
                        "--peer",
                        &w.to_string(),
                        "--workers",
                        &workers.to_string(),
                        "--stats-cadence-ms",
                        &cadence_ms.to_string(),
                    ])
                    .stdin(Stdio::null())
                    .spawn()
                    .expect("spawn worker process")
            })
            .collect();

        let mut spec = spec_for(&experiment, ttl, workers);
        if let Some(cadence) = cadence {
            spec = spec.with_stats_cadence(cadence);
        }
        let outcome = match run_coordinator_with(&spec, factory.as_ref(), &dir, stats.clone()) {
            Ok(outcome) => outcome,
            Err(e) => {
                for child in &mut children {
                    let _ = child.kill();
                }
                eprintln!("net-cluster: coordinator failed for {label}: {e}");
                std::process::exit(1);
            }
        };
        for mut child in children {
            let status = child.wait().expect("wait for worker");
            assert!(status.success(), "worker process failed for {label}");
        }

        if outcome.report != serial {
            eprintln!("net-cluster: {label} cluster run DIVERGED from the serial simulator");
            eprintln!("  serial:  {serial:?}");
            eprintln!("  cluster: {:?}", outcome.report);
            std::process::exit(2);
        }

        let mut sorted = outcome.exchange_ns.clone();
        sorted.sort_unstable();
        let wall_ms = outcome.wall.as_secs_f64() * 1e3;
        let exchanges = outcome.exchange_ns.len();
        latency_rows.push(vec![
            label.to_string(),
            "exchange".to_string(),
            exchanges.to_string(),
            format!("{:.1}", percentile_us(&sorted, 50)),
            format!("{:.1}", percentile_us(&sorted, 99)),
            format!(
                "{:.1}",
                exchanges as f64 / outcome.wall.as_secs_f64().max(1e-9)
            ),
            format!("{wall_ms:.1}"),
        ]);
        total_wall_ms += wall_ms;
        sum_bytes = sum_bytes.saturating_add(outcome.report.total_bytes());
        sum_forwardings = sum_forwardings.saturating_add(outcome.report.forwardings);
        sum_delivered = sum_delivered.saturating_add(outcome.report.delivered);
        runs += 1;

        cluster_rows.push(report_row(&outcome.report));
        serial_rows.push(report_row(&serial));
    }
    let _ = std::fs::remove_dir_all(&dir_root);

    // Live-path cross-check and artifacts: the endpoint's scrape must
    // equal the in-process snapshot byte for byte (same renderer, same
    // handle — a drift here means the server thread is serving stale
    // or foreign state). The merged report then yields one latency row
    // per observed frame kind and the `net_metrics.json` artifact.
    if let (Some(stats), Some(server)) = (&stats, &server) {
        let merged = stats.snapshot();
        assert!(
            !merged.is_empty(),
            "stats cadence was on but the merged cluster report is empty"
        );
        let text = scrape(server.local_addr(), "/metrics").expect("scrape /metrics");
        assert_eq!(
            text,
            render_prometheus(&merged),
            "live /metrics scrape diverged from the in-process snapshot"
        );
        let json = scrape(server.local_addr(), "/metrics.json").expect("scrape /metrics.json");
        assert_eq!(
            json,
            merged.to_json(),
            "live /metrics.json scrape diverged from the in-process snapshot"
        );
        for kind in FrameKind::ALL {
            let hist = merged.time_hist(frame_time_hist(kind));
            if hist.count() == 0 {
                continue;
            }
            latency_rows.push(vec![
                "all".to_string(),
                format!("frame_{}", kind.name()),
                hist.count().to_string(),
                format!("{:.1}", hist.quantile(0.5) as f64 / 1e3),
                format!("{:.1}", hist.quantile(0.99) as f64 / 1e3),
                format!(
                    "{:.1}",
                    hist.count() as f64 / (total_wall_ms / 1e3).max(1e-9)
                ),
                format!("{total_wall_ms:.1}"),
            ]);
        }
        let metrics_path = results_dir().join("net_metrics.json");
        std::fs::write(&metrics_path, format!("{}\n", merged.to_json()))
            .expect("write net_metrics.json");
        println!(
            "[wrote {} — merged live cluster report, scrape-verified]",
            metrics_path.display()
        );
    }

    print!(
        "{}",
        render_table(
            "net_smoke — cluster report (== serial simulator)",
            &REPORT_HEADERS,
            &cluster_rows
        )
    );
    let latency_headers = [
        "protocol", "metric", "samples", "p50_us", "p99_us", "per_sec", "wall_ms",
    ];
    print!(
        "{}",
        render_table(
            "net_smoke — exchange & per-frame-kind latency (wall clock, not diffed)",
            &latency_headers,
            &latency_rows
        )
    );
    write_csv("net_smoke", &REPORT_HEADERS, &cluster_rows);
    write_csv("net_smoke_sim", &REPORT_HEADERS, &serial_rows);
    write_csv("net_latency", &latency_headers, &latency_rows);

    let entry = PerfEntry {
        experiment: "net_smoke".to_string(),
        workers: u64::from(workers),
        runs,
        total_ms: total_wall_ms,
        cpu_ms: total_wall_ms,
        speedup: 1.0,
        calib_ns: calibrate_ns(),
        bytes: sum_bytes,
        forwardings: sum_forwardings,
        delivered: sum_delivered,
    };
    let trajectory = results_dir().join("BENCH_perf.json");
    perf::append(&trajectory, &entry);
    println!("[appended {}]", trajectory.display());

    if check {
        let baseline_path = match std::env::var("BSUB_PERF_BASELINE") {
            Ok(custom) => PathBuf::from(custom),
            Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
        };
        let baseline = perf::load(&baseline_path);
        match perf::check(&baseline, &entry, Tolerance::from_env()) {
            Ok(msg) => println!("[perf ok] {msg}"),
            Err(msg) => {
                eprintln!("[perf REGRESSION] {msg}");
                std::process::exit(3);
            }
        }
    }
    println!("net-cluster: all protocols reproduced the serial simulator exactly");
}
