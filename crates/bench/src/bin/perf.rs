//! The metrics-and-profiling driver: reruns the paper sweeps with the
//! `bsub-obs` profiler attached and reports what the hot paths did —
//! per-protocol counters, buffer high-water marks, and timing/size
//! histograms — as a terminal table plus `results/metrics_<name>.json`.
//! Every sweep also appends a [`bsub_bench::perf::PerfEntry`] to the
//! `BENCH_perf.json` trajectory. See DESIGN.md §9.
//!
//! Flags (combinable):
//!
//! - `--smoke` — profile one small fig7-shaped synthetic sweep
//!   (seconds) instead of the full fig7/fig8/fig9 replay (minutes);
//! - `--check` — after measuring, compare each sweep against the
//!   committed baseline (`BSUB_PERF_BASELINE`, defaulting to the
//!   repo's `results/BENCH_perf.json`) with the median-of-N regression
//!   gate, exiting non-zero on a regression. CI runs
//!   `perf --smoke --check`.

use bsub_bench::engine::{Executor, SweepSpec};
use bsub_bench::output::{record_perf, results_dir};
use bsub_bench::perf::{self, Tolerance};
use bsub_bench::{experiments, Experiment, MASTER_SEED};
use std::path::{Path, PathBuf};

fn baseline_path() -> PathBuf {
    match std::env::var("BSUB_PERF_BASELINE") {
        Ok(custom) => PathBuf::from(custom),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let specs: Vec<SweepSpec> = if smoke {
        vec![experiments::perf_smoke_spec()]
    } else {
        let haggle = Experiment::haggle(MASTER_SEED);
        let reality = Experiment::reality(MASTER_SEED);
        vec![
            experiments::ttl_sweep_spec("fig7", &haggle),
            experiments::ttl_sweep_spec("fig8", &reality),
            experiments::df_sweep_spec(&haggle, &reality),
        ]
    };

    let baseline = perf::load(&baseline_path());
    let tolerance = Tolerance::from_env();
    let mut failures = 0usize;
    for mut spec in specs {
        for run in &mut spec.runs {
            run.record.prof = true;
        }
        let outcome = Executor::from_env().run(&spec);

        let metrics = outcome.metrics_report();
        println!("\n== {} — hot-path metrics ==", outcome.name);
        print!("{}", metrics.render_table());
        let json_path = results_dir().join(format!("metrics_{}.json", outcome.name));
        std::fs::write(&json_path, format!("{}\n", metrics.to_json())).expect("write metrics JSON");
        println!("[written {}]", json_path.display());

        record_perf(&outcome);
        if check {
            // record_perf appended this sweep's entry (with its host
            // calibration) to the results trajectory — reuse it rather
            // than calibrating twice.
            let trajectory = perf::load(&results_dir().join("BENCH_perf.json"));
            let entry = trajectory
                .iter()
                .rev()
                .find(|e| e.experiment == outcome.name)
                .expect("record_perf appended this sweep");
            match perf::check(&baseline, entry, tolerance) {
                Ok(note) => println!("[perf check] {note}"),
                Err(err) => {
                    eprintln!("[perf check FAILED] {err}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} perf regression(s) against {}",
            baseline_path().display()
        );
        std::process::exit(1);
    }
}
