//! The million-node scale harness: streams a synthetic contact
//! schedule through the packed TCBF kernels and reports sustained
//! event throughput and resident filter memory.
//!
//! Unlike the figure sweeps, which replay Table-I-sized traces through
//! the full protocol, this harness isolates the *filter plane*: every
//! contact event drives one word-parallel A-merge of the consumer's
//! interest filter into the meeting broker's relay
//! ([`bsub_bloom::PackedTcbf::a_merge_words`]), relays decay lazily on
//! a fixed event cadence (O(1) per filter via the epoch offset), and a
//! sampled subset of events runs existential plus preferential queries
//! against the merged state. The contact schedule itself is a
//! [`bsub_traces::synthetic::ContactStream`] — events are derived from
//! their index on demand, so a million-node sweep holds no event
//! vector and memory stays constant in the schedule length.
//!
//! Flags (combinable):
//!
//! - `--smoke` — the CI-sized sweep (25k–100k nodes, `scale_smoke.csv`)
//!   instead of the full 250k–1M sweep (`scale.csv`, see
//!   EXPERIMENTS.md);
//! - `--check` — after measuring, gate the host-normalized CPU time
//!   against the committed `BENCH_perf.json` baseline, exactly like
//!   `perf --check`.
//!
//! Deterministic work counters (events, merges, merged bytes, query
//! hits) go into the CSV; wall-clock throughput and the perf-gate
//! entry go into `BENCH_perf.json`, keeping the CSV byte-stable
//! across hosts like every other results artifact.

use bsub_bench::output::{render_table, results_dir, write_csv};
use bsub_bench::perf::{self, PerfEntry, Tolerance};
use bsub_bloom::rng::SplitMix64;
use bsub_bloom::PackedTcbf;
use bsub_traces::synthetic::ContactStream;
use bsub_traces::SimDuration;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Relay / interest filter width in bits (multiple of 64 so every
/// word is fully used).
const FILTER_BITS: usize = 8192;
/// Hash functions per key.
const HASHES: usize = 4;
/// Initial counter value `C` — well under the nibble cap so a few
/// A-merges accumulate before saturating at 15.
const INITIAL: u8 = 8;
/// Brokers per deployment; nodes map to brokers by id residue.
const BROKERS: usize = 256;
/// Distinct interest profiles in the arena; nodes map by id residue.
/// Bounds memory regardless of node count.
const PROFILES: usize = 512;
/// Contact events per node in the schedule.
const EVENTS_PER_NODE: u64 = 4;
/// Every relay decays by 1 after this many events.
const DECAY_EVERY: u64 = 4096;
/// One in this many events also runs the query pair.
const QUERY_EVERY: u64 = 64;
/// Seed for the schedule and the interest arena.
const SCALE_SEED: u64 = 0x000b_50b5_ca1e;

/// One (nodes × interest-cardinality) cell of the sweep.
struct Cell {
    nodes: u64,
    interests: usize,
}

/// Deterministic work sums plus the measured wall clock for one cell.
struct CellOutcome {
    nodes: u64,
    interests: usize,
    events: u64,
    merges: u64,
    decays: u64,
    queries: u64,
    hits: u64,
    merged_bytes: u64,
    resident_bytes: u64,
    wall_ms: f64,
}

fn smoke_cells() -> Vec<Cell> {
    vec![
        Cell {
            nodes: 25_000,
            interests: 4,
        },
        Cell {
            nodes: 50_000,
            interests: 8,
        },
        Cell {
            nodes: 100_000,
            interests: 16,
        },
    ]
}

fn full_cells() -> Vec<Cell> {
    vec![
        Cell {
            nodes: 250_000,
            interests: 4,
        },
        Cell {
            nodes: 500_000,
            interests: 8,
        },
        Cell {
            nodes: 1_000_000,
            interests: 16,
        },
    ]
}

/// Builds the interest-profile arena: `PROFILES` packed filters, each
/// holding `interests` keys, stored as raw words for the merge loop.
fn build_arena(interests: usize) -> Vec<Vec<u64>> {
    (0..PROFILES)
        .map(|p| {
            let mut filter = PackedTcbf::new(FILTER_BITS, HASHES, INITIAL);
            for j in 0..interests {
                filter
                    .insert(profile_key(p, j))
                    .expect("fresh filter accepts inserts");
            }
            filter.materialized_words()
        })
        .collect()
}

fn profile_key(profile: usize, j: usize) -> String {
    format!("topic-{profile}-{j}")
}

fn run_cell(cell: &Cell) -> CellOutcome {
    let duration = SimDuration::from_hours(24);
    let total = cell.nodes * EVENTS_PER_NODE;
    let stream = ContactStream::new(cell.nodes, duration, total, SCALE_SEED);
    let arena = build_arena(cell.interests);
    let mut relays: Vec<PackedTcbf> = (0..BROKERS)
        .map(|_| PackedTcbf::new(FILTER_BITS, HASHES, INITIAL))
        .collect();
    let word_bytes = relays[0].word_bytes();
    let resident_bytes = (relays.len() * word_bytes + arena.len() * arena[0].len() * 8) as u64;

    let mut merges: u64 = 0;
    let mut decays: u64 = 0;
    let mut queries: u64 = 0;
    let mut hits: u64 = 0;
    let mut rng = SplitMix64::new(SplitMix64::mix(SCALE_SEED, cell.nodes));

    let start = Instant::now();
    for (index, event) in stream.iter().enumerate() {
        let index = index as u64;
        // The higher-id endpoint plays broker, the lower-id endpoint
        // consumer: fold the consumer's interests into the broker's
        // relay with one word-parallel pass.
        let consumer = event.a.index();
        let broker = event.b.index() % BROKERS;
        relays[broker].a_merge_words(&arena[consumer % PROFILES]);
        merges += 1;

        if index % DECAY_EVERY == DECAY_EVERY - 1 {
            for relay in &mut relays {
                relay.decay(1);
            }
            decays += relays.len() as u64;
        }

        if index % QUERY_EVERY == QUERY_EVERY - 1 {
            let profile = consumer % PROFILES;
            let key = profile_key(profile, rng.below_usize(cell.interests));
            if relays[broker].contains(&key) {
                hits += 1;
            }
            let other = event.a.index() % BROKERS;
            if other != broker {
                let pref = relays[broker]
                    .preference(&relays[other], &key)
                    .expect("same geometry");
                if pref.is_positive() {
                    hits += 1;
                }
            }
            queries += 1;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    CellOutcome {
        nodes: cell.nodes,
        interests: cell.interests,
        events: total,
        merges,
        decays,
        queries,
        hits,
        merged_bytes: merges * word_bytes as u64,
        resident_bytes,
        wall_ms,
    }
}

fn baseline_path() -> PathBuf {
    match std::env::var("BSUB_PERF_BASELINE") {
        Ok(custom) => PathBuf::from(custom),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let (name, cells) = if smoke {
        ("scale-smoke", smoke_cells())
    } else {
        ("scale", full_cells())
    };

    let sweep_start = Instant::now();
    let outcomes: Vec<CellOutcome> = cells.iter().map(run_cell).collect();
    let total_ms = sweep_start.elapsed().as_secs_f64() * 1e3;

    let headers = [
        "nodes",
        "interests",
        "events",
        "merges",
        "decays",
        "queries",
        "hits",
        "merged_bytes",
        "resident_bytes",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.nodes.to_string(),
                o.interests.to_string(),
                o.events.to_string(),
                o.merges.to_string(),
                o.decays.to_string(),
                o.queries.to_string(),
                o.hits.to_string(),
                o.merged_bytes.to_string(),
                o.resident_bytes.to_string(),
            ]
        })
        .collect();
    write_csv(&name.replace('-', "_"), &headers, &rows);

    let table_rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.nodes.to_string(),
                o.interests.to_string(),
                format!("{:.1}", o.wall_ms),
                format!("{:.2}", o.events as f64 / o.wall_ms * 1e3 / 1e6),
                format!("{:.1}", o.resident_bytes as f64 / 1024.0 / 1024.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name} — packed-kernel throughput"),
            &["nodes", "interests", "wall_ms", "Mevents/s", "MiB"],
            &table_rows,
        )
    );

    let cpu_ms: f64 = outcomes.iter().map(|o| o.wall_ms).sum();
    let entry = PerfEntry {
        experiment: name.to_string(),
        workers: 1,
        runs: outcomes.len() as u64,
        total_ms,
        cpu_ms,
        speedup: cpu_ms / total_ms.max(f64::MIN_POSITIVE),
        calib_ns: bsub_obs::calibrate_ns(),
        bytes: outcomes.iter().map(|o| o.merged_bytes).sum(),
        forwardings: outcomes.iter().map(|o| o.merges).sum(),
        delivered: outcomes.iter().map(|o| o.hits).sum(),
    };
    let trajectory = results_dir().join("BENCH_perf.json");
    perf::append(&trajectory, &entry);
    println!("[appended {}]", trajectory.display());

    if check {
        let baseline = perf::load(&baseline_path());
        match perf::check(&baseline, &entry, Tolerance::from_env()) {
            Ok(note) => println!("[perf check] {note}"),
            Err(err) => {
                eprintln!("[perf check FAILED] {err}");
                std::process::exit(1);
            }
        }
    }
}
