//! The 10M-node scale harness: streams a synthetic contact schedule
//! through the packed TCBF kernels on a sharded, deterministic
//! parallel engine and reports sustained event throughput, resident
//! filter memory, and peak process RSS.
//!
//! Unlike the figure sweeps, which replay Table-I-sized traces through
//! the full protocol, this harness isolates the *filter plane*: every
//! contact event folds the consumer's interest profile into the
//! meeting broker's relay with one sparse A-merge
//! ([`bsub_bloom::PackedTcbf::a_merge_sparse`]), relays decay lazily
//! once per epoch (O(1) per filter via the epoch offset), and a
//! sampled subset of events runs existential plus preferential queries
//! against the merged state. The contact schedule is a
//! [`bsub_traces::synthetic::ContactStream`] — events derive from
//! their index on demand, so a ten-million-node sweep holds no event
//! vector and memory stays constant in the schedule length.
//!
//! # Sharded execution (DESIGN.md §11)
//!
//! Brokers partition across `S` shards by residue (`broker % S`), and
//! the schedule is processed in epochs of [`EPOCH_EVENTS`] events.
//! Each epoch runs four barrier-separated phases on `S` persistent
//! workers:
//!
//! 1. **Derive** — worker `w` derives the endpoints of every event
//!    with `index % S == w` ([`ContactStream::endpoints_at`], which
//!    skips the unused duration draw) and buckets the resulting merge
//!    job by the owning broker shard;
//! 2. **Merge** — worker `w` applies every job destined for its own
//!    brokers. Saturating nibble addition is commutative and
//!    associative, so the final relay state is independent of
//!    application order — the root of shard-count invariance;
//! 3. **Query** — sampled events query *end-of-epoch, pre-decay*
//!    state, read-only across all shards. Anchoring queries to the
//!    epoch boundary (rather than a mid-epoch interleaving) is what
//!    makes hit counts identical for every `S`, including `S = 1`;
//! 4. **Decay** — worker `w` decays its own relays by 1 (full epochs
//!    only, preserving the serial cadence).
//!
//! Query key draws are stateless (`mix(seed, index)`), so no RNG
//! stream crosses a shard boundary. The result: every deterministic
//! CSV column is byte-identical for any shard count, which the full
//! sweep demonstrates by running the 10M-node cell at several `S`.
//!
//! Flags (combinable):
//!
//! - `--smoke` — the CI-sized sweep (25k–100k nodes, `scale_smoke.csv`)
//!   instead of the full 250k–10M sweep (`scale.csv`, see
//!   EXPERIMENTS.md);
//! - `--shards N` — shard count for the sweep (default from
//!   `BSUB_SHARDS`, else 1);
//! - `--prof` — profile each worker with `bsub-obs`, absorb the
//!   per-shard reports in deterministic shard order
//!   ([`bsub_obs::absorb`]), cross-check the merge counter against the
//!   engine's own sums, and print the per-cell metric tables;
//! - `--check` — after measuring, gate the host-normalized CPU time
//!   against the committed `BENCH_perf.json` baseline, exactly like
//!   `perf --check`.
//!
//! Deterministic work counters (events, merges, merged bytes, query
//! hits) go into the CSV; wall-clock throughput, peak RSS, and the
//! perf-gate entry go to stdout and `BENCH_perf.json`, keeping the CSV
//! byte-stable across hosts — and across shard counts — like every
//! other results artifact.
//!
//! Each barrier phase is additionally timed on every run (cheap: two
//! clock reads per phase per epoch per worker, never any allocation),
//! and the summed work time lands in four `scale-phase-{derive,merge,
//! query,decay}` trajectory entries gated alongside the sweep's own —
//! so a regression in, say, the merge kernel is attributed to its
//! phase instead of disappearing into the total. Under `--prof` the
//! same spans also feed the `scale_*_ns` histograms (one sample per
//! epoch per worker), giving tail latencies per phase.

use bsub_bench::output::{render_table, results_dir, write_csv};
use bsub_bench::perf::{self, PerfEntry, Tolerance};
use bsub_bloom::rng::SplitMix64;
use bsub_bloom::PackedTcbf;
use bsub_obs::{self as obs, Counter, MetricsReport, ProfReport, TimeHist};
use bsub_traces::synthetic::ContactStream;
use bsub_traces::SimDuration;
use std::path::{Path, PathBuf};
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

/// Relay / interest filter width in bits (multiple of 64 so every
/// word is fully used).
const FILTER_BITS: usize = 8192;
/// Hash functions per key.
const HASHES: usize = 4;
/// Initial counter value `C` — well under the nibble cap so a few
/// A-merges accumulate before saturating at 15.
const INITIAL: u8 = 8;
/// Brokers per deployment; nodes map to brokers by id residue.
const BROKERS: usize = 256;
/// Distinct interest profiles in the arena; nodes map by id residue.
/// Bounds memory regardless of node count.
const PROFILES: usize = 512;
/// Contact events per node in the schedule.
const EVENTS_PER_NODE: u64 = 4;
/// Events per epoch: every relay decays by 1 at each full epoch
/// boundary, and queries observe end-of-epoch pre-decay state.
const EPOCH_EVENTS: u64 = 4096;
/// One in this many events also runs the query pair.
const QUERY_EVERY: u64 = 64;
/// Seed for the schedule and the interest arena.
const SCALE_SEED: u64 = 0x000b_50b5_ca1e;
/// Stream salt separating the stateless query-key draws from every
/// other consumer of [`SCALE_SEED`].
const QUERY_STREAM: u64 = 0x00c0_ffee_9e37;
/// Shard counts the full sweep measures on the largest cell.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
/// The four barrier-separated phase names, in execution order. Each
/// phase's summed work time becomes a `scale-phase-*` entry in the
/// perf trajectory, gated like every other experiment.
const PHASES: [&str; 4] = ["derive", "merge", "query", "decay"];
/// The profiler histogram behind each phase (DESIGN.md §15): one
/// sample per epoch per worker when `--prof` is set.
const PHASE_HISTS: [TimeHist; 4] = [
    TimeHist::ScaleDeriveNs,
    TimeHist::ScaleMergeNs,
    TimeHist::ScaleQueryNs,
    TimeHist::ScaleDecayNs,
];

/// One (nodes × interest-cardinality) cell of the sweep.
struct Cell {
    nodes: u64,
    interests: usize,
}

/// Deterministic work sums plus the measured wall clock for one cell.
struct CellOutcome {
    nodes: u64,
    interests: usize,
    shards: usize,
    events: u64,
    merges: u64,
    decays: u64,
    queries: u64,
    hits: u64,
    merged_bytes: u64,
    resident_bytes: u64,
    wall_ms: f64,
    peak_rss_kb: u64,
    /// Summed per-worker work time inside each barrier phase
    /// ([`PHASES`] order), excluding barrier waits.
    phase_ns: [u64; 4],
    prof: Option<ProfReport>,
}

fn smoke_cells() -> Vec<Cell> {
    vec![
        Cell {
            nodes: 25_000,
            interests: 4,
        },
        Cell {
            nodes: 50_000,
            interests: 8,
        },
        Cell {
            nodes: 100_000,
            interests: 16,
        },
    ]
}

fn full_cells() -> Vec<Cell> {
    vec![
        Cell {
            nodes: 250_000,
            interests: 4,
        },
        Cell {
            nodes: 500_000,
            interests: 8,
        },
        Cell {
            nodes: 1_000_000,
            interests: 16,
        },
    ]
}

/// The full sweep's tentpole cell, run once per [`SHARD_SWEEP`] entry.
fn tentpole_cell() -> Cell {
    Cell {
        nodes: 10_000_000,
        interests: 16,
    }
}

/// Builds the interest-profile arena in the sparse `(word, packed)`
/// form [`PackedTcbf::a_merge_sparse`] consumes: `PROFILES` filters,
/// each holding `interests` keys. At B-SUB's sizing most words are
/// zero, so the sparse form carries ~8× fewer words per merge than
/// the dense arena the harness previously streamed.
fn build_arena(interests: usize) -> Vec<Vec<(u32, u64)>> {
    (0..PROFILES)
        .map(|p| {
            let mut filter = PackedTcbf::new(FILTER_BITS, HASHES, INITIAL);
            for j in 0..interests {
                filter
                    .insert(profile_key(p, j))
                    .expect("fresh filter accepts inserts");
            }
            filter.sparse_words()
        })
        .collect()
}

fn profile_key(profile: usize, j: usize) -> String {
    format!("topic-{profile}-{j}")
}

/// One derived merge: fold `arena[profile]` into relay `slot` of the
/// owning shard.
struct MergeJob {
    slot: u32,
    profile: u32,
}

/// Everything the workers share for one cell. Relays are grouped by
/// owning shard (`broker % S` → group, `broker / S` → slot); buckets
/// are a producer × destination mailbox matrix so phase A writes are
/// uncontended.
struct Engine<'a> {
    stream: &'a ContactStream,
    arena: &'a [Vec<(u32, u64)>],
    profile_keys: &'a [Vec<String>],
    interests: usize,
    total: u64,
    shards: usize,
    groups: Vec<RwLock<Vec<PackedTcbf>>>,
    buckets: Vec<Vec<Mutex<Vec<MergeJob>>>>,
    barrier: Barrier,
}

/// One worker's deterministic sums; totals are their shard-order sum.
#[derive(Default)]
struct WorkerOutcome {
    merges: u64,
    decays: u64,
    queries: u64,
    hits: u64,
    merged_words: u64,
    /// Wall-clock nanoseconds this worker spent *working* inside each
    /// phase ([`PHASES`] order). Barrier waits are excluded, so the
    /// cell-level sum is pure work time, not `shards ×` idle time.
    phase_ns: [u64; 4],
    prof: Option<ProfReport>,
}

impl WorkerOutcome {
    /// Closes phase `i`'s span: accumulates the always-on wall total
    /// and, when profiled, records one epoch sample into the matching
    /// `scale_*_ns` histogram.
    fn end_phase(&mut self, i: usize, started: Instant, prof: bool) {
        let ns = started.elapsed().as_nanos() as u64;
        self.phase_ns[i] += ns;
        if prof {
            obs::observe_ns(PHASE_HISTS[i], ns);
        }
    }
}

/// The per-shard worker loop: all epochs, four barrier-separated
/// phases each. Worker `0` runs on the orchestrating thread.
fn worker(engine: &Engine, w: usize, prof: bool) -> WorkerOutcome {
    if prof {
        obs::start();
    }
    let s = engine.shards;
    let mut out = WorkerOutcome::default();
    let mut pending: Vec<Vec<MergeJob>> = (0..s).map(|_| Vec::new()).collect();

    let mut epoch_start = 0u64;
    while epoch_start < engine.total {
        let epoch_end = (epoch_start + EPOCH_EVENTS).min(engine.total);

        // Phase A — derive this worker's slice of the epoch and bucket
        // each merge by the owning broker shard. Only the endpoints
        // are needed to route, so the duration draw is skipped.
        let phase = Instant::now();
        let mut index = epoch_start + w as u64;
        while index < epoch_end {
            let (a, b) = engine.stream.endpoints_at(index);
            let broker = b as usize % BROKERS;
            pending[broker % s].push(MergeJob {
                slot: (broker / s) as u32,
                profile: (a as usize % PROFILES) as u32,
            });
            index += s as u64;
        }
        for (dest, jobs) in pending.iter_mut().enumerate() {
            engine.buckets[w][dest]
                .lock()
                .expect("bucket lock")
                .append(jobs);
        }
        out.end_phase(0, phase, prof);
        engine.barrier.wait();

        // Phase B — apply every job destined for this shard's relays.
        // Saturating adds commute, so arrival order cannot matter.
        let phase = Instant::now();
        {
            let mut relays = engine.groups[w].write().expect("relay lock");
            for producer in 0..s {
                let jobs =
                    std::mem::take(&mut *engine.buckets[producer][w].lock().expect("bucket lock"));
                for job in &jobs {
                    let entries = &engine.arena[job.profile as usize];
                    relays[job.slot as usize].a_merge_sparse(entries);
                    out.merged_words += entries.len() as u64;
                }
                out.merges += jobs.len() as u64;
            }
        }
        out.end_phase(1, phase, prof);
        engine.barrier.wait();

        // Phase C — sampled queries, read-only against the epoch's
        // fully merged, not-yet-decayed state; round-robin across
        // workers by query ordinal. Key choice is a stateless draw
        // from the event index, so nothing here depends on S.
        let phase = Instant::now();
        {
            let guards: Vec<_> = engine
                .groups
                .iter()
                .map(|g| g.read().expect("relay lock"))
                .collect();
            let mut q = epoch_start + (QUERY_EVERY - 1);
            while q < epoch_end {
                if (q / QUERY_EVERY) as usize % s == w {
                    let (a, b) = engine.stream.endpoints_at(q);
                    let broker = b as usize % BROKERS;
                    let profile = a as usize % PROFILES;
                    let draw = SplitMix64::mix(SplitMix64::mix(SCALE_SEED, QUERY_STREAM), q);
                    let key = &engine.profile_keys[profile][draw as usize % engine.interests];
                    let relay = &guards[broker % s][broker / s];
                    if relay.contains(key) {
                        out.hits += 1;
                    }
                    let other = a as usize % BROKERS;
                    if other != broker {
                        let against = &guards[other % s][other / s];
                        let pref = relay.preference(against, key).expect("same geometry");
                        if pref.is_positive() {
                            out.hits += 1;
                        }
                    }
                    out.queries += 1;
                }
                q += QUERY_EVERY;
            }
        }
        out.end_phase(2, phase, prof);
        engine.barrier.wait();

        // Phase D — decay own relays at full epoch boundaries only
        // (the tail of a schedule that is not an epoch multiple does
        // not decay, matching the serial cadence).
        let phase = Instant::now();
        if epoch_end - epoch_start == EPOCH_EVENTS {
            let mut relays = engine.groups[w].write().expect("relay lock");
            for relay in relays.iter_mut() {
                relay.decay(1);
            }
            out.decays += relays.len() as u64;
        }
        out.end_phase(3, phase, prof);
        engine.barrier.wait();

        epoch_start = epoch_end;
    }

    if prof {
        out.prof = Some(obs::finish());
    }
    out
}

fn run_cell(cell: &Cell, shards: usize, prof: bool) -> CellOutcome {
    let duration = SimDuration::from_hours(24);
    let total = cell.nodes * EVENTS_PER_NODE;
    let stream = ContactStream::new(cell.nodes, duration, total, SCALE_SEED);
    let arena = build_arena(cell.interests);
    let profile_keys: Vec<Vec<String>> = (0..PROFILES)
        .map(|p| (0..cell.interests).map(|j| profile_key(p, j)).collect())
        .collect();

    let word_bytes = PackedTcbf::new(FILTER_BITS, HASHES, INITIAL).word_bytes();
    let arena_entries: usize = arena.iter().map(Vec::len).sum();
    let resident_bytes =
        (BROKERS * word_bytes + arena_entries * std::mem::size_of::<(u32, u64)>()) as u64;

    let engine = Engine {
        stream: &stream,
        arena: &arena,
        profile_keys: &profile_keys,
        interests: cell.interests,
        total,
        shards,
        groups: (0..shards)
            .map(|w| {
                RwLock::new(
                    (0..BROKERS)
                        .filter(|b| b % shards == w)
                        .map(|_| PackedTcbf::new(FILTER_BITS, HASHES, INITIAL))
                        .collect(),
                )
            })
            .collect(),
        buckets: (0..shards)
            .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        barrier: Barrier::new(shards),
    };

    let start = Instant::now();
    // Worker 0 is the orchestrating thread; shards 1..S run on scoped
    // threads that live for the whole cell (persistent workers, no
    // per-epoch spawn cost).
    let outcomes: Vec<WorkerOutcome> = if shards == 1 {
        vec![worker(&engine, 0, prof)]
    } else {
        std::thread::scope(|scope| {
            let engine = &engine;
            let handles: Vec<_> = (1..shards)
                .map(|w| scope.spawn(move || worker(engine, w, prof)))
                .collect();
            let mut outcomes = vec![worker(engine, 0, prof)];
            for handle in handles {
                outcomes.push(handle.join().expect("scale worker panicked"));
            }
            outcomes
        })
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let merges: u64 = outcomes.iter().map(|o| o.merges).sum();
    let merged_words: u64 = outcomes.iter().map(|o| o.merged_words).sum();
    let mut phase_ns = [0u64; 4];
    for o in &outcomes {
        for (total, ns) in phase_ns.iter_mut().zip(o.phase_ns) {
            *total += ns;
        }
    }
    let combined = prof.then(|| {
        // Re-aggregate the per-shard profiles exactly as a sharded
        // simulation does: absorb into a fresh run-level profiler in
        // deterministic shard order.
        obs::start();
        for o in &outcomes {
            obs::absorb(o.prof.as_ref().expect("profiled worker returns a report"));
        }
        let combined = obs::finish();
        assert_eq!(
            combined.counter(Counter::TcbfAMerge),
            merges,
            "profiler merge counter must agree with the engine's own sums"
        );
        combined
    });

    CellOutcome {
        nodes: cell.nodes,
        interests: cell.interests,
        shards,
        events: total,
        merges,
        decays: outcomes.iter().map(|o| o.decays).sum(),
        queries: outcomes.iter().map(|o| o.queries).sum(),
        hits: outcomes.iter().map(|o| o.hits).sum(),
        merged_bytes: merged_words * 8,
        resident_bytes,
        wall_ms,
        peak_rss_kb: peak_rss_kb(),
        phase_ns,
        prof: combined,
    }
}

/// Peak resident set size of this process in KiB, from
/// `/proc/self/status` (`VmHWM`). Monotone over the process lifetime,
/// so a per-row reading is "peak so far". Zero where unsupported.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn baseline_path() -> PathBuf {
    match std::env::var("BSUB_PERF_BASELINE") {
        Ok(custom) => PathBuf::from(custom),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_perf.json"),
    }
}

fn parse_shards(args: &[String]) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(v) if v >= 1 => return v,
            _ => {
                eprintln!("--shards requires a positive integer");
                std::process::exit(2);
            }
        }
    }
    std::env::var("BSUB_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1)
}

fn perf_entry(experiment: &str, outcomes: &[&CellOutcome], total_ms: f64) -> PerfEntry {
    let cpu_ms: f64 = outcomes.iter().map(|o| o.wall_ms).sum();
    let shards = outcomes.iter().map(|o| o.shards).max().unwrap_or(1);
    PerfEntry {
        experiment: experiment.to_string(),
        workers: shards as u64,
        runs: outcomes.len() as u64,
        total_ms,
        cpu_ms,
        speedup: cpu_ms / total_ms.max(f64::MIN_POSITIVE),
        calib_ns: bsub_obs::calibrate_ns(),
        bytes: outcomes.iter().map(|o| o.merged_bytes).sum(),
        forwardings: outcomes.iter().map(|o| o.merges).sum(),
        delivered: outcomes.iter().map(|o| o.hits).sum(),
    }
}

/// One `scale-phase-*` perf entry: the sweep-wide work time spent
/// inside a single barrier phase, paired with that phase's own
/// deterministic work sums so the byte gate tracks what the time pays
/// for (derive routes events, merge folds words, query samples, decay
/// touches relays).
fn phase_entry(i: usize, outcomes: &[CellOutcome], total_ms: f64) -> PerfEntry {
    let cpu_ms: f64 = outcomes.iter().map(|o| o.phase_ns[i] as f64 / 1e6).sum();
    let shards = outcomes.iter().map(|o| o.shards).max().unwrap_or(1);
    let sum = |f: fn(&CellOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    let (bytes, forwardings, delivered) = match i {
        0 => (0, sum(|o| o.events), 0),
        1 => (sum(|o| o.merged_bytes), sum(|o| o.merges), 0),
        2 => (0, sum(|o| o.queries), sum(|o| o.hits)),
        _ => (0, sum(|o| o.decays), 0),
    };
    PerfEntry {
        experiment: format!("scale-phase-{}", PHASES[i]),
        workers: shards as u64,
        runs: outcomes.len() as u64,
        total_ms,
        cpu_ms,
        speedup: cpu_ms / total_ms.max(f64::MIN_POSITIVE),
        calib_ns: bsub_obs::calibrate_ns(),
        bytes,
        forwardings,
        delivered,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let prof = args.iter().any(|a| a == "--prof");
    let shards = parse_shards(&args);

    let (name, cells) = if smoke {
        ("scale-smoke", smoke_cells())
    } else {
        ("scale", full_cells())
    };

    let sweep_start = Instant::now();
    let mut outcomes: Vec<CellOutcome> = cells.iter().map(|c| run_cell(c, shards, prof)).collect();

    // The full sweep runs the 10M-node tentpole cell once per shard
    // count: same cell, same seed, so every deterministic column must
    // come out byte-identical across the sweep — the shard-invariance
    // contract, visible in the artifact itself.
    let mut sweep_entries: Vec<PerfEntry> = Vec::new();
    if !smoke {
        let cell = tentpole_cell();
        let mut sweep_shards: Vec<usize> = SHARD_SWEEP.to_vec();
        if !sweep_shards.contains(&shards) {
            sweep_shards.push(shards);
            sweep_shards.sort_unstable();
        }
        for s in sweep_shards {
            let cell_start = Instant::now();
            let outcome = run_cell(&cell, s, prof);
            let cell_ms = cell_start.elapsed().as_secs_f64() * 1e3;
            sweep_entries.push(perf_entry(&format!("scale-10m-s{s}"), &[&outcome], cell_ms));
            outcomes.push(outcome);
        }
    }
    let total_ms = sweep_start.elapsed().as_secs_f64() * 1e3;
    let phase_entries: Vec<PerfEntry> = (0..PHASES.len())
        .map(|i| phase_entry(i, &outcomes, total_ms))
        .collect();

    let headers = [
        "nodes",
        "interests",
        "shards",
        "events",
        "merges",
        "decays",
        "queries",
        "hits",
        "merged_bytes",
        "resident_bytes",
    ];
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.nodes.to_string(),
                o.interests.to_string(),
                o.shards.to_string(),
                o.events.to_string(),
                o.merges.to_string(),
                o.decays.to_string(),
                o.queries.to_string(),
                o.hits.to_string(),
                o.merged_bytes.to_string(),
                o.resident_bytes.to_string(),
            ]
        })
        .collect();
    write_csv(&name.replace('-', "_"), &headers, &rows);

    let table_rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.nodes.to_string(),
                o.interests.to_string(),
                o.shards.to_string(),
                format!("{:.1}", o.wall_ms),
                format!("{:.2}", o.events as f64 / o.wall_ms * 1e3 / 1e6),
                format!("{:.1}", o.resident_bytes as f64 / 1024.0 / 1024.0),
                format!("{:.1}", o.peak_rss_kb as f64 / 1024.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name} — packed-kernel throughput"),
            &[
                "nodes",
                "interests",
                "shards",
                "wall_ms",
                "Mevents/s",
                "MiB",
                "peak_rss_MiB"
            ],
            &table_rows,
        )
    );

    let phase_total_ms: f64 = phase_entries.iter().map(|e| e.cpu_ms).sum();
    let phase_rows: Vec<Vec<String>> = phase_entries
        .iter()
        .zip(PHASES)
        .map(|(e, phase)| {
            vec![
                phase.to_string(),
                format!("{:.1}", e.cpu_ms),
                format!(
                    "{:.1}",
                    e.cpu_ms / phase_total_ms.max(f64::MIN_POSITIVE) * 100.0
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{name} — per-phase work time (summed across shards)"),
            &["phase", "cpu_ms", "share_%"],
            &phase_rows,
        )
    );

    if prof {
        let mut metrics = MetricsReport::new();
        for o in &outcomes {
            if let Some(report) = &o.prof {
                metrics.add(&format!("scale-{}n-s{}", o.nodes, o.shards), report);
            }
        }
        print!("{}", metrics.render_table());
    }

    let entry = perf_entry(name, &outcomes.iter().collect::<Vec<_>>(), total_ms);
    let trajectory = results_dir().join("BENCH_perf.json");
    perf::append(&trajectory, &entry);
    for sweep_entry in &sweep_entries {
        perf::append(&trajectory, sweep_entry);
    }
    for phase in &phase_entries {
        perf::append(&trajectory, phase);
    }
    println!("[appended {}]", trajectory.display());

    if check {
        let baseline = perf::load(&baseline_path());
        let mut failed = false;
        for e in std::iter::once(&entry)
            .chain(&sweep_entries)
            .chain(&phase_entries)
        {
            match perf::check(&baseline, e, Tolerance::from_env()) {
                Ok(note) => println!("[perf check] {note}"),
                Err(err) => {
                    eprintln!("[perf check FAILED] {err}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
