//! Regenerates the paper's table1 artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::table1();
}
