//! Regenerates the paper's table2 artifact. See DESIGN.md §3.
fn main() {
    bsub_bench::experiments::table2();
}
