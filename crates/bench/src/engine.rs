//! The declarative experiment engine: a sweep is *described* as data
//! (a [`SweepSpec`] full of independent [`RunSpec`]s) and *executed*
//! by an [`Executor`] over a pool of scoped threads.
//!
//! # Determinism contract
//!
//! A run is fully described by its inputs (a [`Simulation`], which
//! shares its trace/subscriptions/schedule behind `Arc`s), its
//! protocol factory, and its seed. The executor derives each run's
//! seed from the sweep's master seed and the run's *index* —
//! `SplitMix64::mix(master_seed, index)` — never from scheduling
//! order, thread identity, or wall-clock time. Results are written
//! into an index-addressed slot table, so [`SweepOutcome::records`]
//! is always in input order. Consequently the records (and any CSV
//! rendered from them) are **bit-identical regardless of the worker
//! count**: `BSUB_WORKERS=1` and `BSUB_WORKERS=32` produce the same
//! bytes, only faster. Wall-clock timings are the one intentionally
//! non-deterministic output and are kept out of the figure CSVs (see
//! [`crate::output::record_perf`]).

use bsub_bloom::rng::SplitMix64;
use bsub_obs::{self as obs, MetricsReport, ProfReport};
use bsub_sim::{
    EpochRow, EventLog, Protocol, ProtocolFactory, RunRecorder, SimReport, Simulation,
    TimeSeriesRecorder,
};
use bsub_traces::SimDuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What a run should record. The default records nothing, which keeps
/// the run on the [`bsub_sim::NullRecorder`] fast path — the figure
/// sweeps all use it, so observability never perturbs their CSVs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordSpec {
    /// Capture the full typed event log (rendered to JSONL by
    /// [`crate::output::write_events`]).
    pub events: bool,
    /// Aggregate a per-epoch time series with this bucket width
    /// (rendered to CSV by [`crate::output::write_timeseries`]).
    pub series: Option<SimDuration>,
    /// Profile the run with the `bsub-obs` metrics layer: hot-path
    /// counters, buffer gauges, and timing/size histograms, attached
    /// to the record as a [`ProfReport`]. Profiling is orthogonal to
    /// the event/series recorders and never perturbs the simulation —
    /// the determinism tests enforce bit-identical figure artifacts
    /// with it on or off.
    pub prof: bool,
}

impl RecordSpec {
    /// Whether the event/series recorder path is needed (profiling
    /// alone stays on the [`bsub_sim::NullRecorder`] fast path).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.events || self.series.is_some()
    }
}

/// The observability output of one recorded run.
#[derive(Debug, Default)]
pub struct RunRecording {
    /// The typed event log, when [`RecordSpec::events`] was set.
    pub events: Option<EventLog>,
    /// Sealed per-epoch rows, when [`RecordSpec::series`] was set.
    pub series: Vec<EpochRow>,
}

/// One independent simulation run: inputs + factory. The seed is
/// assigned by the executor from the run's position in the sweep.
pub struct RunSpec {
    /// The sweep-axis value this run sits at (e.g. `"500"` for a TTL
    /// of 500 minutes) — becomes the row key when rendering.
    pub point: String,
    /// Which configuration within the point (e.g. `"push"`).
    pub label: String,
    /// The fully prepared world (trace, subscriptions, schedule,
    /// config), cheap to clone and `Send` thanks to `Arc` sharing.
    pub sim: Simulation,
    /// Builds the protocol instance for this run from the derived
    /// seed.
    pub factory: Box<dyn ProtocolFactory>,
    /// What (if anything) to record while the run executes.
    pub record: RecordSpec,
}

impl std::fmt::Debug for RunSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSpec")
            .field("point", &self.point)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// A whole experiment, declared up front: every run it will perform
/// and the master seed the per-run seeds derive from.
#[derive(Debug)]
pub struct SweepSpec {
    /// Experiment name (used for logging and perf artifacts).
    pub name: String,
    /// Master seed; run `i` executes with
    /// `SplitMix64::mix(master_seed, i)`.
    pub master_seed: u64,
    /// Intra-run shard count applied to every run (values ≤ 1 mean
    /// serial). Orthogonal to the worker pool: workers parallelize
    /// *across* runs, shards *within* one. The sharded core produces
    /// reports identical to the serial path, so — like the worker
    /// count — this knob never changes the figure artifacts.
    pub shards: usize,
    /// The runs, in output order.
    pub runs: Vec<RunSpec>,
}

/// The result of one run, including the protocol instance for
/// post-run inspection (downcast via `std::any::Any`).
pub struct RunRecord {
    /// Copied from [`RunSpec::point`].
    pub point: String,
    /// Copied from [`RunSpec::label`].
    pub label: String,
    /// The seed this run executed with.
    pub seed: u64,
    /// The simulator's metrics.
    pub report: SimReport,
    /// The protocol in its end-of-run state.
    pub protocol: Box<dyn Protocol>,
    /// Captured observability output, when the spec asked for any.
    pub recording: Option<RunRecording>,
    /// The run's profiling report, when [`RecordSpec::prof`] was set.
    pub prof: Option<ProfReport>,
    /// Wall-clock duration of this run (excluded from figure CSVs).
    pub wall: Duration,
}

impl std::fmt::Debug for RunRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunRecord")
            .field("point", &self.point)
            .field("label", &self.label)
            .field("seed", &self.seed)
            .field("wall", &self.wall)
            .finish_non_exhaustive()
    }
}

/// Everything a sweep produced: records in input order plus timing.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Copied from [`SweepSpec::name`].
    pub name: String,
    /// How many workers actually executed the sweep.
    pub workers: usize,
    /// One record per [`RunSpec`], in the same order.
    pub records: Vec<RunRecord>,
    /// Wall-clock duration of the whole sweep.
    pub total_wall: Duration,
}

impl SweepOutcome {
    /// Sum of the per-run wall-clock durations — the sequential cost
    /// the worker pool amortized. `total_wall / cpu_wall` below 1.0 is
    /// the parallel speedup.
    #[must_use]
    pub fn cpu_wall(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// The measured speedup over a single worker
    /// (`cpu_wall / total_wall`).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let total = self.total_wall.as_secs_f64();
        if total == 0.0 {
            1.0
        } else {
            self.cpu_wall().as_secs_f64() / total
        }
    }

    /// Aggregates the profiled runs into a label-grouped
    /// [`MetricsReport`] (one group per protocol / experiment leg).
    /// Per-run reports merge commutatively, so the deterministic
    /// portion of the result is worker-count invariant.
    #[must_use]
    pub fn metrics_report(&self) -> MetricsReport {
        let mut report = MetricsReport::new();
        for record in &self.records {
            if let Some(prof) = &record.prof {
                report.add(&record.label, prof);
            }
        }
        report
    }
}

/// Fans a [`SweepSpec`]'s runs over a fixed-size scoped-thread pool.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor with exactly `workers` threads (minimum 1).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// Worker count from the `BSUB_WORKERS` environment variable,
    /// falling back to the machine's available parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        let workers = std::env::var("BSUB_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self::with_workers(workers)
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes every run in the sweep and returns the records in
    /// input order. See the module docs for the determinism contract.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec) -> SweepOutcome {
        let total = spec.runs.len();
        let workers = self.workers.min(total).max(1);
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunRecord>>> = (0..total).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let run = &spec.runs[index];
                    let seed = SplitMix64::mix(spec.master_seed, index as u64);
                    // Cheap: a Simulation clone only bumps `Arc`s.
                    let sim = run.sim.clone().with_shards(spec.shards.max(1));
                    let run_started = Instant::now();
                    // A run executes entirely on this worker thread, so
                    // the thread-local profiler scopes exactly one run.
                    if run.record.prof {
                        obs::start();
                    }
                    let (report, protocol, recording) = if run.record.is_enabled() {
                        let mut recorder = RunRecorder {
                            events: run.record.events.then(EventLog::new),
                            series: run.record.series.map(TimeSeriesRecorder::new),
                        };
                        let (report, protocol) =
                            sim.run_factory_recorded(run.factory.as_ref(), seed, &mut recorder);
                        let end = sim.trace().duration();
                        let recording = RunRecording {
                            events: recorder.events,
                            series: recorder
                                .series
                                .map(|s| s.into_rows(end))
                                .unwrap_or_default(),
                        };
                        (report, protocol, Some(recording))
                    } else {
                        let (report, protocol) = sim.run_factory(run.factory.as_ref(), seed);
                        (report, protocol, None)
                    };
                    let prof = run.record.prof.then(obs::finish);
                    let wall = run_started.elapsed();
                    eprintln!(
                        "[{}] run {}/{} {}@{} done in {:.3}s",
                        spec.name,
                        index + 1,
                        total,
                        run.label,
                        run.point,
                        wall.as_secs_f64(),
                    );
                    *slots[index].lock().expect("no panics hold the slot") = Some(RunRecord {
                        point: run.point.clone(),
                        label: run.label.clone(),
                        seed,
                        report,
                        protocol,
                        recording,
                        prof,
                        wall,
                    });
                });
            }
        });

        let records: Vec<RunRecord> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("no panics hold the slot")
                    .expect("every index was claimed and completed")
            })
            .collect();
        let outcome = SweepOutcome {
            name: spec.name.clone(),
            workers,
            records,
            total_wall: started.elapsed(),
        };
        eprintln!(
            "[{}] sweep complete: {} runs on {} workers in {:.3}s \
             (cpu {:.3}s, speedup {:.2}x)",
            outcome.name,
            total,
            outcome.workers,
            outcome.total_wall.as_secs_f64(),
            outcome.cpu_wall().as_secs_f64(),
            outcome.speedup(),
        );
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsub_sim::{NullProtocol, SimConfig, SubscriptionTable};
    use bsub_traces::synthetic::SyntheticTrace;
    use bsub_traces::SimDuration;

    fn tiny_spec(runs: usize) -> SweepSpec {
        let trace = SyntheticTrace::new("eng", 8, SimDuration::from_hours(2), 200)
            .seed(9)
            .build();
        let subs = SubscriptionTable::new(8);
        let sim = Simulation::new(trace, subs, Vec::new(), SimConfig::default());
        SweepSpec {
            name: "tiny".into(),
            master_seed: 42,
            shards: 1,
            runs: (0..runs)
                .map(|i| RunSpec {
                    point: i.to_string(),
                    label: "null".into(),
                    sim: sim.clone(),
                    factory: Box::new(|_seed: u64| Box::new(NullProtocol) as Box<dyn Protocol>),
                    record: RecordSpec::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn records_stay_in_input_order() {
        let spec = tiny_spec(7);
        let outcome = Executor::with_workers(4).run(&spec);
        let points: Vec<&str> = outcome.records.iter().map(|r| r.point.as_str()).collect();
        assert_eq!(points, ["0", "1", "2", "3", "4", "5", "6"]);
    }

    #[test]
    fn seeds_derive_from_index_not_scheduling() {
        let spec = tiny_spec(5);
        let outcome = Executor::with_workers(3).run(&spec);
        for (i, record) in outcome.records.iter().enumerate() {
            assert_eq!(record.seed, SplitMix64::mix(42, i as u64));
        }
    }

    #[test]
    fn worker_count_does_not_change_reports() {
        let sequential = Executor::with_workers(1).run(&tiny_spec(6));
        let parallel = Executor::with_workers(8).run(&tiny_spec(6));
        let lhs: Vec<&SimReport> = sequential.records.iter().map(|r| &r.report).collect();
        let rhs: Vec<&SimReport> = parallel.records.iter().map(|r| &r.report).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn profiled_runs_attach_reports() {
        let mut spec = tiny_spec(4);
        for run in &mut spec.runs[..2] {
            run.record.prof = true;
        }
        let outcome = Executor::with_workers(2).run(&spec);
        assert!(outcome.records[0].prof.is_some());
        assert!(outcome.records[1].prof.is_some());
        assert!(outcome.records[2].prof.is_none());
        // Even a NullProtocol run drives the contact loop, which the
        // runner instruments.
        let metrics = outcome.metrics_report();
        let group = metrics.group("null").expect("profiled label present");
        assert!(group.counter(bsub_obs::Counter::Contacts) > 0);
    }

    /// The deterministic portion of the aggregated metrics is part of
    /// the worker-count-invariance contract.
    #[test]
    fn metrics_report_is_worker_count_invariant() {
        let profiled = || {
            let mut spec = tiny_spec(6);
            for run in &mut spec.runs {
                run.record.prof = true;
            }
            spec
        };
        let baseline = Executor::with_workers(1).run(&profiled()).metrics_report();
        assert!(!baseline.is_empty());
        for workers in [2usize, 8] {
            let metrics = Executor::with_workers(workers)
                .run(&profiled())
                .metrics_report();
            assert!(
                metrics.eq_deterministic(&baseline),
                "metrics must be deterministic on {workers} workers"
            );
        }
    }

    #[test]
    fn executor_clamps_to_at_least_one_worker() {
        assert_eq!(Executor::with_workers(0).workers(), 1);
        let outcome = Executor::with_workers(16).run(&tiny_spec(2));
        assert_eq!(outcome.workers, 2, "never more workers than runs");
    }
}
