//! One function per table/figure of the paper. See DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for recorded results.

use crate::engine::{Executor, RecordSpec, RunSpec, SweepSpec};
use crate::output::{
    f1, f3, f4, record_perf, render_table, write_csv, write_events, write_timeseries,
};
use crate::{Experiment, ProtocolKind, MASTER_SEED};
use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{math, AllocationPlan, Tcbf};
use bsub_core::{BrokerPolicy, BsubConfig, BsubProtocol, DfMode, ForwardingPolicy, MergeRule};
use bsub_sim::fault::PPM;
use bsub_sim::FaultSpec;
use bsub_traces::stats::TraceStats;
use bsub_traces::SimDuration;
use bsub_workload::keys::{average_key_len, trend_keys};

/// The TTL grid of Figs. 7–8 (minutes, log-scale axis in the paper).
pub const TTL_GRID_MINS: [u64; 7] = [10, 20, 50, 100, 200, 500, 1000];

/// The DF grid of Fig. 9 (counter units per minute, 0 ⇒ no decay).
pub const DF_GRID: [f64; 8] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];

/// Table I — parameters of the two data sets.
pub fn table1() {
    let rows: Vec<Vec<String>> = [
        (
            "Haggle(Infocom06)-like",
            bsub_traces::synthetic::haggle_like(MASTER_SEED),
            "79 / 67,360 / 3d",
        ),
        (
            "MIT-Reality-like (full)",
            bsub_traces::synthetic::reality_like_full(MASTER_SEED),
            "97 / 54,667 / 246d",
        ),
        (
            "MIT-Reality-like (3-day sim slice)",
            bsub_traces::synthetic::reality_like(MASTER_SEED),
            "n/a (sim input)",
        ),
    ]
    .into_iter()
    .map(|(name, trace, paper)| {
        let s = TraceStats::compute(&trace);
        vec![
            name.to_string(),
            s.nodes.to_string(),
            s.contacts.to_string(),
            f1(s.duration.as_hours() / 24.0),
            f1(s.contacts_per_node_day),
            f1(s.mean_contact_secs),
            f1(s.mean_degree),
            paper.to_string(),
        ]
    })
    .collect();
    let headers = [
        "trace",
        "nodes",
        "contacts",
        "days",
        "contacts/node/day",
        "mean contact (s)",
        "mean degree",
        "paper (nodes/contacts/days)",
    ];
    print!(
        "{}",
        render_table("Table I — trace parameters", &headers, &rows)
    );
    write_csv("table1", &headers, &rows);
}

/// Table II — distribution of the top-4 keys, plus the workload's
/// empirical interest shares.
pub fn table2() {
    let keys = trend_keys();
    let e = Experiment::haggle(MASTER_SEED);
    let n = f64::from(e.trace.node_count());
    let rows: Vec<Vec<String>> = keys
        .iter()
        .take(4)
        .map(|k| {
            let subscribed = e.subscriptions.subscribers_of(k.name).count() as f64;
            vec![k.name.to_string(), f4(k.weight), f4(subscribed / n)]
        })
        .collect();
    let headers = ["key", "paper weight", "assigned share (79 nodes)"];
    print!(
        "{}",
        render_table("Table II — top-4 key weights", &headers, &rows)
    );
    println!(
        "38 keys total, weight sum {:.4}, average key length {:.1} bytes (paper: 11.5)",
        keys.iter().map(|k| k.weight).sum::<f64>(),
        average_key_len(keys),
    );
    write_csv("table2", &headers, &rows);
}

/// Declares the shared TTL sweep of Figs. 7 and 8 — every
/// (TTL, protocol) pair as an independent run.
#[must_use]
pub fn ttl_sweep_spec(figure: &str, experiment: &Experiment) -> SweepSpec {
    let mut runs = Vec::new();
    for &mins in &TTL_GRID_MINS {
        let ttl = SimDuration::from_mins(mins);
        let df = experiment.df_for_ttl(ttl);
        let protocols = [
            ("push", ProtocolKind::Push),
            (
                "bsub",
                ProtocolKind::Bsub {
                    df: DfMode::Fixed(df),
                },
            ),
            ("pull", ProtocolKind::Pull),
        ];
        for (label, kind) in protocols {
            runs.push(RunSpec {
                point: mins.to_string(),
                label: label.to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: figure.to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs,
    }
}

/// Shared TTL sweep for Figs. 7 and 8: delivery ratio, delay, and
/// forwardings per delivered message for PUSH, B-SUB, PULL.
fn ttl_sweep(figure: &str, experiment: &Experiment) {
    let headers = [
        "ttl_mins",
        "push_delivery",
        "bsub_delivery",
        "pull_delivery",
        "push_delay_min",
        "bsub_delay_min",
        "pull_delay_min",
        "push_fwd",
        "bsub_fwd",
        "pull_fwd",
    ];
    let spec = ttl_sweep_spec(figure, experiment);
    let outcome = Executor::from_env().run(&spec);
    let rows: Vec<Vec<String>> = outcome
        .records
        .chunks(3)
        .map(|point| {
            let [push, bsub, pull] = point else {
                unreachable!("three protocols per TTL point")
            };
            vec![
                push.point.clone(),
                f3(push.report.delivery_ratio()),
                f3(bsub.report.delivery_ratio()),
                f3(pull.report.delivery_ratio()),
                f1(push.report.mean_delay_mins()),
                f1(bsub.report.mean_delay_mins()),
                f1(pull.report.mean_delay_mins()),
                f1(push.report.forwardings_per_delivered()),
                f1(bsub.report.forwardings_per_delivered()),
                f1(pull.report.forwardings_per_delivered()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("{figure} — delivery ratio / delay / forwardings vs TTL"),
            &headers,
            &rows
        )
    );
    write_csv(figure, &headers, &rows);
    record_perf(&outcome);
}

/// Fig. 7 — the three TTL-sweep panels on the Haggle-like trace.
pub fn fig7() {
    ttl_sweep("fig7", &Experiment::haggle(MASTER_SEED));
}

/// Fig. 8 — the three TTL-sweep panels on the Reality-like trace.
pub fn fig8() {
    ttl_sweep("fig8", &Experiment::reality(MASTER_SEED));
}

/// Declares the Fig. 9 DF sweep — every (DF, trace) pair as an
/// independent run at TTL = 20 h.
#[must_use]
pub fn df_sweep_spec(haggle: &Experiment, reality: &Experiment) -> SweepSpec {
    let ttl = SimDuration::from_hours(20);
    let mut runs = Vec::new();
    for &df in &DF_GRID {
        let mode = if df == 0.0 {
            DfMode::Disabled
        } else {
            DfMode::Fixed(df)
        };
        for (label, env) in [("haggle", haggle), ("reality", reality)] {
            runs.push(RunSpec {
                point: format!("{df:.2}"),
                label: label.to_string(),
                sim: env.sim(ttl),
                factory: env.factory(ProtocolKind::Bsub { df: mode }, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: "fig9".to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs,
    }
}

/// Fig. 9 — the four metrics vs the decaying factor, both traces,
/// TTL = 20 h.
pub fn fig9() {
    let headers = [
        "df_per_min",
        "haggle_delivery",
        "reality_delivery",
        "haggle_delay_min",
        "reality_delay_min",
        "haggle_fwd",
        "reality_fwd",
        "haggle_inj_fpr",
        "reality_inj_fpr",
    ];
    let haggle = Experiment::haggle(MASTER_SEED);
    let reality = Experiment::reality(MASTER_SEED);
    let spec = df_sweep_spec(&haggle, &reality);
    let outcome = Executor::from_env().run(&spec);
    let rows: Vec<Vec<String>> = outcome
        .records
        .chunks(2)
        .map(|point| {
            let [h, r] = point else {
                unreachable!("two traces per DF point")
            };
            vec![
                h.point.clone(),
                f3(h.report.delivery_ratio()),
                f3(r.report.delivery_ratio()),
                f1(h.report.mean_delay_mins()),
                f1(r.report.mean_delay_mins()),
                f1(h.report.forwardings_per_delivered()),
                f1(r.report.forwardings_per_delivered()),
                f4(h.report.injection_fpr()),
                f4(r.report.injection_fpr()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "fig9 — four metrics vs decaying factor (TTL = 20 h)",
            &headers,
            &rows
        )
    );
    write_csv("fig9", &headers, &rows);
    record_perf(&outcome);
}

/// The shared smoke environment: a fig7-shaped small world (16
/// nodes, 6 simulated hours, TTL 120 min) built from fixed seeds.
/// Both the `perf` smoke sweep and the `net-cluster` loopback harness
/// run exactly this workload, so the networked runtime is diffed
/// against the environment the perf gate already tracks.
#[must_use]
pub fn smoke_environment() -> (Experiment, SimDuration) {
    let trace =
        bsub_traces::synthetic::SyntheticTrace::new("smoke", 16, SimDuration::from_hours(6), 900)
            .seed(7)
            .build();
    (Experiment::over(trace, 7), SimDuration::from_mins(120))
}

/// The smoke protocol roster in report order: PUSH, B-SUB (fixed DF
/// from Eq. 5 for this TTL), PULL.
#[must_use]
pub fn smoke_protocols(
    experiment: &Experiment,
    ttl: SimDuration,
) -> Vec<(&'static str, ProtocolKind)> {
    let df = experiment.df_for_ttl(ttl);
    vec![
        ("push", ProtocolKind::Push),
        (
            "bsub",
            ProtocolKind::Bsub {
                df: DfMode::Fixed(df),
            },
        ),
        ("pull", ProtocolKind::Pull),
    ]
}

/// Declares the perf smoke sweep: one fig7-shaped point (PUSH, B-SUB,
/// PULL at a single TTL) on a small synthetic trace — a couple of
/// seconds of work that still drives every instrumented hot path
/// (TCBF merges, wire codec, election, matching, the contact loop).
/// The `perf` binary runs it with profiling enabled and CI gates on
/// its trajectory, so the name is part of the committed
/// `BENCH_perf.json` baseline.
#[must_use]
pub fn perf_smoke_spec() -> SweepSpec {
    let (experiment, ttl) = smoke_environment();
    let protocols = smoke_protocols(&experiment, ttl);
    SweepSpec {
        name: "perf_smoke".to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs: protocols
            .into_iter()
            .map(|(label, kind)| RunSpec {
                point: "120".to_string(),
                label: label.to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            })
            .collect(),
    }
}

/// Declares the dynamics sweep: two recorded B-SUB runs over the same
/// environment and TTL.
///
/// - `fig7` — the paper configuration (M-merge), i.e. the B-SUB run of
///   the Fig. 7 scenario, now observed over time;
/// - `fig6_amerge` — the same run with Additive broker↔broker merges,
///   the misconfiguration whose unbounded counter growth Fig. 6 warns
///   about.
///
/// Both runs record a time series (bucket width `bucket`) and the full
/// event log; everything recorded derives from the deterministic event
/// stream, so the artifacts are byte-identical at any worker count.
#[must_use]
pub fn dynamics_spec(experiment: &Experiment, ttl: SimDuration, bucket: SimDuration) -> SweepSpec {
    let df = experiment.df_for_ttl(ttl);
    let record = RecordSpec {
        events: true,
        series: Some(bucket),
        prof: false,
    };
    let amerge = BsubConfig::builder()
        .df(DfMode::Fixed(df))
        .delay_limit(ttl)
        .merge_rule(MergeRule::Additive)
        .build();
    SweepSpec {
        name: "dynamics".to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs: vec![
            RunSpec {
                point: "fig7".to_string(),
                label: "bsub".to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(
                    ProtocolKind::Bsub {
                        df: DfMode::Fixed(df),
                    },
                    ttl,
                ),
                record,
            },
            RunSpec {
                point: "fig6_amerge".to_string(),
                label: "bsub".to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.bsub_factory(amerge),
                record,
            },
        ],
    }
}

/// Runs [`dynamics_spec`] and writes `timeseries_<point>.csv` and
/// `events_<point>.jsonl` per run, plus a printed summary comparing
/// the healthy M-merge counters against the A-merge pathology.
pub fn dynamics_with(experiment: &Experiment, ttl: SimDuration, bucket: SimDuration) {
    let spec = dynamics_spec(experiment, ttl, bucket);
    let outcome = Executor::from_env().run(&spec);
    let mut rows = Vec::new();
    for record in &outcome.records {
        let recording = record
            .recording
            .as_ref()
            .expect("dynamics runs always record");
        write_timeseries(&record.point, &recording.series);
        if let Some(log) = &recording.events {
            write_events(&record.point, log);
        }
        let last = recording.series.last();
        let peak_counter = recording
            .series
            .iter()
            .map(|r| r.max_counter)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            record.point.clone(),
            recording.series.len().to_string(),
            last.map_or_else(|| "0".into(), |r| r.brokers.to_string()),
            peak_counter.to_string(),
            last.map_or_else(|| "0".into(), |r| format!("{:.6}", r.relay_fpr)),
            f3(record.report.delivery_ratio()),
        ]);
    }
    let headers = [
        "run",
        "epochs",
        "final_brokers",
        "peak_max_counter",
        "final_relay_fpr",
        "delivery",
    ];
    print!(
        "{}",
        render_table(
            "dynamics — broker population & filter state over time",
            &headers,
            &rows
        )
    );
    record_perf(&outcome);
}

/// The dynamics view of the Fig. 7 scenario: Haggle-like trace,
/// TTL = 500 min, 30-minute epochs.
pub fn dynamics() {
    dynamics_with(
        &Experiment::haggle(MASTER_SEED),
        SimDuration::from_mins(500),
        SimDuration::from_mins(30),
    );
}

/// Ablation study of B-SUB's design choices (not a paper figure, but
/// each row corresponds to an argument the paper makes in prose):
///
/// - **A-merge between brokers** — Fig. 6's bogus-counter loop;
/// - **AnyMatch hand-off** — dropping the preferential query;
/// - **static brokers** — dropping the social election (Section V-B's
///   claim that socially-active brokers forward better).
pub fn ablation() {
    let ttl = SimDuration::from_mins(500);
    let experiment = Experiment::haggle(MASTER_SEED);
    let df = experiment.df_for_ttl(ttl);

    let variants: Vec<(&str, BsubConfig)> = vec![
        (
            "paper (M-merge, preferential, elected)",
            BsubConfig::builder().df(DfMode::Fixed(df)).build(),
        ),
        (
            "A-merge between brokers (Fig. 6 pathology)",
            BsubConfig::builder()
                .df(DfMode::Fixed(df))
                .merge_rule(MergeRule::Additive)
                .build(),
        ),
        (
            "AnyMatch hand-off (no preferential query)",
            BsubConfig::builder()
                .df(DfMode::Fixed(df))
                .forwarding(ForwardingPolicy::AnyMatch)
                .build(),
        ),
        (
            "static brokers, 15% of nodes",
            BsubConfig::builder()
                .df(DfMode::Fixed(df))
                .broker_policy(BrokerPolicy::Static(0.15))
                .build(),
        ),
        (
            "static brokers, 30% of nodes",
            BsubConfig::builder()
                .df(DfMode::Fixed(df))
                .broker_policy(BrokerPolicy::Static(0.30))
                .build(),
        ),
    ];

    let spec = SweepSpec {
        name: "ablation".to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs: variants
            .iter()
            .map(|(name, config)| RunSpec {
                point: (*name).to_string(),
                label: "bsub".to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.bsub_factory(config.clone()),
                record: RecordSpec::default(),
            })
            .collect(),
    };
    let outcome = Executor::from_env().run(&spec);
    let rows: Vec<Vec<String>> = outcome
        .records
        .iter()
        .map(|record| {
            // The engine hands the protocol back in its end-of-run
            // state; recover the concrete type for B-SUB's own
            // diagnostics.
            let bsub = (record.protocol.as_ref() as &dyn std::any::Any)
                .downcast_ref::<BsubProtocol>()
                .expect("ablation runs BsubProtocol");
            let r = &record.report;
            vec![
                record.point.clone(),
                f3(r.delivery_ratio()),
                f1(r.mean_delay_mins()),
                f1(r.forwardings_per_delivered()),
                f4(r.injection_fpr()),
                f3(bsub.broker_fraction()),
                bsub.max_relay_counter().to_string(),
            ]
        })
        .collect();
    let headers = [
        "variant",
        "delivery",
        "delay_min",
        "fwd/dlv",
        "inj_fpr",
        "broker_frac",
        "max_counter",
    ];
    print!(
        "{}",
        render_table(
            "ablation — B-SUB design choices (Haggle-like, TTL = 500 min)",
            &headers,
            &rows
        )
    );
    write_csv("ablation", &headers, &rows);
    record_perf(&outcome);
}

/// The fault-intensity grid of the degradation sweep, in parts per
/// million (0.0 … 0.6 as a probability).
pub const DEGRADATION_GRID_PPM: [u32; 5] = [0, 100_000, 200_000, 400_000, 600_000];

/// The [`FaultSpec`] exercised at one degradation-grid intensity `i`:
/// contact loss, contact truncation, and control-plane corruption each
/// fire with probability `i`, and node churn downs each node per
/// six-hour cell with probability `i/4` (churn is the most destructive
/// fault — a full-rate setting would drown the other three).
///
/// Intensity 0 is exactly [`FaultSpec::none`], so the first grid row
/// reproduces the committed fault-free figures.
#[must_use]
pub fn degradation_faults(intensity_ppm: u32) -> FaultSpec {
    if intensity_ppm == 0 {
        return FaultSpec::none();
    }
    FaultSpec::none()
        .with_seed(MASTER_SEED)
        .with_contact_loss(intensity_ppm)
        .with_truncation(intensity_ppm)
        .with_corruption(intensity_ppm)
        .with_churn(intensity_ppm / 4, SimDuration::from_hours(6))
}

/// Declares the degradation sweep: every (fault intensity, protocol)
/// pair as an independent run at a fixed TTL. The fault draws are keyed
/// only on the [`FaultSpec`] seed and the contact index, so the same
/// spec injects the identical fault pattern into PUSH, B-SUB, and PULL
/// — the protocols are compared under the *same* outages.
#[must_use]
pub fn degradation_spec(experiment: &Experiment, ttl: SimDuration) -> SweepSpec {
    let df = experiment.df_for_ttl(ttl);
    let mut runs = Vec::new();
    for &ppm in &DEGRADATION_GRID_PPM {
        let faults = degradation_faults(ppm);
        let protocols = [
            ("push", ProtocolKind::Push),
            (
                "bsub",
                ProtocolKind::Bsub {
                    df: DfMode::Fixed(df),
                },
            ),
            ("pull", ProtocolKind::Pull),
        ];
        for (label, kind) in protocols {
            runs.push(RunSpec {
                point: format!("{:.2}", f64::from(ppm) / f64::from(PPM)),
                label: label.to_string(),
                sim: experiment.sim(ttl).with_faults(faults.clone()),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: "degradation".to_string(),
        master_seed: MASTER_SEED,
        shards: 1,
        runs,
    }
}

/// Runs [`degradation_spec`] and writes `degradation.csv`: delivery
/// ratio, delay, and forwardings per delivered message vs fault
/// intensity for the three protocols.
///
/// # Panics
///
/// Panics if B-SUB's delivery ratio ever *improves* as the fault
/// intensity rises — the monotone-degradation sanity check this sweep
/// exists to enforce (the nesting of the fault draws makes every
/// higher-intensity run a superset of the faults below it).
pub fn degradation_with(experiment: &Experiment, ttl: SimDuration) {
    let headers = [
        "fault_intensity",
        "push_delivery",
        "bsub_delivery",
        "pull_delivery",
        "push_delay_min",
        "bsub_delay_min",
        "pull_delay_min",
        "push_fwd",
        "bsub_fwd",
        "pull_fwd",
    ];
    let spec = degradation_spec(experiment, ttl);
    let outcome = Executor::from_env().run(&spec);
    let mut bsub_delivery = Vec::new();
    let rows: Vec<Vec<String>> = outcome
        .records
        .chunks(3)
        .map(|point| {
            let [push, bsub, pull] = point else {
                unreachable!("three protocols per intensity")
            };
            bsub_delivery.push(bsub.report.delivery_ratio());
            vec![
                push.point.clone(),
                f3(push.report.delivery_ratio()),
                f3(bsub.report.delivery_ratio()),
                f3(pull.report.delivery_ratio()),
                f1(push.report.mean_delay_mins()),
                f1(bsub.report.mean_delay_mins()),
                f1(pull.report.mean_delay_mins()),
                f1(push.report.forwardings_per_delivered()),
                f1(bsub.report.forwardings_per_delivered()),
                f1(pull.report.forwardings_per_delivered()),
            ]
        })
        .collect();
    for pair in bsub_delivery.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "B-SUB delivery must not improve as faults intensify: {bsub_delivery:?}"
        );
    }
    print!(
        "{}",
        render_table(
            "degradation — delivery / delay / forwardings vs fault intensity",
            &headers,
            &rows
        )
    );
    write_csv("degradation", &headers, &rows);
    record_perf(&outcome);
}

/// The degradation view of the Fig. 7 scenario: Haggle-like trace,
/// TTL = 500 min, fault intensities 0.0 … 0.6.
pub fn degradation() {
    degradation_with(
        &Experiment::haggle(MASTER_SEED),
        SimDuration::from_mins(500),
    );
}

/// Section VI-C / VII-A analysis artifacts: worst-case FPR, memory
/// comparison, and the Eq. 9–10 optimal allocation.
pub fn analysis() {
    // Worst-case FPR claim: 38 keys, m=256, k=4 ⇒ ~0.04.
    let keys = trend_keys();
    let mut rows = Vec::new();
    for n in [10usize, 20, 38, 60, 100] {
        rows.push(vec![
            n.to_string(),
            f4(math::false_positive_rate(256, 4, n as f64)),
            f3(math::fill_ratio(256, 4, n as f64)),
        ]);
    }
    let headers = ["keys", "fpr (Eq.1)", "fill ratio (Eq.3)"];
    print!(
        "{}",
        render_table(
            "analysis — Eq. 1 FPR (paper: 0.04 worst case at 38 keys)",
            &headers,
            &rows
        )
    );
    write_csv("analysis_fpr", &headers, &rows);

    // Memory: TCBF wire forms vs raw strings (paper: "the TCBF uses
    // half of the space used by the raw strings").
    let mut rows = Vec::new();
    for n in [5usize, 10, 20, 38] {
        let subset: Vec<&str> = keys.iter().take(n).map(|k| k.name).collect();
        let filter = Tcbf::from_keys(256, 4, 50, subset.iter().map(|s| s.as_bytes()));
        let raw = wire::raw_strings_len(subset.iter().copied());
        let full = wire::encode(&filter, CounterMode::Full)
            .expect("encodes")
            .len();
        let shared = wire::encode(&filter, CounterMode::Shared)
            .expect("encodes")
            .len();
        let ripped = wire::encode(&filter, CounterMode::Ripped)
            .expect("encodes")
            .len();
        rows.push(vec![
            n.to_string(),
            raw.to_string(),
            full.to_string(),
            shared.to_string(),
            ripped.to_string(),
            f3(shared as f64 / raw as f64),
        ]);
    }
    let headers = [
        "keys",
        "raw strings (B)",
        "tcbf full (B)",
        "tcbf shared (B)",
        "tcbf ripped (B)",
        "shared/raw",
    ];
    print!(
        "{}",
        render_table(
            "analysis — memory: TCBF wire forms vs raw strings (Section VI-C)",
            &headers,
            &rows
        )
    );
    write_csv("analysis_memory", &headers, &rows);

    // Eq. 9–10: optimal filter count under a storage bound.
    let mut rows = Vec::new();
    for budget in [300usize, 600, 1200, 2400, 4800] {
        match AllocationPlan::solve(256, 4, 100, budget) {
            Ok(plan) => rows.push(vec![
                budget.to_string(),
                plan.filters.to_string(),
                f1(plan.keys_per_filter),
                f3(plan.fr_threshold),
                f4(plan.joint_fpr),
                plan.memory_bytes.to_string(),
            ]),
            Err(_) => rows.push(vec![
                budget.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "infeasible".into(),
                "-".into(),
            ]),
        }
    }
    let headers = [
        "budget (B)",
        "filters h",
        "keys/filter",
        "θ (FR threshold)",
        "joint FPR",
        "memory (B)",
    ];
    print!(
        "{}",
        render_table(
            "analysis — Eq. 9-10 optimal TCBF allocation (100 keys)",
            &headers,
            &rows
        )
    );
    write_csv("analysis_allocation", &headers, &rows);

    // Eq. 6: unique interests among ℕ collected keys (k̄ = 1 per node,
    // 38-key universe) — the duplicate discount a broker's filter
    // enjoys.
    let mut rows = Vec::new();
    for ncol in [10u64, 50, 100, 300, 800] {
        let unique = math::expected_unique_keys(ncol as f64, 1.0, 38);
        rows.push(vec![ncol.to_string(), f1(unique), f3(unique / ncol as f64)]);
    }
    let headers = ["keys collected ℕ", "unique (Eq.6)", "unique/collected"];
    print!(
        "{}",
        render_table(
            "analysis — Eq. 6 unique interests per broker (38-key universe)",
            &headers,
            &rows
        )
    );
    write_csv("analysis_unique", &headers, &rows);

    // Eq. 4-5: the DF table for the TTL grid, on the Haggle-like trace.
    let e = Experiment::haggle(MASTER_SEED);
    let mut rows = Vec::new();
    for &mins in &TTL_GRID_MINS {
        let df = e.df_for_ttl(SimDuration::from_mins(mins));
        rows.push(vec![mins.to_string(), f4(df)]);
    }
    let headers = ["ttl_mins", "df_per_min (Eq.5)"];
    print!(
        "{}",
        render_table(
            "analysis — Eq. 5 decaying factors (paper: 0.138/min at D = 10 h)",
            &headers,
            &rows
        )
    );
    write_csv("analysis_df", &headers, &rows);
}
