//! Experiment harness regenerating every table and figure of the
//! B-SUB paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper around
//! a function in [`experiments`]; the functions print aligned tables
//! to stdout and write machine-readable CSV into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiments;
pub mod output;

use bsub_baselines::{Pull, Push};
use bsub_core::{BsubConfig, BsubProtocol, DfMode};
use bsub_sim::{GeneratedMessage, SimConfig, SimReport, Simulation, SubscriptionTable};
use bsub_traces::{ContactTrace, SimDuration};
use bsub_workload::{interests, keys, WorkloadBuilder};

/// A fully prepared evaluation environment: trace, ground-truth
/// subscriptions, and a message schedule, all from one seed.
#[derive(Debug)]
pub struct Experiment {
    /// The contact trace driving the simulation.
    pub trace: ContactTrace,
    /// Ground-truth subscriptions (one weighted key per node).
    pub subscriptions: SubscriptionTable,
    /// The centrality-scaled message schedule.
    pub schedule: Vec<GeneratedMessage>,
}

/// The master seed all experiment binaries use, so every figure is
/// regenerated from identical inputs.
pub const MASTER_SEED: u64 = 20100621; // ICDCS 2010 opening day

impl Experiment {
    /// Builds an environment over an arbitrary trace.
    #[must_use]
    pub fn over(trace: ContactTrace, seed: u64) -> Self {
        let subscriptions =
            interests::assign_interests(trace.node_count(), keys::trend_keys(), seed ^ 0x1111);
        let schedule = WorkloadBuilder::new(&trace).seed(seed ^ 0x2222).build();
        Self {
            trace,
            subscriptions,
            schedule,
        }
    }

    /// The Haggle (Infocom'06)-like environment of Figs. 7 and 9.
    #[must_use]
    pub fn haggle(seed: u64) -> Self {
        Self::over(bsub_traces::synthetic::haggle_like(seed), seed)
    }

    /// The MIT Reality-like environment of Figs. 8 and 9.
    #[must_use]
    pub fn reality(seed: u64) -> Self {
        Self::over(bsub_traces::synthetic::reality_like(seed), seed)
    }

    /// Runs one protocol over this environment with the given TTL.
    #[must_use]
    pub fn run(&self, protocol: ProtocolKind, ttl: SimDuration) -> SimReport {
        let config = SimConfig {
            ttl,
            ..SimConfig::default()
        };
        let sim = Simulation::new(&self.trace, &self.subscriptions, &self.schedule, config);
        match protocol {
            ProtocolKind::Push => sim.run(&mut Push::new(self.trace.node_count())),
            ProtocolKind::Pull => sim.run(&mut Pull::new(self.trace.node_count())),
            ProtocolKind::Bsub { df } => {
                let config = BsubConfig::builder().df(df).delay_limit(ttl).build();
                let mut bsub = BsubProtocol::new(config, &self.subscriptions);
                sim.run(&mut bsub)
            }
        }
    }

    /// The Eq. 5 decaying factor for a given TTL, exactly as the paper
    /// sets up Figs. 7–8: "we set \[D\] the same as the TTL, and
    /// calculate DFs using Eq. 5. ... The number of encountered nodes
    /// in \[D\] is obtained by analyzing the traces", plus "a small
    /// constant ... to account for the missed cases".
    #[must_use]
    pub fn df_for_ttl(&self, ttl: SimDuration) -> f64 {
        let duration = self.trace.duration().as_secs().max(1);
        let per_node_total = 2.0 * self.trace.len() as f64 / f64::from(self.trace.node_count());
        let window_frac = (ttl.as_secs() as f64 / duration as f64).min(1.0);
        let ncol = (per_node_total * window_frac).round() as u64;
        bsub_core::df::decaying_factor_per_min(50, ncol, 256, 4, ttl.as_mins(), 0.005)
    }
}

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Epidemic flooding (upper bound).
    Push,
    /// One-hop collection (lower bound).
    Pull,
    /// B-SUB with the given decay mode.
    Bsub {
        /// Relay decay behavior.
        df: DfMode,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        let trace = bsub_traces::synthetic::SyntheticTrace::new(
            "tiny",
            12,
            SimDuration::from_hours(6),
            600,
        )
        .seed(5)
        .build();
        Experiment::over(trace, 5)
    }

    #[test]
    fn experiment_environment_is_consistent() {
        let e = tiny();
        assert_eq!(e.subscriptions.node_count(), e.trace.node_count());
        assert!(!e.schedule.is_empty());
    }

    #[test]
    fn protocol_ordering_holds_on_tiny_trace() {
        let e = tiny();
        let ttl = SimDuration::from_hours(3);
        let push = e.run(ProtocolKind::Push, ttl);
        let pull = e.run(ProtocolKind::Pull, ttl);
        let bsub = e.run(
            ProtocolKind::Bsub {
                df: DfMode::Fixed(0.05),
            },
            ttl,
        );
        assert!(push.delivery_ratio() >= bsub.delivery_ratio());
        assert!(bsub.delivery_ratio() >= pull.delivery_ratio());
        assert!(push.forwardings >= bsub.forwardings);
        assert!(bsub.forwardings >= pull.forwardings);
    }

    #[test]
    fn df_for_ttl_decreases_with_ttl() {
        let e = tiny();
        let short = e.df_for_ttl(SimDuration::from_mins(10));
        let long = e.df_for_ttl(SimDuration::from_mins(1000));
        assert!(short > long);
        assert!(long > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let e = tiny();
        let ttl = SimDuration::from_hours(2);
        let a = e.run(ProtocolKind::Push, ttl);
        let b = e.run(ProtocolKind::Push, ttl);
        assert_eq!(a, b);
    }
}
