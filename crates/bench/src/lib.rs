//! Experiment harness regenerating every table and figure of the
//! B-SUB paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each `fig*`/`table*` binary in `src/bin/` is a thin wrapper around
//! a function in [`experiments`]. Sweep-style experiments are
//! *declared* as [`engine::SweepSpec`]s and executed by the
//! deterministic parallel [`engine::Executor`]; the functions print
//! aligned tables to stdout and write machine-readable CSV into
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod engine;
pub mod experiments;
pub mod microbench;
pub mod output;
pub mod perf;

use bsub_baselines::{Pull, Push};
use bsub_core::{BsubConfig, BsubProtocol, DfMode};
use bsub_sim::{
    GeneratedMessage, Protocol, ProtocolFactory, SimConfig, SimReport, Simulation,
    SubscriptionTable,
};
use bsub_traces::{ContactTrace, SimDuration};
use bsub_workload::{interests, keys, WorkloadBuilder};
use std::sync::Arc;

/// A fully prepared evaluation environment: trace, ground-truth
/// subscriptions, and a message schedule, all from one seed. All
/// three are `Arc`-shared, so cloning an `Experiment` (or building
/// many [`Simulation`]s from one) never copies the world.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The contact trace driving the simulation.
    pub trace: Arc<ContactTrace>,
    /// Ground-truth subscriptions (one weighted key per node).
    pub subscriptions: Arc<SubscriptionTable>,
    /// The centrality-scaled message schedule.
    pub schedule: Arc<[GeneratedMessage]>,
}

/// The master seed all experiment binaries use, so every figure is
/// regenerated from identical inputs.
pub const MASTER_SEED: u64 = 20100621; // ICDCS 2010 opening day

impl Experiment {
    /// Builds an environment over an arbitrary trace.
    #[must_use]
    pub fn over(trace: ContactTrace, seed: u64) -> Self {
        let subscriptions =
            interests::assign_interests(trace.node_count(), keys::trend_keys(), seed ^ 0x1111);
        let schedule = WorkloadBuilder::new(&trace).seed(seed ^ 0x2222).build();
        Self {
            trace: Arc::new(trace),
            subscriptions: Arc::new(subscriptions),
            schedule: schedule.into(),
        }
    }

    /// The Haggle (Infocom'06)-like environment of Figs. 7 and 9.
    #[must_use]
    pub fn haggle(seed: u64) -> Self {
        Self::over(bsub_traces::synthetic::haggle_like(seed), seed)
    }

    /// The MIT Reality-like environment of Figs. 8 and 9.
    #[must_use]
    pub fn reality(seed: u64) -> Self {
        Self::over(bsub_traces::synthetic::reality_like(seed), seed)
    }

    /// A [`Simulation`] over this environment with the given TTL —
    /// the world is shared, not copied.
    #[must_use]
    pub fn sim(&self, ttl: SimDuration) -> Simulation {
        let config = SimConfig {
            ttl,
            ..SimConfig::default()
        };
        Simulation::new(
            Arc::clone(&self.trace),
            Arc::clone(&self.subscriptions),
            Arc::clone(&self.schedule),
            config,
        )
    }

    /// A factory producing fresh instances of the given protocol for
    /// this environment (the TTL feeds B-SUB's delay budget).
    #[must_use]
    pub fn factory(&self, protocol: ProtocolKind, ttl: SimDuration) -> Box<dyn ProtocolFactory> {
        let nodes = self.trace.node_count();
        match protocol {
            ProtocolKind::Push => {
                Box::new(move |_seed: u64| Box::new(Push::new(nodes)) as Box<dyn Protocol>)
            }
            ProtocolKind::Pull => {
                Box::new(move |_seed: u64| Box::new(Pull::new(nodes)) as Box<dyn Protocol>)
            }
            ProtocolKind::Bsub { df } => {
                let config = BsubConfig::builder().df(df).delay_limit(ttl).build();
                self.bsub_factory(config)
            }
        }
    }

    /// A factory producing fresh [`BsubProtocol`] instances with an
    /// explicit configuration (for ablations).
    #[must_use]
    pub fn bsub_factory(&self, config: BsubConfig) -> Box<dyn ProtocolFactory> {
        let subscriptions = Arc::clone(&self.subscriptions);
        Box::new(move |_seed: u64| {
            Box::new(BsubProtocol::new(config.clone(), &subscriptions)) as Box<dyn Protocol>
        })
    }

    /// Runs one protocol over this environment with the given TTL.
    #[must_use]
    pub fn run(&self, protocol: ProtocolKind, ttl: SimDuration) -> SimReport {
        let factory = self.factory(protocol, ttl);
        let (report, _) = self.sim(ttl).run_factory(factory.as_ref(), 0);
        report
    }

    /// The Eq. 5 decaying factor for a given TTL, exactly as the paper
    /// sets up Figs. 7–8: "we set \[D\] the same as the TTL, and
    /// calculate DFs using Eq. 5. ... The number of encountered nodes
    /// in \[D\] is obtained by analyzing the traces", plus "a small
    /// constant ... to account for the missed cases".
    #[must_use]
    pub fn df_for_ttl(&self, ttl: SimDuration) -> f64 {
        let duration = self.trace.duration().as_secs().max(1);
        let per_node_total = 2.0 * self.trace.len() as f64 / f64::from(self.trace.node_count());
        let window_frac = (ttl.as_secs() as f64 / duration as f64).min(1.0);
        let ncol = (per_node_total * window_frac).round() as u64;
        bsub_core::df::decaying_factor_per_min(50, ncol, 256, 4, ttl.as_mins(), 0.005)
    }
}

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// Epidemic flooding (upper bound).
    Push,
    /// One-hop collection (lower bound).
    Pull,
    /// B-SUB with the given decay mode.
    Bsub {
        /// Relay decay behavior.
        df: DfMode,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiment {
        let trace = bsub_traces::synthetic::SyntheticTrace::new(
            "tiny",
            12,
            SimDuration::from_hours(6),
            600,
        )
        .seed(5)
        .build();
        Experiment::over(trace, 5)
    }

    #[test]
    fn experiment_environment_is_consistent() {
        let e = tiny();
        assert_eq!(e.subscriptions.node_count(), e.trace.node_count());
        assert!(!e.schedule.is_empty());
    }

    #[test]
    fn experiment_clone_shares_the_world() {
        let e = tiny();
        let clone = e.clone();
        assert!(Arc::ptr_eq(&e.trace, &clone.trace));
        assert!(Arc::ptr_eq(&e.subscriptions, &clone.subscriptions));
        let sim = e.sim(SimDuration::from_hours(1));
        assert!(Arc::ptr_eq(sim.trace(), &e.trace));
    }

    #[test]
    fn protocol_ordering_holds_on_tiny_trace() {
        let e = tiny();
        let ttl = SimDuration::from_hours(3);
        let push = e.run(ProtocolKind::Push, ttl);
        let pull = e.run(ProtocolKind::Pull, ttl);
        let bsub = e.run(
            ProtocolKind::Bsub {
                df: DfMode::Fixed(0.05),
            },
            ttl,
        );
        assert!(push.delivery_ratio() >= bsub.delivery_ratio());
        assert!(bsub.delivery_ratio() >= pull.delivery_ratio());
        assert!(push.forwardings >= bsub.forwardings);
        assert!(bsub.forwardings >= pull.forwardings);
    }

    #[test]
    fn df_for_ttl_decreases_with_ttl() {
        let e = tiny();
        let short = e.df_for_ttl(SimDuration::from_mins(10));
        let long = e.df_for_ttl(SimDuration::from_mins(1000));
        assert!(short > long);
        assert!(long > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let e = tiny();
        let ttl = SimDuration::from_hours(2);
        let a = e.run(ProtocolKind::Push, ttl);
        let b = e.run(ProtocolKind::Push, ttl);
        assert_eq!(a, b);
    }

    #[test]
    fn factory_builds_independent_instances() {
        let e = tiny();
        let ttl = SimDuration::from_hours(2);
        let factory = e.factory(ProtocolKind::Push, ttl);
        let sim = e.sim(ttl);
        let (first, _) = sim.run_factory(factory.as_ref(), 1);
        let (second, _) = sim.run_factory(factory.as_ref(), 2);
        assert_eq!(first, second, "fresh protocol per run, no state bleed");
    }
}
