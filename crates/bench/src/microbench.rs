//! A minimal in-tree timing harness for the `benches/` targets.
//!
//! The workspace builds offline with no external dependencies, so
//! instead of `criterion` the microbenchmarks use this module: warm
//! up, run timed batches, and report the median batch's per-iteration
//! cost. It is deliberately small — good enough to compare the cost
//! of TCBF primitives and catch order-of-magnitude regressions, not a
//! statistics suite.

use std::time::{Duration, Instant};

/// Number of timed batches per benchmark; the median is reported.
const BATCHES: usize = 15;
/// Target wall-clock duration of one batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);

/// One measured benchmark: median per-iteration time.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median per-iteration duration across batches.
    pub per_iter: Duration,
    /// Iterations per timed batch.
    pub iters_per_batch: u64,
}

impl Measurement {
    /// Nanoseconds per iteration, as a float for display.
    #[must_use]
    pub fn nanos(&self) -> f64 {
        self.per_iter.as_secs_f64() * 1e9
    }
}

/// A named collection of benchmarks that prints a summary table.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<Measurement>,
}

impl Harness {
    /// An empty harness.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `body` and records it under `group/name`. The closure's
    /// return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn bench<T>(&mut self, group: &str, name: &str, mut body: impl FnMut() -> T) {
        // Warm up and size the batch so one batch lasts ~BATCH_TARGET.
        let calibration_started = Instant::now();
        let mut calibration_iters: u64 = 0;
        while calibration_started.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(body());
            calibration_iters += 1;
        }
        let per_iter = Duration::from_millis(5).as_secs_f64() / calibration_iters.max(1) as f64;
        let iters = ((BATCH_TARGET.as_secs_f64() / per_iter) as u64).clamp(1, 50_000_000);

        let mut batches: Vec<Duration> = (0..BATCHES)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(body());
                }
                started.elapsed()
            })
            .collect();
        batches.sort();
        let median = batches[BATCHES / 2];
        // `Duration` has nanosecond resolution, so integer division
        // floors a sub-ns workload to zero once the iteration cap is
        // hit; clamp to 1 ns — the harness's stated resolution.
        let per_iter = Duration::from_secs_f64(median.as_secs_f64() / iters as f64)
            .max(Duration::from_nanos(1));
        let measurement = Measurement {
            id: format!("{group}/{name}"),
            per_iter,
            iters_per_batch: iters,
        };
        eprintln!(
            "{:<40} {:>12.1} ns/iter ({} iters/batch)",
            measurement.id,
            measurement.nanos(),
            measurement.iters_per_batch,
        );
        self.results.push(measurement);
    }

    /// The recorded measurements, in bench order.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the summary table to stdout.
    pub fn report(&self, title: &str) {
        println!("\n== {title} ==");
        println!("{:<40} {:>14}", "benchmark", "median ns/iter");
        println!("{}", "-".repeat(56));
        for m in &self.results {
            println!("{:<40} {:>14.1}", m.id, m.nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut h = Harness::new();
        let mut x: u64 = 1;
        h.bench("unit", "wrapping_mul", || {
            x = x.wrapping_mul(6_364_136_223_846_793_005);
            x
        });
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert_eq!(m.id, "unit/wrapping_mul");
        assert!(m.per_iter > Duration::ZERO);
        assert!(m.iters_per_batch >= 1);
    }
}
