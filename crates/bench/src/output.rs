//! Table, CSV, and perf-trajectory output helpers for the experiment
//! binaries.
//!
//! Figure CSVs must stay byte-identical across executor worker counts
//! (see `engine`'s determinism contract), so wall-clock data never
//! goes into them — [`record_perf`] writes it to separate artifacts.

use crate::engine::SweepOutcome;
use bsub_sim::{EpochRow, EventLog};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Prints an aligned text table and returns it as a string.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
    out
}

/// The `results/` directory next to the workspace root (created on
/// demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("BSUB_RESULTS_DIR") {
        Ok(custom) => PathBuf::from(custom),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    };
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes rows as CSV under `results/<name>.csv`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut out = String::new();
    let _ = writeln!(out, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, out).expect("write CSV");
    println!("[written {}]", path.display());
}

/// Renders sealed epoch rows as `results/timeseries_<name>.csv`.
///
/// Every value comes from the deterministic event stream (see the
/// `bsub-sim` record module), so the file is byte-identical across
/// worker counts, like the figure CSVs.
pub fn write_timeseries(name: &str, rows: &[EpochRow]) {
    let headers = [
        "epoch",
        "end_mins",
        "brokers",
        "buffered",
        "relay_fill",
        "relay_fpr",
        "max_counter",
        "published",
        "delivered",
        "false_delivered",
        "forwarded",
        "injected",
        "expired",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.epoch.to_string(),
                f1(r.end_mins),
                r.brokers.to_string(),
                r.buffered.to_string(),
                f4(r.relay_fill),
                format!("{:.6}", r.relay_fpr),
                r.max_counter.to_string(),
                r.published.to_string(),
                r.delivered.to_string(),
                r.false_delivered.to_string(),
                r.forwarded.to_string(),
                r.injected.to_string(),
                r.expired.to_string(),
            ]
        })
        .collect();
    write_csv(&format!("timeseries_{name}"), &headers, &body);
}

/// Renders an event log as `results/events_<name>.jsonl` — one JSON
/// object per [`bsub_sim::TraceEvent`], in emission order.
pub fn write_events(name: &str, log: &EventLog) {
    let path = results_dir().join(format!("events_{name}.jsonl"));
    fs::write(&path, log.to_jsonl()).expect("write event log");
    println!(
        "[written {} ({} events)]",
        path.display(),
        log.events().len()
    );
}

/// Records a sweep's timing: per-run wall clocks as
/// `results/perf_<name>.csv` (a snapshot, overwritten each run) and
/// one [`crate::perf::PerfEntry`] appended to
/// `results/BENCH_perf.json` (the cross-run perf trajectory the
/// regression gate compares against).
pub fn record_perf(outcome: &SweepOutcome) {
    let headers = ["index", "point", "label", "seed", "wall_ms"];
    let rows: Vec<Vec<String>> = outcome
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                i.to_string(),
                r.point.clone(),
                r.label.clone(),
                r.seed.to_string(),
                format!("{:.3}", r.wall.as_secs_f64() * 1e3),
            ]
        })
        .collect();
    write_csv(&format!("perf_{}", outcome.name), &headers, &rows);

    let path = results_dir().join("BENCH_perf.json");
    crate::perf::append(&path, &crate::perf::PerfEntry::from_outcome(outcome));
    println!("[appended {}]", path.display());
}

/// Formats a float with three decimals.
#[must_use]
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
#[must_use]
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with four decimals.
#[must_use]
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "demo",
            &["a", "metric"],
            &[
                vec!["1".into(), "0.5".into()],
                vec!["100".into(), "12.25".into()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("metric"));
        let lines: Vec<&str> = t.lines().filter(|l| !l.is_empty()).collect();
        // Header, separator, two rows, title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f1(12.34), "12.3");
        assert_eq!(f4(0.00025), "0.0003");
    }

    #[test]
    fn csv_roundtrip() {
        std::env::set_var(
            "BSUB_RESULTS_DIR",
            std::env::temp_dir().join("bsub-test-results"),
        );
        write_csv("unit-test", &["x", "y"], &[vec!["1".into(), "2".into()]]);
        let path = results_dir().join("unit-test.csv");
        let content = fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        std::env::remove_var("BSUB_RESULTS_DIR");
    }
}
