//! The perf trajectory and regression gate.
//!
//! Every sweep appends one [`PerfEntry`] to `results/BENCH_perf.json`
//! — a JSON array holding the repo's performance history, one entry
//! object per line so diffs stay reviewable and the file can be parsed
//! without a JSON dependency. Entries carry both wall-clock timings
//! (normalized across hosts via [`calibrate_ns`]) and the sweep's
//! deterministic work sums (bytes moved, forwardings, deliveries), so
//! the comparator can tell "the machine is slow today" from "the code
//! now does more work".
//!
//! The gate itself is [`check`]: median-of-N over the baseline entries
//! for the same experiment, with a noise tolerance on the normalized
//! CPU time and a tighter one on the deterministic byte counters.
//! `ci.sh` runs it through `perf --smoke --check`.

use crate::engine::SweepOutcome;
use bsub_obs::calibrate_ns;
use bsub_obs::json::{json_f64, json_string};
use std::fs;
use std::path::Path;

/// Default multiplier on the baseline's median normalized CPU time
/// before a run counts as a timing regression. Wide enough to absorb
/// scheduler noise on a loaded CI host, tight enough that a genuine
/// 2x slowdown fails.
pub const DEFAULT_TIME_TOLERANCE: f64 = 1.6;

/// Default multiplier on the baseline's median deterministic byte
/// count. Bytes moved are seed-deterministic, so drift here means the
/// protocol's behavior changed, not the machine.
pub const DEFAULT_BYTES_TOLERANCE: f64 = 1.25;

/// One sweep's perf summary, as persisted in `BENCH_perf.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Experiment name ([`SweepOutcome::name`]).
    pub experiment: String,
    /// Worker threads that executed the sweep.
    pub workers: u64,
    /// Number of runs in the sweep.
    pub runs: u64,
    /// Wall-clock duration of the whole sweep, milliseconds.
    pub total_ms: f64,
    /// Sum of per-run wall clocks, milliseconds.
    pub cpu_ms: f64,
    /// `cpu_ms / total_ms` — the parallel speedup.
    pub speedup: f64,
    /// This host's [`calibrate_ns`] measurement at record time, used
    /// to normalize `cpu_ms` across machines.
    pub calib_ns: u64,
    /// Deterministic bytes moved across the sweep (control + data).
    pub bytes: u64,
    /// Deterministic forwardings across the sweep.
    pub forwardings: u64,
    /// Deterministic genuine deliveries across the sweep.
    pub delivered: u64,
}

impl PerfEntry {
    /// Summarizes a finished sweep, measuring the host calibration.
    #[must_use]
    pub fn from_outcome(outcome: &SweepOutcome) -> Self {
        let mut bytes: u64 = 0;
        let mut forwardings: u64 = 0;
        let mut delivered: u64 = 0;
        for r in &outcome.records {
            bytes = bytes.saturating_add(r.report.total_bytes());
            forwardings = forwardings.saturating_add(r.report.forwardings);
            delivered = delivered.saturating_add(r.report.delivered);
        }
        Self {
            experiment: outcome.name.clone(),
            workers: outcome.workers as u64,
            runs: outcome.records.len() as u64,
            total_ms: outcome.total_wall.as_secs_f64() * 1e3,
            cpu_ms: outcome.cpu_wall().as_secs_f64() * 1e3,
            speedup: outcome.speedup(),
            calib_ns: calibrate_ns(),
            bytes,
            forwardings,
            delivered,
        }
    }

    /// CPU milliseconds per calibration millisecond — the host-speed-
    /// normalized cost the comparator reasons about.
    #[must_use]
    pub fn normalized_cpu(&self) -> f64 {
        self.cpu_ms / (self.calib_ns.max(1) as f64 / 1e6)
    }

    /// Renders the entry as a single-line JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"experiment\":{},\"workers\":{},\"runs\":{},\"total_ms\":{},\
             \"cpu_ms\":{},\"speedup\":{},\"calib_ns\":{},\"bytes\":{},\
             \"forwardings\":{},\"delivered\":{}}}",
            json_string(&self.experiment),
            self.workers,
            self.runs,
            json_f64(round3(self.total_ms)),
            json_f64(round3(self.cpu_ms)),
            json_f64(round3(self.speedup)),
            self.calib_ns,
            self.bytes,
            self.forwardings,
            self.delivered,
        )
    }

    /// Parses one entry line written by [`to_json`]. Returns `None`
    /// for lines that are not entry objects (the array brackets) or
    /// that miss a field.
    #[must_use]
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(Self {
            experiment: field_str(line, "experiment")?,
            workers: field(line, "workers")?.parse().ok()?,
            runs: field(line, "runs")?.parse().ok()?,
            total_ms: field(line, "total_ms")?.parse().ok()?,
            cpu_ms: field(line, "cpu_ms")?.parse().ok()?,
            speedup: field(line, "speedup")?.parse().ok()?,
            calib_ns: field(line, "calib_ns")?.parse().ok()?,
            bytes: field(line, "bytes")?.parse().ok()?,
            forwardings: field(line, "forwardings")?.parse().ok()?,
            delivered: field(line, "delivered")?.parse().ok()?,
        })
    }
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// The raw text of the value following `"name":`, up to the next
/// comma or closing brace (string values keep their quotes; the file
/// format never puts `,` or `}` inside strings — experiment names are
/// identifiers).
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_str(line: &str, name: &str) -> Option<String> {
    let raw = field(line, name)?;
    Some(raw.trim_matches('"').to_string())
}

/// Loads every entry from a `BENCH_perf.json` trajectory. A missing
/// file is an empty trajectory; malformed lines are skipped.
#[must_use]
pub fn load(path: &Path) -> Vec<PerfEntry> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(PerfEntry::parse).collect()
}

/// Appends `entry` to the trajectory at `path`, keeping the file a
/// valid JSON array with one entry object per line.
pub fn append(path: &Path, entry: &PerfEntry) {
    let mut entries = load(path);
    entries.push(entry.clone());
    let body: Vec<String> = entries.iter().map(PerfEntry::to_json).collect();
    let text = format!("[\n{}\n]\n", body.join(",\n"));
    fs::write(path, text).expect("write perf trajectory");
}

/// Noise tolerances for the regression gate, as multipliers on the
/// baseline medians.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Allowed factor on the normalized CPU time.
    pub time: f64,
    /// Allowed factor on the deterministic byte count.
    pub bytes: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            time: DEFAULT_TIME_TOLERANCE,
            bytes: DEFAULT_BYTES_TOLERANCE,
        }
    }
}

impl Tolerance {
    /// Defaults, overridable via `BSUB_PERF_TOLERANCE` (the time
    /// factor) — the escape hatch for known-noisy CI hosts.
    #[must_use]
    pub fn from_env() -> Self {
        let mut t = Self::default();
        if let Some(time) = std::env::var("BSUB_PERF_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|&v| v >= 1.0)
        {
            t.time = time;
        }
        t
    }
}

/// Renders each value at `decimals` places, comma-separated — the
/// per-entry breakdown behind a failed median so the diagnostic alone
/// shows whether one outlier or the whole baseline moved.
fn join_f64(values: &[f64], decimals: usize) -> String {
    values
        .iter()
        .map(|v| format!("{v:.decimals$}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite perf values"));
    values[values.len() / 2]
}

/// Compares `current` against the baseline trajectory: median-of-N
/// over the baseline entries with the same experiment name, on the
/// host-normalized CPU time and the deterministic byte count.
///
/// # Errors
///
/// Returns a diagnostic when either measure exceeds its tolerance. An
/// experiment with no baseline entries passes vacuously (first runs
/// establish the baseline, they cannot regress against it).
pub fn check(
    baseline: &[PerfEntry],
    current: &PerfEntry,
    tolerance: Tolerance,
) -> Result<String, String> {
    let history: Vec<&PerfEntry> = baseline
        .iter()
        .filter(|e| e.experiment == current.experiment)
        .collect();
    if history.is_empty() {
        return Ok(format!(
            "{}: no baseline entries, establishing baseline",
            current.experiment
        ));
    }
    let time_entries: Vec<f64> = history.iter().map(|e| e.normalized_cpu()).collect();
    let time_median = median(time_entries.clone());
    let time_now = current.normalized_cpu();
    if time_now > time_median * tolerance.time {
        return Err(format!(
            "{}: normalized CPU regressed {:.2}x over the baseline median \
             ({time_now:.1} vs {time_median:.1} cpu-ms/calib-ms, tolerance {:.2}x; \
             host calib_ns {}, baseline entries [{}])",
            current.experiment,
            time_now / time_median,
            tolerance.time,
            current.calib_ns,
            join_f64(&time_entries, 1),
        ));
    }
    let byte_entries: Vec<f64> = history.iter().map(|e| e.bytes as f64).collect();
    let bytes_median = median(byte_entries.clone());
    let bytes_now = current.bytes as f64;
    if bytes_median > 0.0 && bytes_now > bytes_median * tolerance.bytes {
        return Err(format!(
            "{}: deterministic bytes regressed {:.2}x over the baseline median \
             ({bytes_now:.0} vs {bytes_median:.0} bytes, tolerance {:.2}x; \
             host calib_ns {}, baseline entries [{}])",
            current.experiment,
            bytes_now / bytes_median,
            tolerance.bytes,
            current.calib_ns,
            join_f64(&byte_entries, 0),
        ));
    }
    Ok(format!(
        "{}: {:.2}x median normalized CPU, {:.2}x median bytes (n={})",
        current.experiment,
        time_now / time_median,
        if bytes_median > 0.0 {
            bytes_now / bytes_median
        } else {
            1.0
        },
        history.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(experiment: &str, cpu_ms: f64, calib_ns: u64, bytes: u64) -> PerfEntry {
        PerfEntry {
            experiment: experiment.into(),
            workers: 2,
            runs: 4,
            total_ms: cpu_ms / 2.0,
            cpu_ms,
            speedup: 2.0,
            calib_ns,
            bytes,
            forwardings: 100,
            delivered: 50,
        }
    }

    #[test]
    fn json_roundtrip() {
        let e = entry("fig7", 1234.5678, 8_000_000, 42_000);
        let parsed = PerfEntry::parse(&e.to_json()).expect("parses");
        assert_eq!(parsed.experiment, "fig7");
        assert_eq!(parsed.calib_ns, 8_000_000);
        assert_eq!(parsed.bytes, 42_000);
        assert!(
            (parsed.cpu_ms - 1234.568).abs() < 1e-9,
            "3-decimal rounding"
        );
    }

    #[test]
    fn trajectory_file_stays_a_valid_array() {
        let dir = std::env::temp_dir().join("bsub-perf-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_perf.json");
        let _ = fs::remove_file(&path);
        append(&path, &entry("a", 10.0, 1_000_000, 5));
        append(&path, &entry("b", 20.0, 1_000_000, 6));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("\n]\n"));
        let loaded = load(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].experiment, "a");
        assert_eq!(loaded[1].experiment, "b");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn steady_timings_pass() {
        let baseline = vec![
            entry("smoke", 100.0, 1_000_000, 1000),
            entry("smoke", 110.0, 1_000_000, 1000),
            entry("smoke", 95.0, 1_000_000, 1000),
        ];
        let current = entry("smoke", 105.0, 1_000_000, 1000);
        assert!(check(&baseline, &current, Tolerance::default()).is_ok());
    }

    /// The acceptance criterion: an injected 2x slowdown must fail the
    /// gate at the default tolerance.
    #[test]
    fn injected_2x_slowdown_fails() {
        let baseline = vec![
            entry("smoke", 100.0, 1_000_000, 1000),
            entry("smoke", 104.0, 1_000_000, 1000),
            entry("smoke", 98.0, 1_000_000, 1000),
        ];
        let slow = entry("smoke", 200.0, 1_000_000, 1000);
        let err = check(&baseline, &slow, Tolerance::default()).expect_err("2x must fail");
        assert!(err.contains("normalized CPU regressed"), "{err}");
    }

    /// A timing failure names the host calibration and every baseline
    /// entry behind the median, so a flaky-host report is actionable
    /// without re-running the gate.
    #[test]
    fn time_failure_lists_calibration_and_baseline_entries() {
        let baseline = vec![
            entry("smoke", 100.0, 1_000_000, 1000),
            entry("smoke", 104.0, 1_000_000, 1000),
            entry("smoke", 98.0, 1_000_000, 1000),
        ];
        let slow = entry("smoke", 500.0, 2_500_000, 1000);
        let err = check(&baseline, &slow, Tolerance::default()).expect_err("fails");
        assert!(err.contains("host calib_ns 2500000"), "{err}");
        assert!(
            err.contains("baseline entries [100.0, 104.0, 98.0]"),
            "{err}"
        );
    }

    /// A byte failure carries the same per-entry breakdown.
    #[test]
    fn byte_failure_lists_baseline_entries() {
        let baseline = vec![
            entry("smoke", 100.0, 1_000_000, 1000),
            entry("smoke", 100.0, 1_000_000, 1200),
        ];
        let bloated = entry("smoke", 100.0, 1_000_000, 4000);
        let err = check(&baseline, &bloated, Tolerance::default()).expect_err("fails");
        assert!(err.contains("host calib_ns 1000000"), "{err}");
        assert!(err.contains("baseline entries [1000, 1200]"), "{err}");
    }

    /// A slower machine is not a regression: the calibration doubles
    /// alongside the CPU time, so the normalized cost is unchanged.
    #[test]
    fn slow_host_is_normalized_away() {
        let baseline = vec![
            entry("smoke", 100.0, 1_000_000, 1000),
            entry("smoke", 102.0, 1_000_000, 1000),
            entry("smoke", 99.0, 1_000_000, 1000),
        ];
        let slow_host = entry("smoke", 200.0, 2_000_000, 1000);
        assert!(check(&baseline, &slow_host, Tolerance::default()).is_ok());
    }

    #[test]
    fn byte_growth_fails_independently_of_timing() {
        let baseline = vec![entry("smoke", 100.0, 1_000_000, 1000)];
        let bloated = entry("smoke", 100.0, 1_000_000, 2000);
        let err = check(&baseline, &bloated, Tolerance::default()).expect_err("bytes gate");
        assert!(err.contains("deterministic bytes"), "{err}");
    }

    #[test]
    fn unknown_experiment_establishes_baseline() {
        let baseline = vec![entry("smoke", 100.0, 1_000_000, 1000)];
        let fresh = entry("brand-new", 9999.0, 1_000_000, 1);
        let note = check(&baseline, &fresh, Tolerance::default()).expect("vacuous pass");
        assert!(note.contains("establishing baseline"));
    }

    #[test]
    fn env_tolerance_overrides_time_factor() {
        std::env::set_var("BSUB_PERF_TOLERANCE", "3.5");
        let t = Tolerance::from_env();
        std::env::remove_var("BSUB_PERF_TOLERANCE");
        assert!((t.time - 3.5).abs() < 1e-12);
        assert!((t.bytes - DEFAULT_BYTES_TOLERANCE).abs() < 1e-12);
        let baseline = vec![entry("smoke", 100.0, 1_000_000, 1000)];
        let slow = entry("smoke", 300.0, 1_000_000, 1000);
        assert!(check(&baseline, &slow, t).is_ok(), "3x passes at 3.5x");
    }
}
