//! The executor's determinism contract, end to end: for fig7- and
//! fig9-shaped sweeps, the records (reports, seeds, labels — and
//! therefore any CSV rendered from them) are bit-identical whether
//! the sweep runs on 1, 2, or 8 workers — and, since the sharded
//! simulation core landed, for any intra-run shard count crossed with
//! any worker count.

use bsub_bench::engine::{Executor, RecordSpec, RunSpec, SweepOutcome, SweepSpec};
use bsub_bench::{Experiment, ProtocolKind};
use bsub_core::DfMode;
use bsub_obs::ProfReport;
use bsub_traces::SimDuration;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn with_shards(mut spec: SweepSpec, shards: usize) -> SweepSpec {
    spec.shards = shards;
    spec
}

fn tiny(name: &str, seed: u64) -> Experiment {
    let trace =
        bsub_traces::synthetic::SyntheticTrace::new(name, 14, SimDuration::from_hours(8), 900)
            .seed(seed)
            .build();
    Experiment::over(trace, seed)
}

/// A fig7-shaped sweep: a TTL grid crossed with PUSH / B-SUB / PULL
/// over one environment.
fn fig7_shaped() -> SweepSpec {
    let experiment = tiny("t7", 31);
    let mut runs = Vec::new();
    for mins in [30u64, 90, 240] {
        let ttl = SimDuration::from_mins(mins);
        let df = experiment.df_for_ttl(ttl);
        let protocols = [
            ("push", ProtocolKind::Push),
            (
                "bsub",
                ProtocolKind::Bsub {
                    df: DfMode::Fixed(df),
                },
            ),
            ("pull", ProtocolKind::Pull),
        ];
        for (label, kind) in protocols {
            runs.push(RunSpec {
                point: mins.to_string(),
                label: label.to_string(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: "fig7-shaped".into(),
        master_seed: 7,
        shards: 1,
        runs,
    }
}

/// A fig9-shaped sweep: a DF grid crossed with two environments.
fn fig9_shaped() -> SweepSpec {
    let ttl = SimDuration::from_hours(4);
    let first = tiny("t9a", 41);
    let second = tiny("t9b", 43);
    let mut runs = Vec::new();
    for df in [0.0f64, 0.25, 1.0, 2.0] {
        let mode = if df == 0.0 {
            DfMode::Disabled
        } else {
            DfMode::Fixed(df)
        };
        for (label, env) in [("first", &first), ("second", &second)] {
            runs.push(RunSpec {
                point: format!("{df:.2}"),
                label: label.to_string(),
                sim: env.sim(ttl),
                factory: env.factory(ProtocolKind::Bsub { df: mode }, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: "fig9-shaped".into(),
        master_seed: 9,
        shards: 1,
        runs,
    }
}

/// Flattens everything deterministic about an outcome (wall-clock
/// excluded by design) into a comparable string.
fn fingerprint(outcome: &SweepOutcome) -> String {
    outcome
        .records
        .iter()
        .map(|r| format!("{}|{}|{}|{:?}\n", r.point, r.label, r.seed, r.report))
        .collect()
}

fn assert_identical_across_workers(build: impl Fn() -> SweepSpec) {
    let baseline = fingerprint(&Executor::with_workers(1).run(&build()));
    assert!(!baseline.is_empty());
    for workers in WORKER_COUNTS {
        let outcome = Executor::with_workers(workers).run(&build());
        assert_eq!(
            outcome.workers,
            workers.min(build().runs.len()),
            "executor reports its actual worker count"
        );
        assert_eq!(
            fingerprint(&outcome),
            baseline,
            "{} must be bit-identical on {workers} workers",
            outcome.name,
        );
    }
}

/// A degradation-shaped sweep: the fault-intensity grid crossed with
/// PUSH / B-SUB / PULL over one environment, using the real
/// [`degradation_faults`](bsub_bench::experiments::degradation_faults)
/// specs (contact loss + truncation + corruption + churn).
fn fault_matrix_shaped() -> SweepSpec {
    let experiment = tiny("flt", 61);
    let ttl = SimDuration::from_mins(240);
    let df = experiment.df_for_ttl(ttl);
    let mut runs = Vec::new();
    for ppm in [0u32, 200_000, 600_000] {
        let faults = bsub_bench::experiments::degradation_faults(ppm);
        let protocols = [
            ("push", ProtocolKind::Push),
            (
                "bsub",
                ProtocolKind::Bsub {
                    df: DfMode::Fixed(df),
                },
            ),
            ("pull", ProtocolKind::Pull),
        ];
        for (label, kind) in protocols {
            runs.push(RunSpec {
                point: ppm.to_string(),
                label: label.to_string(),
                sim: experiment.sim(ttl).with_faults(faults.clone()),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            });
        }
    }
    SweepSpec {
        name: "fault-matrix".into(),
        master_seed: 13,
        shards: 1,
        runs,
    }
}

#[test]
fn fig7_shaped_sweep_is_worker_count_invariant() {
    assert_identical_across_workers(fig7_shaped);
}

/// The tentpole contract: reports are bit-identical across the full
/// worker-count × shard-count matrix, for plain, fig9-shaped, and
/// fully faulted sweeps. The `shards = 1` column doubles as the
/// pre-refactor serial reference (it takes the unsharded code path).
#[test]
fn sweeps_are_invariant_across_worker_shard_matrix() {
    for build in [
        fig7_shaped as fn() -> SweepSpec,
        fig9_shaped,
        fault_matrix_shaped,
    ] {
        let baseline = fingerprint(&Executor::with_workers(1).run(&build()));
        assert!(!baseline.is_empty());
        for workers in WORKER_COUNTS {
            for shards in SHARD_COUNTS {
                let outcome = Executor::with_workers(workers).run(&with_shards(build(), shards));
                assert_eq!(
                    fingerprint(&outcome),
                    baseline,
                    "{} must be bit-identical (workers={workers}, shards={shards})",
                    outcome.name,
                );
            }
        }
    }
}

/// Property: cross-shard exchanges drain in whatever order the OS
/// scheduler wakes the shard threads, yet results never vary —
/// repeated executions of the most contended configuration (8 workers
/// × 7 shards on a 14-node trace) fingerprint identically.
#[test]
fn sharded_drain_order_is_schedule_independent() {
    let spec = || with_shards(fig9_shaped(), 7);
    let baseline = fingerprint(&Executor::with_workers(8).run(&spec()));
    for round in 0..3 {
        assert_eq!(
            fingerprint(&Executor::with_workers(8).run(&spec())),
            baseline,
            "round {round} diverged: shard drain order leaked into results"
        );
    }
}

/// Faulted runs obey the same contract as fault-free ones: the whole
/// fault matrix is bit-identical on 1, 2, and 8 workers (the fault
/// draws live in the run's own `FaultSpec` stream, independent of
/// scheduling).
#[test]
fn fault_matrix_is_worker_count_invariant() {
    assert_identical_across_workers(fault_matrix_shaped);
}

/// `FaultSpec::none()` is *exactly* the unfaulted simulation: the zero
/// row of the fault matrix fingerprints identically to runs built
/// without `with_faults` at all.
#[test]
fn none_spec_matches_unfaulted_runs() {
    let outcome = Executor::with_workers(2).run(&fault_matrix_shaped());
    let faultless: Vec<_> = outcome
        .records
        .iter()
        .take(3)
        .map(|r| format!("{}|{}|{:?}", r.label, r.seed, r.report))
        .collect();

    let experiment = tiny("flt", 61);
    let ttl = SimDuration::from_mins(240);
    let df = experiment.df_for_ttl(ttl);
    let runs = [
        ("push", ProtocolKind::Push),
        (
            "bsub",
            ProtocolKind::Bsub {
                df: DfMode::Fixed(df),
            },
        ),
        ("pull", ProtocolKind::Pull),
    ]
    .map(|(label, kind)| RunSpec {
        point: "0".into(),
        label: label.to_string(),
        sim: experiment.sim(ttl),
        factory: experiment.factory(kind, ttl),
        record: RecordSpec::default(),
    });
    let plain = Executor::with_workers(2).run(&SweepSpec {
        name: "no-faults".into(),
        master_seed: 13,
        shards: 1,
        runs: runs.into(),
    });
    let expected: Vec<_> = plain
        .records
        .iter()
        .map(|r| format!("{}|{}|{:?}", r.label, r.seed, r.report))
        .collect();
    assert_eq!(faultless, expected);

    // Fault draws are keyed by the spec's own stream and the node id,
    // never by which shard a node landed on — so the equivalence (and
    // the whole faulted matrix) holds identically under sharded
    // execution at any shard count.
    for shards in [2, 7] {
        let sharded = Executor::with_workers(2).run(&with_shards(fault_matrix_shaped(), shards));
        let sharded_faultless: Vec<_> = sharded
            .records
            .iter()
            .take(3)
            .map(|r| format!("{}|{}|{:?}", r.label, r.seed, r.report))
            .collect();
        assert_eq!(
            sharded_faultless, expected,
            "fault draws must be shard-placement-independent (shards={shards})"
        );
    }
}

#[test]
fn fig9_shaped_sweep_is_worker_count_invariant() {
    assert_identical_across_workers(fig9_shaped);
}

/// The protocol instances come back too, in input order — the
/// ablation experiment relies on this to read B-SUB diagnostics.
/// A dynamics-shaped sweep: the same B-SUB run once silent and once
/// with full recording (events + 15-minute time-series buckets).
fn recorded_pair() -> SweepSpec {
    let experiment = tiny("dyn", 53);
    let ttl = SimDuration::from_mins(240);
    let df = experiment.df_for_ttl(ttl);
    let kind = ProtocolKind::Bsub {
        df: DfMode::Fixed(df),
    };
    SweepSpec {
        name: "recorded-pair".into(),
        master_seed: 11,
        shards: 1,
        runs: vec![
            RunSpec {
                point: "silent".into(),
                label: "bsub".into(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec::default(),
            },
            RunSpec {
                point: "recorded".into(),
                label: "bsub".into(),
                sim: experiment.sim(ttl),
                factory: experiment.factory(kind, ttl),
                record: RecordSpec {
                    events: true,
                    series: Some(SimDuration::from_mins(15)),
                    prof: false,
                },
            },
        ],
    }
}

/// Recorders are pure observers: a run with full recording attached
/// produces a report bit-identical to the same run on the
/// NullRecorder fast path.
#[test]
fn recording_does_not_perturb_reports() {
    let outcome = Executor::with_workers(2).run(&recorded_pair());
    let [silent, recorded] = &outcome.records[..] else {
        panic!("two runs expected")
    };
    assert_eq!(silent.report, recorded.report);
    assert!(silent.recording.is_none());
    let recording = recorded.recording.as_ref().expect("recording captured");
    let events = recording.events.as_ref().expect("event log captured");
    assert!(!events.events().is_empty(), "a live run emits events");
    assert!(!recording.series.is_empty(), "epochs were sealed");
}

/// The recorded artifacts themselves are part of the determinism
/// contract: identical JSONL and epoch rows at 1, 2, and 8 workers.
#[test]
fn recorded_artifacts_are_worker_count_invariant() {
    let render = |workers: usize| {
        let outcome = Executor::with_workers(workers).run(&recorded_pair());
        let recording = outcome.records[1]
            .recording
            .as_ref()
            .expect("recording captured");
        let jsonl = recording
            .events
            .as_ref()
            .expect("event log captured")
            .to_jsonl();
        (jsonl, format!("{:?}", recording.series))
    };
    let baseline = render(1);
    assert!(baseline.0.lines().count() > 0);
    for workers in WORKER_COUNTS {
        assert_eq!(render(workers), baseline, "workers = {workers}");
    }
}

/// A fig7-shaped sweep with full recording (events + series) and the
/// profiler optionally attached to every run.
fn fig7_shaped_recorded(prof: bool) -> SweepSpec {
    let mut spec = fig7_shaped();
    for run in &mut spec.runs {
        run.record = RecordSpec {
            events: true,
            series: Some(SimDuration::from_mins(30)),
            prof,
        };
    }
    spec
}

/// Renders the figure CSV text exactly as `experiments::ttl_sweep`
/// writes it, plus the concatenated event JSONL streams and any
/// per-run profiling reports.
fn figure_artifacts(
    workers: usize,
    prof: bool,
    shards: usize,
) -> (String, String, Vec<ProfReport>) {
    use bsub_bench::output::{f1, f3};
    let outcome =
        Executor::with_workers(workers).run(&with_shards(fig7_shaped_recorded(prof), shards));
    let mut csv = String::from(
        "ttl_mins,push_delivery,bsub_delivery,pull_delivery,push_delay_min,\
         bsub_delay_min,pull_delay_min,push_fwd,bsub_fwd,pull_fwd\n",
    );
    for point in outcome.records.chunks(3) {
        let [push, bsub, pull] = point else {
            panic!("three protocols per TTL point")
        };
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            push.point,
            f3(push.report.delivery_ratio()),
            f3(bsub.report.delivery_ratio()),
            f3(pull.report.delivery_ratio()),
            f1(push.report.mean_delay_mins()),
            f1(bsub.report.mean_delay_mins()),
            f1(pull.report.mean_delay_mins()),
            f1(push.report.forwardings_per_delivered()),
            f1(bsub.report.forwardings_per_delivered()),
            f1(pull.report.forwardings_per_delivered()),
        ));
    }
    let events: String = outcome
        .records
        .iter()
        .map(|r| {
            r.recording
                .as_ref()
                .expect("recording requested")
                .events
                .as_ref()
                .expect("event log requested")
                .to_jsonl()
        })
        .collect();
    assert_eq!(
        outcome.records.iter().all(|r| r.prof.is_some()),
        prof,
        "profiling reports attach exactly when requested"
    );
    let profs: Vec<ProfReport> = outcome
        .records
        .iter()
        .filter_map(|r| r.prof.clone())
        .collect();
    (csv, events, profs)
}

/// The profiler is a pure observer: figure CSVs and TraceEvent
/// streams are byte-identical with metrics enabled or disabled, at 1,
/// 2, and 8 workers.
#[test]
fn profiling_does_not_perturb_figure_artifacts() {
    let (baseline_csv, baseline_events, _) = figure_artifacts(1, false, 1);
    assert!(baseline_csv.lines().count() > 1);
    assert!(!baseline_events.is_empty());
    for workers in WORKER_COUNTS {
        for prof in [false, true] {
            let (csv, events, _) = figure_artifacts(workers, prof, 1);
            assert_eq!(
                csv, baseline_csv,
                "figure CSV must be byte-identical (workers={workers}, prof={prof})"
            );
            assert_eq!(
                events, baseline_events,
                "event stream must be byte-identical (workers={workers}, prof={prof})"
            );
        }
    }
}

/// The full matrix over recorded artifacts: figure CSVs, TraceEvent
/// streams, and the deterministic portion of per-run ProfReports are
/// identical at every (workers × shards) combination.
#[test]
fn figure_artifacts_are_shard_invariant() {
    let (baseline_csv, baseline_events, baseline_profs) = figure_artifacts(1, true, 1);
    assert!(!baseline_profs.is_empty());
    for workers in WORKER_COUNTS {
        for shards in SHARD_COUNTS {
            let (csv, events, profs) = figure_artifacts(workers, true, shards);
            assert_eq!(
                csv, baseline_csv,
                "figure CSV must be byte-identical (workers={workers}, shards={shards})"
            );
            assert_eq!(
                events, baseline_events,
                "event stream must be byte-identical (workers={workers}, shards={shards})"
            );
            assert_eq!(profs.len(), baseline_profs.len());
            for (i, (a, b)) in profs.iter().zip(&baseline_profs).enumerate() {
                assert!(
                    a.eq_deterministic(b),
                    "run {i}: deterministic profile drifted (workers={workers}, shards={shards})"
                );
            }
        }
    }
}

/// The live observability plane's standing invariant (DESIGN.md §15):
/// the profiler that feeds it — the same per-contact reports workers
/// ship as `STATS` deltas — is a pure observer. With the plane on or
/// off, figure CSVs and TraceEvent streams are byte-identical across
/// the full worker × shard matrix the plane ships under.
#[test]
fn observability_plane_on_off_artifacts_are_byte_identical() {
    let (baseline_csv, baseline_events, _) = figure_artifacts(1, false, 1);
    assert!(baseline_csv.lines().count() > 1);
    assert!(!baseline_events.is_empty());
    for workers in [1usize, 2, 8] {
        for shards in [1usize, 4] {
            for plane_on in [false, true] {
                let (csv, events, profs) = figure_artifacts(workers, plane_on, shards);
                assert_eq!(
                    csv, baseline_csv,
                    "figure CSV must not see the plane (workers={workers}, \
                     shards={shards}, plane_on={plane_on})"
                );
                assert_eq!(
                    events, baseline_events,
                    "event stream must not see the plane (workers={workers}, \
                     shards={shards}, plane_on={plane_on})"
                );
                assert_eq!(
                    !profs.is_empty(),
                    plane_on,
                    "reports exist exactly when the plane is on"
                );
            }
        }
    }
}

#[test]
fn protocols_return_in_input_order() {
    let outcome = Executor::with_workers(4).run(&fig7_shaped());
    for point in outcome.records.chunks(3) {
        let names: Vec<&str> = point.iter().map(|r| r.protocol.name()).collect();
        assert_eq!(names, ["PUSH", "B-SUB", "PULL"]);
    }
}
