//! Golden-file regression tests: regenerate the committed figure
//! artifacts from scratch and byte-compare them against `results/`.
//!
//! This is the repository's strongest guard against silent behavioral
//! drift — any change to the filter family, the simulator, the
//! protocols, or the sweep executor that perturbs a single delivered
//! message shows up here as a CSV diff. The fault-injection layer in
//! particular is required to leave every fault-free figure
//! bit-for-bit unchanged (`FaultSpec::none()` must cost nothing and
//! change nothing).
//!
//! Everything runs inside ONE `#[test]` in its own integration binary:
//! the regeneration is redirected via the `BSUB_RESULTS_DIR`
//! environment variable, and `std::env::set_var` is only safe while no
//! other test thread can race on it.

use std::fs;
use std::path::Path;

/// The deterministic figure artifacts that are committed to the repo.
/// (Timing files like `perf_*.csv` are gitignored and not compared.)
const GOLDEN: [&str; 4] = ["fig7.csv", "fig8.csv", "fig9.csv", "ablation.csv"];

/// First line where the two renderings diverge, for a readable diff.
fn first_divergence(fresh: &str, golden: &str) -> String {
    for (i, (f, g)) in fresh.lines().zip(golden.lines()).enumerate() {
        if f != g {
            return format!("line {}:\n  fresh : {f}\n  golden: {g}", i + 1);
        }
    }
    format!(
        "line counts differ: fresh {} vs golden {}",
        fresh.lines().count(),
        golden.lines().count()
    )
}

#[test]
fn regenerated_figures_match_committed_artifacts() {
    let tmp = Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden-results");
    fs::create_dir_all(&tmp).expect("create scratch results dir");
    std::env::set_var("BSUB_RESULTS_DIR", &tmp);

    bsub_bench::experiments::fig7();
    bsub_bench::experiments::fig8();
    bsub_bench::experiments::fig9();
    bsub_bench::experiments::ablation();

    std::env::remove_var("BSUB_RESULTS_DIR");

    let committed = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    for name in GOLDEN {
        let fresh = fs::read_to_string(tmp.join(name))
            .unwrap_or_else(|e| panic!("regenerated {name} missing: {e}"));
        let golden = fs::read_to_string(committed.join(name))
            .unwrap_or_else(|e| panic!("committed results/{name} missing: {e}"));
        assert_eq!(
            fresh,
            golden,
            "{name} drifted from the committed artifact; if the change is \
             intentional, regenerate results/ and commit the new files.\n{}",
            first_divergence(&fresh, &golden)
        );
    }
}
