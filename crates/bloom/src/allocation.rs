//! Dynamic TCBF allocation for optimal false-positive rate
//! (Section VI-D of the paper).
//!
//! Instead of letting one filter saturate, a node can spread its keys
//! across a small collection of TCBFs, allocating a new one whenever
//! the current filter's fill ratio exceeds a threshold θ. Querying the
//! collection has the *joint* FPR of Eq. 7, and the memory cost follows
//! the wire model of Eq. 8. Given a storage bound `S_max`, Eq. 9–10 ask
//! for the filter count `h` minimizing the joint FPR; since both the
//! memory and the FPR-relevant quantities are monotone in `h`, the
//! optimum is the **largest feasible `h`**, found by binary search
//! ([`AllocationPlan::solve`]). The fill ratio corresponding to
//! `n_keys / h` keys per filter becomes the allocation threshold θ.

use crate::error::Error;
use crate::hash::KeyHasher;
use crate::math;
use crate::tcbf::Tcbf;
use crate::wire::{self, CounterMode};

/// The solved parameters of a multi-TCBF allocation (Eq. 9–10).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPlan {
    /// Number of filters `h`.
    pub filters: usize,
    /// Expected keys per filter (`n / h`).
    pub keys_per_filter: f64,
    /// Fill-ratio threshold θ at which a new filter is allocated.
    pub fr_threshold: f64,
    /// Joint false-positive rate of the plan (Eq. 7).
    pub joint_fpr: f64,
    /// Expected wire memory of the plan in bytes (Eq. 8 model).
    pub memory_bytes: usize,
}

impl AllocationPlan {
    /// Solves Eq. 9–10: finds the largest `h` whose expected memory fits
    /// in `max_bytes` when `n_keys` keys are split evenly across `h`
    /// filters of `m` bits and `k` hashes, and derives the fill-ratio
    /// threshold θ.
    ///
    /// The paper notes the FPR-minimizing `h` is the maximum feasible
    /// one, found here by binary search over `[1, n_keys]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Infeasible`] if even a single filter exceeds
    /// `max_bytes`, and [`Error::InvalidParams`] for zero `m`, `k`, or
    /// `n_keys`.
    pub fn solve(m: usize, k: usize, n_keys: usize, max_bytes: usize) -> Result<Self, Error> {
        if m == 0 || k == 0 {
            return Err(Error::InvalidParams {
                reason: "m and k must be positive",
            });
        }
        if n_keys == 0 {
            return Err(Error::InvalidParams {
                reason: "allocation needs at least one key",
            });
        }
        if Self::memory_for(m, k, n_keys, 1) > max_bytes {
            return Err(Error::Infeasible {
                reason: "even one filter exceeds the storage bound",
            });
        }
        // Memory is monotone non-decreasing in h (splitting keys lowers
        // per-filter collisions, so the total number of distinct set
        // bits grows), so binary search for the largest feasible h.
        let (mut lo, mut hi) = (1usize, n_keys);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if Self::memory_for(m, k, n_keys, mid) <= max_bytes {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let h = lo;
        let per = n_keys as f64 / h as f64;
        Ok(Self {
            filters: h,
            keys_per_filter: per,
            fr_threshold: math::fill_ratio(m, k, per),
            joint_fpr: math::joint_false_positive_rate(m, k, &vec![per; h]),
            memory_bytes: Self::memory_for(m, k, n_keys, h),
        })
    }

    /// Expected wire memory (bytes) of `h` filters evenly holding
    /// `n_keys` keys, using the full-counter wire mode.
    fn memory_for(m: usize, k: usize, n_keys: usize, h: usize) -> usize {
        let per = n_keys as f64 / h as f64;
        let set_bits = math::expected_set_bits(m, k, per).ceil() as usize;
        h * wire::encoded_len(set_bits.min(m), m, CounterMode::Full)
    }
}

/// A growable collection of TCBFs that allocates a new filter whenever
/// the active one's fill ratio would exceed the threshold θ
/// (Section VI-D's dynamic allocation strategy).
///
/// Queries consult every filter, so the collection behaves as one big
/// filter with the joint FPR of Eq. 7. Decay applies to all members;
/// fully decayed filters are reclaimed.
///
/// # Examples
///
/// ```
/// use bsub_bloom::TcbfPool;
///
/// let mut pool = TcbfPool::new(256, 4, 50, 0.3);
/// for i in 0..60 {
///     pool.insert(format!("key-{i}"));
/// }
/// assert!(pool.filter_count() > 1, "pool spilled into extra filters");
/// assert!(pool.contains("key-0"));
/// assert!(pool.contains("key-59"));
/// ```
#[derive(Debug, Clone)]
pub struct TcbfPool {
    filters: Vec<Tcbf>,
    bits: usize,
    hashes: usize,
    initial: u32,
    fr_threshold: f64,
}

impl TcbfPool {
    /// Creates an empty pool. A new filter is allocated whenever
    /// inserting into the active filter would push its fill ratio past
    /// `fr_threshold`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are zero or `fr_threshold` is outside
    /// `(0, 1]`.
    #[must_use]
    pub fn new(bits: usize, hashes: usize, initial: u32, fr_threshold: f64) -> Self {
        assert!(
            fr_threshold > 0.0 && fr_threshold <= 1.0,
            "fill-ratio threshold must be in (0, 1]"
        );
        Self {
            filters: vec![Tcbf::new(bits, hashes, initial)],
            bits,
            hashes,
            initial,
            fr_threshold,
        }
    }

    /// Creates a pool from a solved [`AllocationPlan`].
    #[must_use]
    pub fn from_plan(bits: usize, hashes: usize, initial: u32, plan: &AllocationPlan) -> Self {
        Self::new(bits, hashes, initial, plan.fr_threshold)
    }

    /// Inserts a key into the active filter, spilling into a freshly
    /// allocated filter if the active one is past the threshold.
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) {
        let key = key.as_ref();
        let active = self.filters.last_mut().expect("pool is never empty");
        if active.fill_ratio() <= self.fr_threshold && active.insert(key).is_ok() {
            return;
        }
        let mut fresh = Tcbf::new(self.bits, self.hashes, self.initial);
        fresh.insert(key).expect("fresh filter accepts inserts");
        self.filters.push(fresh);
    }

    /// Inserts-or-refreshes a key, identified by its pre-computed
    /// [`KeyHasher::digests`], at strength `value`: afterwards some
    /// filter in the pool holds every position of the key at a
    /// materialized counter `>= value`, i.e.
    /// `self.min_counter(key) >= value`.
    ///
    /// This is the aggregation write path of `bsub-match`: unlike
    /// [`TcbfPool::insert`], which keeps already-set counters (the
    /// paper's insertion rule), reinforcement *refreshes* counters
    /// that an earlier key set and decay has since weakened, so a
    /// tier-level pool stays a superset of every member filter. The
    /// digests must come from the same hasher the pool's filters use
    /// (the crate default unless constructed otherwise). Spill
    /// behavior mirrors `insert`: a fresh filter is allocated when the
    /// active one is past the threshold θ and does not already hold
    /// the key.
    pub fn reinforce(&mut self, digests: (u64, u64), value: u32) {
        if value == 0 {
            return;
        }
        let (hashes, bits) = (self.hashes, self.bits);
        let active = self.filters.last_mut().expect("pool is never empty");
        let present = KeyHasher::positions_from_digests(digests, hashes, bits)
            .all(|p| active.counter_at(p) > 0);
        if present || active.fill_ratio() <= self.fr_threshold {
            active.refresh_positions(
                KeyHasher::positions_from_digests(digests, hashes, bits),
                value,
            );
            return;
        }
        let mut fresh = Tcbf::new(self.bits, self.hashes, self.initial);
        fresh.refresh_positions(
            KeyHasher::positions_from_digests(digests, hashes, bits),
            value,
        );
        self.filters.push(fresh);
    }

    /// Existential query across all filters (joint FPR of Eq. 7).
    #[must_use]
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        let key = key.as_ref();
        self.filters.iter().any(|f| f.contains(key))
    }

    /// The largest min-counter of the key across all filters; zero if
    /// absent everywhere.
    #[must_use]
    pub fn min_counter<K: AsRef<[u8]>>(&self, key: K) -> u32 {
        let key = key.as_ref();
        self.filters
            .iter()
            .map(|f| f.min_counter(key))
            .max()
            .unwrap_or(0)
    }

    /// Decays every filter and reclaims the ones that fully expire (at
    /// least one filter is always retained).
    pub fn decay(&mut self, amount: u32) {
        for f in &mut self.filters {
            f.decay(amount);
        }
        if self.filters.len() > 1 {
            self.filters.retain(|f| !f.is_empty());
            if self.filters.is_empty() {
                self.filters
                    .push(Tcbf::new(self.bits, self.hashes, self.initial));
            }
        }
    }

    /// Number of filters currently allocated.
    #[must_use]
    pub fn filter_count(&self) -> usize {
        self.filters.len()
    }

    /// Total set bits across filters.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.filters.iter().map(Tcbf::set_bits).sum()
    }

    /// Wire size in bytes of shipping every filter in full-counter
    /// mode — the quantity Eq. 8 models.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        self.filters
            .iter()
            .map(|f| wire::encoded_len(f.set_bits(), f.bit_len(), CounterMode::Full))
            .sum()
    }

    /// Read-only access to the member filters.
    #[must_use]
    pub fn filters(&self) -> &[Tcbf] {
        &self.filters
    }

    /// The allocation threshold θ.
    #[must_use]
    pub fn fr_threshold(&self) -> f64 {
        self.fr_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_maximizes_filter_count_under_budget() {
        let tight = AllocationPlan::solve(256, 4, 100, 600).unwrap();
        let loose = AllocationPlan::solve(256, 4, 100, 4000).unwrap();
        assert!(loose.filters >= tight.filters);
        assert!(loose.joint_fpr <= tight.joint_fpr + 1e-12);
        assert!(tight.memory_bytes <= 600);
        assert!(loose.memory_bytes <= 4000);
    }

    #[test]
    fn plan_infeasible_budget() {
        assert!(matches!(
            AllocationPlan::solve(256, 4, 100, 10),
            Err(Error::Infeasible { .. })
        ));
    }

    #[test]
    fn plan_rejects_zero_keys() {
        assert!(matches!(
            AllocationPlan::solve(256, 4, 0, 1000),
            Err(Error::InvalidParams { .. })
        ));
    }

    #[test]
    fn plan_threshold_matches_keys_per_filter() {
        let plan = AllocationPlan::solve(256, 4, 80, 2000).unwrap();
        let fr = math::fill_ratio(256, 4, plan.keys_per_filter);
        assert!((plan.fr_threshold - fr).abs() < 1e-12);
        assert!(plan.fr_threshold > 0.0 && plan.fr_threshold < 1.0);
    }

    #[test]
    fn plan_h_bounded_by_keys() {
        let plan = AllocationPlan::solve(256, 4, 5, usize::MAX / 2).unwrap();
        assert!(plan.filters <= 5);
    }

    #[test]
    fn pool_spills_when_threshold_exceeded() {
        let mut pool = TcbfPool::new(256, 4, 10, 0.2);
        for i in 0..50 {
            pool.insert(format!("spill-{i}"));
        }
        assert!(pool.filter_count() >= 2);
        for i in 0..50 {
            assert!(pool.contains(format!("spill-{i}")));
        }
    }

    #[test]
    fn pool_single_filter_when_threshold_high() {
        let mut pool = TcbfPool::new(4096, 4, 10, 0.9);
        for i in 0..30 {
            pool.insert(format!("fit-{i}"));
        }
        assert_eq!(pool.filter_count(), 1);
    }

    #[test]
    fn pool_decay_reclaims_empty_filters() {
        let mut pool = TcbfPool::new(256, 4, 5, 0.1);
        for i in 0..60 {
            pool.insert(format!("tmp-{i}"));
        }
        let before = pool.filter_count();
        assert!(before > 1);
        pool.decay(5);
        assert_eq!(pool.filter_count(), 1, "fully decayed pool collapses");
        assert!(!pool.contains("tmp-0"));
    }

    #[test]
    fn pool_min_counter_max_across_filters() {
        let mut pool = TcbfPool::new(256, 4, 7, 0.05);
        pool.insert("a");
        for i in 0..40 {
            pool.insert(format!("fill-{i}"));
        }
        assert_eq!(pool.min_counter("a"), 7);
        assert_eq!(pool.min_counter("absent-key"), 0);
    }

    #[test]
    fn reinforce_guarantees_min_counter() {
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(256, 4, 10, 0.3);
        for i in 0..40 {
            pool.insert(format!("base-{i}"));
        }
        pool.decay(6);
        pool.reinforce(hasher.digests(b"fresh"), 9);
        assert!(pool.min_counter("fresh") >= 9);
    }

    #[test]
    fn reinforce_refreshes_decayed_counters() {
        // insert keeps already-set counters; reinforce raises them.
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(256, 4, 10, 0.9);
        pool.insert("k");
        pool.decay(7);
        assert_eq!(pool.min_counter("k"), 3);
        pool.insert("k");
        assert_eq!(pool.min_counter("k"), 3, "insert keeps set counters");
        pool.reinforce(hasher.digests(b"k"), 10);
        assert_eq!(pool.min_counter("k"), 10, "reinforce refreshes them");
    }

    #[test]
    fn reinforce_spills_past_threshold_like_insert() {
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(256, 4, 10, 0.2);
        for i in 0..50 {
            pool.reinforce(hasher.digests(format!("spill-{i}").as_bytes()), 10);
        }
        assert!(pool.filter_count() >= 2);
        for i in 0..50 {
            assert!(pool.min_counter(format!("spill-{i}")) >= 10);
        }
    }

    #[test]
    fn reinforce_present_key_refreshes_in_place_past_threshold() {
        // Push the active filter just past θ while it holds "k": every
        // call below finds fill ≤ θ at call time, so nothing spills.
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(64, 4, 10, 0.2);
        pool.reinforce(hasher.digests(b"k"), 10);
        let mut i = 0;
        while pool.filters().last().unwrap().fill_ratio() <= 0.2 {
            pool.reinforce(hasher.digests(format!("fill-{i}").as_bytes()), 10);
            i += 1;
        }
        assert_eq!(pool.filter_count(), 1);
        pool.decay(4);
        pool.reinforce(hasher.digests(b"k"), 10);
        assert_eq!(
            pool.filter_count(),
            1,
            "refreshing a key the active filter holds must not spill"
        );
        assert_eq!(pool.min_counter("k"), 10);
        // A genuinely new key now does spill.
        pool.reinforce(hasher.digests(b"brand-new"), 10);
        assert_eq!(pool.filter_count(), 2);
    }

    #[test]
    fn reinforce_zero_value_is_noop() {
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(256, 4, 10, 0.3);
        let bits = pool.set_bits();
        pool.reinforce(hasher.digests(b"k"), 0);
        assert_eq!(pool.set_bits(), bits);
    }

    #[test]
    fn pool_wire_bytes_positive_after_insert() {
        let mut pool = TcbfPool::new(256, 4, 10, 0.5);
        let empty = pool.wire_bytes();
        pool.insert("k");
        assert!(pool.wire_bytes() > empty);
    }

    #[test]
    fn pool_joint_fpr_matches_eq7_shape() {
        // A pool that spilled into h filters has empirical FPR close to
        // the joint formula.
        let mut pool = TcbfPool::new(256, 4, 10, 0.25);
        for i in 0..80 {
            pool.insert(format!("member-{i}"));
        }
        let per: Vec<f64> = pool
            .filters()
            .iter()
            .map(|f| math::keys_from_fill_ratio(256, 4, f.fill_ratio()))
            .collect();
        let theory = math::joint_false_positive_rate(256, 4, &per);
        let trials = 20_000;
        let fp = (0..trials)
            .filter(|i| pool.contains(format!("absent-{i}")))
            .count();
        let empirical = fp as f64 / f64::from(trials);
        assert!(
            (empirical - theory).abs() < 0.05,
            "empirical {empirical} vs theory {theory}"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn pool_rejects_zero_threshold() {
        let _ = TcbfPool::new(256, 4, 10, 0.0);
    }

    #[test]
    fn from_plan_uses_plan_threshold() {
        let plan = AllocationPlan::solve(256, 4, 60, 1500).unwrap();
        let pool = TcbfPool::from_plan(256, 4, 10, &plan);
        assert!((pool.fr_threshold() - plan.fr_threshold).abs() < 1e-12);
    }
}
