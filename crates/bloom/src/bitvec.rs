//! A fixed-length bit vector backed by `u64` words.
//!
//! The standard library has no bit vector and the paper's claims are
//! about the cost of exactly these operations, so we own the
//! implementation rather than pulling in a crate.

/// A fixed-length vector of bits.
///
/// Bits are indexed from `0` to `len() - 1`. All out-of-range accesses
/// panic; the filter types in this crate guarantee in-range indices by
/// construction.
///
/// # Examples
///
/// ```
/// use bsub_bloom::BitVec;
///
/// let mut bits = BitVec::new(256);
/// bits.set(7);
/// assert!(bits.get(7));
/// assert_eq!(bits.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitVec {
    /// Creates a bit vector of `len` bits, all zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Number of bits in the vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits of capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `idx` to one. Returns whether the bit was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn set(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        was
    }

    /// Clears bit `idx`. Returns whether the bit was previously set.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn clear(&mut self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        self.check(idx);
        let (w, b) = (idx / WORD_BITS, idx % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    #[must_use]
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Bitwise OR of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ; the filter types validate this with
    /// a proper error before calling.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "bit-vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Whether every set bit of `self` is also set in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0)
    }

    /// Resets all bits to zero.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            bits: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn check(&self, idx: usize) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range for BitVec of length {}",
            self.len
        );
    }
}

/// Iterator over set-bit indices, produced by [`BitVec::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    bits: &'a BitVec,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bits.words.len() {
                return None;
            }
            self.current = self.bits.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let b = BitVec::new(100);
        assert_eq!(b.len(), 100);
        assert!(b.all_zero());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.is_empty());
    }

    #[test]
    fn zero_length_is_empty() {
        let b = BitVec::new(0);
        assert!(b.is_empty());
        assert!(b.all_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitVec::new(130);
        for idx in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(idx));
            assert!(!b.set(idx), "first set reports previously-unset");
            assert!(b.get(idx));
            assert!(b.set(idx), "second set reports previously-set");
            assert!(b.clear(idx));
            assert!(!b.get(idx));
            assert!(!b.clear(idx));
        }
    }

    #[test]
    fn count_ones_across_words() {
        let mut b = BitVec::new(256);
        for idx in (0..256).step_by(3) {
            b.set(idx);
        }
        assert_eq!(b.count_ones(), (0..256).step_by(3).count());
    }

    #[test]
    fn or_assign_unions() {
        let mut a = BitVec::new(128);
        let mut b = BitVec::new(128);
        a.set(1);
        a.set(70);
        b.set(2);
        b.set(70);
        a.or_assign(&b);
        let ones: Vec<_> = a.iter_ones().collect();
        assert_eq!(ones, vec![1, 2, 70]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_assign_length_mismatch_panics() {
        let mut a = BitVec::new(128);
        let b = BitVec::new(64);
        a.or_assign(&b);
    }

    #[test]
    fn subset_relation() {
        let mut a = BitVec::new(64);
        let mut b = BitVec::new(64);
        a.set(3);
        b.set(3);
        b.set(9);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn subset_requires_equal_length() {
        let a = BitVec::new(64);
        let b = BitVec::new(128);
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn iter_ones_order_and_bounds() {
        let mut b = BitVec::new(200);
        let idxs = [0usize, 5, 63, 64, 128, 199];
        for &i in &idxs {
            b.set(i);
        }
        let got: Vec<_> = b.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = BitVec::new(70);
        b.set(0);
        b.set(69);
        b.reset();
        assert!(b.all_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let b = BitVec::new(64);
        let _ = b.get(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut b = BitVec::new(10);
        b.set(10);
    }

    #[test]
    fn non_word_aligned_length() {
        let mut b = BitVec::new(65);
        b.set(64);
        assert_eq!(b.count_ones(), 1);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![64]);
    }
}
