//! The classic Bloom filter (Section III of the paper).

use crate::bitvec::BitVec;
use crate::error::Error;
use crate::hash::KeyHasher;
use crate::math;

/// A classic Bloom filter: a space-efficient probabilistic set.
///
/// A key is inserted by setting the `k` bits chosen by the hash
/// functions; a query returns `true` iff all `k` bits of the key are
/// set. Queries never produce false negatives but may produce false
/// positives at the rate of Eq. 1 of the paper, available as
/// [`math::false_positive_rate`].
///
/// In B-SUB, plain (counter-less) Bloom filters are what consumers and
/// brokers hand to producers when requesting messages (Section V-D):
/// the counters of a [`Tcbf`](crate::Tcbf) are "ripped off" to save
/// bandwidth, leaving exactly this structure.
///
/// # Examples
///
/// ```
/// use bsub_bloom::BloomFilter;
///
/// let mut f = BloomFilter::new(256, 4);
/// f.insert("Thanksgiving");
/// assert!(f.contains("Thanksgiving"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: usize,
    hasher: KeyHasher,
}

impl BloomFilter {
    /// Creates an empty filter of `bits` bits and `hashes` hash
    /// functions, using the default network-wide hasher.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`; use
    /// [`BloomFilter::try_new`] to handle these as errors.
    #[must_use]
    pub fn new(bits: usize, hashes: usize) -> Self {
        Self::try_new(bits, hashes).expect("invalid Bloom filter parameters")
    }

    /// Fallible version of [`BloomFilter::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `bits == 0` or `hashes == 0`.
    pub fn try_new(bits: usize, hashes: usize) -> Result<Self, Error> {
        Self::with_hasher(bits, hashes, KeyHasher::default())
    }

    /// Creates an empty filter with an explicit [`KeyHasher`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParams`] if `bits == 0` or `hashes == 0`.
    pub fn with_hasher(bits: usize, hashes: usize, hasher: KeyHasher) -> Result<Self, Error> {
        if bits == 0 {
            return Err(Error::InvalidParams {
                reason: "bit-vector length must be positive",
            });
        }
        if hashes == 0 {
            return Err(Error::InvalidParams {
                reason: "hash count must be positive",
            });
        }
        Ok(Self {
            bits: BitVec::new(bits),
            hashes,
            hasher,
        })
    }

    /// Builds a filter containing every key in `keys`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn from_keys<I, K>(bits: usize, hashes: usize, keys: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut f = Self::new(bits, hashes);
        for key in keys {
            f.insert(key);
        }
        f
    }

    /// Inserts a key. Returns `true` if the key tested as already
    /// present before insertion (which may itself be a false positive).
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) -> bool {
        let mut already = true;
        for pos in self
            .hasher
            .positions(key.as_ref(), self.hashes, self.bits.len())
        {
            already &= self.bits.set(pos);
        }
        already
    }

    /// Probabilistic membership query: `true` iff all hashed bits of the
    /// key are set.
    ///
    /// A `false` answer is always correct; a `true` answer is wrong with
    /// the probability of Eq. 1 ([`math::false_positive_rate`]).
    #[must_use]
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        self.hasher
            .positions(key.as_ref(), self.hashes, self.bits.len())
            .all(|pos| self.bits.get(pos))
    }

    /// Merges `other` into `self` by bit-wise OR (set union).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the two filters differ in
    /// length, hash count, or hasher seeds.
    pub fn merge(&mut self, other: &Self) -> Result<(), Error> {
        self.check_compatible(other.bits.len(), other.hashes, other.hasher)?;
        self.bits.or_assign(&other.bits);
        Ok(())
    }

    /// Length of the bit vector (the paper's `m`).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions (the paper's `k`).
    #[must_use]
    pub fn hash_count(&self) -> usize {
        self.hashes
    }

    /// Number of set bits.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.bits.count_ones()
    }

    /// Fill ratio: set bits over total bits (Section III, Eq. 3).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Whether no key has been inserted (no bit set).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.all_zero()
    }

    /// Resets the filter to empty.
    pub fn reset(&mut self) {
        self.bits.reset();
    }

    /// Estimates the number of distinct keys in the filter by inverting
    /// the fill-ratio formula (Eq. 3): `n ≈ -(m/k)·ln(1 - FR)`.
    ///
    /// Returns `f64::INFINITY` when the filter is saturated (all bits
    /// set).
    #[must_use]
    pub fn estimate_keys(&self) -> f64 {
        math::keys_from_fill_ratio(self.bits.len(), self.hashes, self.fill_ratio())
    }

    /// The theoretical false-positive rate for the *current* number of
    /// set bits: the probability that a random absent key hashes only
    /// to set bits, `FR^k`.
    #[must_use]
    pub fn current_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.hashes as i32)
    }

    /// Read-only view of the underlying bits.
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// The hasher used by this filter.
    #[must_use]
    pub fn hasher(&self) -> KeyHasher {
        self.hasher
    }

    pub(crate) fn from_parts(bits: BitVec, hashes: usize, hasher: KeyHasher) -> Self {
        Self {
            bits,
            hashes,
            hasher,
        }
    }

    pub(crate) fn check_compatible(
        &self,
        bits: usize,
        hashes: usize,
        hasher: KeyHasher,
    ) -> Result<(), Error> {
        if self.bits.len() != bits || self.hashes != hashes || self.hasher != hasher {
            return Err(Error::ParamMismatch {
                ours: (self.bits.len(), self.hashes),
                theirs: (bits, hashes),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter() -> BloomFilter {
        BloomFilter::new(256, 4)
    }

    #[test]
    fn no_false_negatives() {
        let mut f = filter();
        let keys: Vec<String> = (0..30).map(|i| format!("key-{i}")).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn empty_contains_nothing() {
        let f = filter();
        assert!(!f.contains("anything"));
        assert!(f.is_empty());
        assert_eq!(f.set_bits(), 0);
    }

    #[test]
    fn insert_reports_prior_membership() {
        let mut f = filter();
        assert!(!f.insert("a"));
        assert!(f.insert("a"));
    }

    #[test]
    fn merge_is_union() {
        let mut a = filter();
        let mut b = filter();
        a.insert("left");
        b.insert("right");
        a.merge(&b).unwrap();
        assert!(a.contains("left"));
        assert!(a.contains("right"));
    }

    #[test]
    fn merge_mismatched_params_fails() {
        let mut a = BloomFilter::new(256, 4);
        let b = BloomFilter::new(128, 4);
        let c = BloomFilter::new(256, 2);
        assert!(matches!(a.merge(&b), Err(Error::ParamMismatch { .. })));
        assert!(matches!(a.merge(&c), Err(Error::ParamMismatch { .. })));
    }

    #[test]
    fn merge_mismatched_hasher_fails() {
        let mut a = BloomFilter::new(256, 4);
        let b = BloomFilter::with_hasher(256, 4, KeyHasher::with_seeds(1, 2)).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn fill_ratio_grows_with_keys() {
        let mut f = filter();
        let mut last = 0.0;
        for i in 0..20 {
            f.insert(format!("grow-{i}"));
            let fr = f.fill_ratio();
            assert!(fr >= last);
            last = fr;
        }
        assert!(last > 0.0 && last < 1.0);
    }

    #[test]
    fn paper_setting_38_keys() {
        // Section VII-A: 256 bits, 4 hashes, 38 keys => worst-case FPR
        // about 0.04 in theory. The empirical structure should be close
        // to the analytic prediction.
        let mut f = filter();
        for i in 0..38 {
            f.insert(format!("trend-{i}"));
        }
        let expected_bits = math::expected_set_bits(256, 4, 38.0);
        let got = f.set_bits() as f64;
        assert!(
            (got - expected_bits).abs() / expected_bits < 0.15,
            "set bits {got} vs expected {expected_bits}"
        );
    }

    #[test]
    fn empirical_fpr_matches_eq1() {
        let mut f = filter();
        for i in 0..38 {
            f.insert(format!("member-{i}"));
        }
        let trials = 20_000;
        let fp = (0..trials)
            .filter(|i| f.contains(format!("absent-{i}")))
            .count();
        let empirical = fp as f64 / f64::from(trials);
        let theory = math::false_positive_rate(256, 4, 38.0);
        assert!(
            (empirical - theory).abs() < 0.03,
            "empirical {empirical} vs theory {theory}"
        );
    }

    #[test]
    fn estimate_keys_tracks_reality() {
        let mut f = BloomFilter::new(1024, 4);
        for i in 0..50 {
            f.insert(format!("est-{i}"));
        }
        let est = f.estimate_keys();
        assert!((est - 50.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    fn from_keys_builder() {
        let f = BloomFilter::from_keys(256, 4, ["a", "b", "c"]);
        assert!(f.contains("a") && f.contains("b") && f.contains("c"));
    }

    #[test]
    fn reset_empties() {
        let mut f = filter();
        f.insert("x");
        f.reset();
        assert!(f.is_empty());
        assert!(!f.contains("x"));
    }

    #[test]
    fn try_new_rejects_zero_params() {
        assert!(matches!(
            BloomFilter::try_new(0, 4),
            Err(Error::InvalidParams { .. })
        ));
        assert!(matches!(
            BloomFilter::try_new(256, 0),
            Err(Error::InvalidParams { .. })
        ));
    }

    #[test]
    fn current_fpr_bounds() {
        let mut f = filter();
        assert_eq!(f.current_fpr(), 0.0);
        for i in 0..38 {
            f.insert(format!("fpr-{i}"));
        }
        let fpr = f.current_fpr();
        assert!(fpr > 0.0 && fpr < 0.1, "fpr {fpr}");
    }
}
