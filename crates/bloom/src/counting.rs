//! The counting Bloom filter (CBF) of Fan et al., "Summary Cache"
//! (IEEE/ACM ToN 2000), cited as the TCBF's ancestor in Section III.

use crate::bloom::BloomFilter;
use crate::error::Error;
use crate::hash::KeyHasher;

/// A counting Bloom filter: a Bloom filter whose bits carry a counter of
/// how many inserted keys hash to them, enabling deletion.
///
/// Unlike the [`Tcbf`](crate::Tcbf), whose counters encode *recency*,
/// a CBF's counters encode *multiplicity*: inserting a key increments
/// its `k` counters, deleting decrements them, and a bit is considered
/// set while its counter is non-zero.
///
/// Counters saturate at [`u8::MAX`]; a saturated counter is never
/// decremented (the classic "stuck counter" behavior that keeps
/// deletions safe — it can only cause false positives, never false
/// negatives).
///
/// # Examples
///
/// ```
/// use bsub_bloom::CountingBloomFilter;
///
/// let mut f = CountingBloomFilter::new(256, 4);
/// f.insert("Phillies");
/// assert!(f.contains("Phillies"));
/// f.remove("Phillies");
/// assert!(!f.contains("Phillies"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    hashes: usize,
    hasher: KeyHasher,
}

impl CountingBloomFilter {
    /// Creates an empty CBF of `bits` counters and `hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn new(bits: usize, hashes: usize) -> Self {
        assert!(bits > 0, "bit-vector length must be positive");
        assert!(hashes > 0, "hash count must be positive");
        Self {
            counters: vec![0; bits],
            hashes,
            hasher: KeyHasher::default(),
        }
    }

    /// Inserts a key, incrementing its counters (saturating).
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) {
        for pos in self
            .hasher
            .positions(key.as_ref(), self.hashes, self.counters.len())
        {
            self.counters[pos] = self.counters[pos].saturating_add(1);
        }
    }

    /// Removes one occurrence of a key, decrementing its counters.
    ///
    /// Returns `false` (and changes nothing) if the key does not test as
    /// present — decrementing counters of an absent key could introduce
    /// false negatives for other keys.
    ///
    /// Saturated counters are left untouched.
    pub fn remove<K: AsRef<[u8]>>(&mut self, key: K) -> bool {
        let key = key.as_ref();
        if !self.contains(key) {
            return false;
        }
        for pos in self.hasher.positions(key, self.hashes, self.counters.len()) {
            let c = &mut self.counters[pos];
            if *c != u8::MAX {
                *c -= 1;
            }
        }
        true
    }

    /// Probabilistic membership query.
    #[must_use]
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        self.hasher
            .positions(key.as_ref(), self.hashes, self.counters.len())
            .all(|pos| self.counters[pos] > 0)
    }

    /// The count-min estimate of a key's multiplicity: the minimum of
    /// its `k` counters. Zero means the key is (definitely) absent.
    #[must_use]
    pub fn count<K: AsRef<[u8]>>(&self, key: K) -> u8 {
        self.hasher
            .positions(key.as_ref(), self.hashes, self.counters.len())
            .map(|pos| self.counters[pos])
            .min()
            .unwrap_or(0)
    }

    /// Merges `other` into `self` by adding counters (saturating), the
    /// multiset-union analogue of Bloom-filter OR.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if parameters differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), Error> {
        if self.counters.len() != other.counters.len()
            || self.hashes != other.hashes
            || self.hasher != other.hasher
        {
            return Err(Error::ParamMismatch {
                ours: (self.counters.len(), self.hashes),
                theirs: (other.counters.len(), other.hashes),
            });
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        Ok(())
    }

    /// Projects the CBF to a plain [`BloomFilter`] (counter > 0 ⇒ bit
    /// set).
    #[must_use]
    pub fn to_bloom(&self) -> BloomFilter {
        let mut bits = crate::bitvec::BitVec::new(self.counters.len());
        for (i, &c) in self.counters.iter().enumerate() {
            if c > 0 {
                bits.set(i);
            }
        }
        BloomFilter::from_parts(bits, self.hashes, self.hasher)
    }

    /// Length of the counter vector (the paper's `m`).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions (the paper's `k`).
    #[must_use]
    pub fn hash_count(&self) -> usize {
        self.hashes
    }

    /// Number of non-zero counters.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.counters.iter().filter(|&&c| c > 0).count()
    }

    /// Whether no counter is non-zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_remove_roundtrip() {
        let mut f = CountingBloomFilter::new(256, 4);
        f.insert("a");
        f.insert("b");
        assert!(f.remove("a"));
        assert!(!f.contains("a") || f.contains("b"), "b must survive");
        assert!(f.contains("b"));
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut f = CountingBloomFilter::new(256, 4);
        f.insert("present");
        let before = f.clone();
        assert!(!f.remove("definitely-absent-key-xyz"));
        assert_eq!(f, before);
    }

    #[test]
    fn duplicate_inserts_need_matching_removes() {
        let mut f = CountingBloomFilter::new(256, 4);
        f.insert("dup");
        f.insert("dup");
        assert_eq!(f.count("dup"), 2);
        assert!(f.remove("dup"));
        assert!(f.contains("dup"));
        assert!(f.remove("dup"));
        assert!(!f.contains("dup"));
    }

    #[test]
    fn count_is_min_estimate() {
        let mut f = CountingBloomFilter::new(256, 4);
        for _ in 0..5 {
            f.insert("five");
        }
        assert!(f.count("five") >= 5);
        assert_eq!(f.count("zero"), 0);
    }

    #[test]
    fn counters_saturate() {
        let mut f = CountingBloomFilter::new(64, 2);
        for _ in 0..300 {
            f.insert("sat");
        }
        assert_eq!(f.count("sat"), u8::MAX);
        // Saturated counters are not decremented.
        assert!(f.remove("sat"));
        assert_eq!(f.count("sat"), u8::MAX);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CountingBloomFilter::new(256, 4);
        let mut b = CountingBloomFilter::new(256, 4);
        a.insert("k");
        b.insert("k");
        b.insert("other");
        a.merge(&b).unwrap();
        assert_eq!(a.count("k"), 2);
        assert!(a.contains("other"));
    }

    #[test]
    fn merge_mismatch_fails() {
        let mut a = CountingBloomFilter::new(256, 4);
        let b = CountingBloomFilter::new(128, 4);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn to_bloom_preserves_membership() {
        let mut f = CountingBloomFilter::new(256, 4);
        for k in ["x", "y", "z"] {
            f.insert(k);
        }
        let b = f.to_bloom();
        for k in ["x", "y", "z"] {
            assert!(b.contains(k));
        }
        assert_eq!(b.set_bits(), f.set_bits());
    }

    #[test]
    fn empty_properties() {
        let f = CountingBloomFilter::new(32, 2);
        assert!(f.is_empty());
        assert_eq!(f.set_bits(), 0);
        assert_eq!(f.bit_len(), 32);
        assert_eq!(f.hash_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bits_panics() {
        let _ = CountingBloomFilter::new(0, 2);
    }
}
