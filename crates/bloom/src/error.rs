use std::fmt;

/// Errors produced by filter operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Two filters with different parameters (bit-vector length or hash
    /// count) were combined. Merging such filters is meaningless because
    /// the same key maps to different bit locations in each.
    ParamMismatch {
        /// `(bits, hashes)` of the receiver.
        ours: (usize, usize),
        /// `(bits, hashes)` of the argument.
        theirs: (usize, usize),
    },
    /// A key was inserted into a TCBF that has already been merged.
    ///
    /// The paper only defines insertion for never-merged filters
    /// (Section IV-A): "We can only insert a key into a filter that has
    /// never been merged before." Insert into a fresh [`Tcbf`](crate::Tcbf) and then
    /// A-merge or M-merge it instead.
    InsertAfterMerge,
    /// Invalid constructor parameter (zero bits or zero hash functions).
    InvalidParams {
        /// Human-readable description of the offending parameter.
        reason: &'static str,
    },
    /// A wire-format payload could not be decoded.
    Decode {
        /// Human-readable description of the corruption.
        reason: &'static str,
    },
    /// No allocation satisfies the requested storage bound.
    Infeasible {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ParamMismatch { ours, theirs } => write!(
                f,
                "filter parameter mismatch: ours (m={}, k={}) vs theirs (m={}, k={})",
                ours.0, ours.1, theirs.0, theirs.1
            ),
            Error::InsertAfterMerge => {
                write!(f, "cannot insert into a TCBF that has been merged")
            }
            Error::InvalidParams { reason } => write!(f, "invalid filter parameters: {reason}"),
            Error::Decode { reason } => write!(f, "wire decode failed: {reason}"),
            Error::Infeasible { reason } => write!(f, "infeasible allocation: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_param_mismatch() {
        let e = Error::ParamMismatch {
            ours: (256, 4),
            theirs: (128, 4),
        };
        let s = e.to_string();
        assert!(s.contains("m=256"));
        assert!(s.contains("m=128"));
    }

    #[test]
    fn display_insert_after_merge() {
        assert!(Error::InsertAfterMerge.to_string().contains("merged"));
    }

    #[test]
    fn display_decode() {
        let e = Error::Decode {
            reason: "truncated header",
        };
        assert!(e.to_string().contains("truncated header"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(Error::InsertAfterMerge);
    }
}
