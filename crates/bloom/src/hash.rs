//! Key hashing for Bloom filters.
//!
//! The paper requires `k` independent hash functions mapping a key to bit
//! positions in `[0, m)`. We implement the standard Kirsch–Mitzenmacher
//! *double hashing* construction: two independent 64-bit digests
//! `h1`, `h2` are derived from the key, and the `i`-th position is
//! `(h1 + i·h2) mod m`. Kirsch & Mitzenmacher (2006) showed this
//! preserves the asymptotic false-positive rate of `k` truly independent
//! hash functions.
//!
//! The base digests come from a from-scratch FNV-1a pass whose output is
//! finalized with the SplitMix64 mixer, seeded differently for the two
//! digests. No external hashing crates are used so that the
//! microbenchmarks in `bsub-bench` measure exactly the cost a B-SUB node
//! would pay.

/// Derives the `k` bit positions of a key for a filter of `m` bits.
///
/// Two [`KeyHasher`]s with the same seeds always produce the same
/// positions for the same key, so filters built by different nodes are
/// mergeable as long as they share seeds (B-SUB assumes a network-wide
/// hash configuration).
///
/// # Examples
///
/// ```
/// use bsub_bloom::KeyHasher;
///
/// let hasher = KeyHasher::default();
/// let positions: Vec<usize> = hasher.positions(b"NewMoon", 4, 256).collect();
/// assert_eq!(positions.len(), 4);
/// assert!(positions.iter().all(|&p| p < 256));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyHasher {
    seed_lo: u64,
    seed_hi: u64,
}

/// Seeds chosen arbitrarily; all B-SUB nodes must agree on them.
const DEFAULT_SEED_LO: u64 = 0x5171_04b5_1071_04b5;
const DEFAULT_SEED_HI: u64 = 0x9e37_79b9_7f4a_7c15;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl KeyHasher {
    /// Creates a hasher with the crate-default seeds.
    #[must_use]
    pub const fn new() -> Self {
        Self::with_seeds(DEFAULT_SEED_LO, DEFAULT_SEED_HI)
    }

    /// Creates a hasher with explicit seeds.
    ///
    /// Useful in tests that need adversarial or varied hash behavior.
    #[must_use]
    pub const fn with_seeds(seed_lo: u64, seed_hi: u64) -> Self {
        Self { seed_lo, seed_hi }
    }

    /// FNV-1a over `bytes`, starting from `seed` instead of the standard
    /// offset basis so that two seeded passes are independent.
    fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
        let mut h = seed ^ FNV_OFFSET;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// SplitMix64 finalizer: breaks up the weak avalanche of raw FNV.
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Returns the two base digests `(h1, h2)` for a key.
    ///
    /// `h2` is forced odd so that for power-of-two `m` the stride is
    /// coprime with `m` and the `k` probes never collapse onto a short
    /// cycle.
    #[must_use]
    pub fn digests(&self, key: &[u8]) -> (u64, u64) {
        let h1 = Self::splitmix(Self::fnv1a(self.seed_lo, key));
        let h2 = Self::splitmix(Self::fnv1a(self.seed_hi, key)) | 1;
        (h1, h2)
    }

    /// Returns an iterator over the `k` bit positions of `key` in a
    /// filter of `m` bits.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn positions(&self, key: &[u8], k: usize, m: usize) -> Positions {
        assert!(m > 0, "filter length must be positive");
        Self::positions_from_digests(self.digests(key), k, m)
    }

    /// Returns the `k` bit positions derived from pre-computed
    /// [`KeyHasher::digests`] output, for a filter of `m` bits.
    ///
    /// This is the batch-matching fast path: hash a key **once**, then
    /// derive positions for any number of filter geometries (brokers
    /// probe per-subscriber filters and tier aggregates of different
    /// `m` from the same digest pair). Identical to
    /// [`KeyHasher::positions`] when the digests came from the same
    /// hasher and key.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn positions_from_digests(digests: (u64, u64), k: usize, m: usize) -> Positions {
        assert!(m > 0, "filter length must be positive");
        Positions {
            h1: digests.0,
            h2: digests.1,
            m: m as u64,
            i: 0,
            k,
        }
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over the bit positions of a key, produced by
/// [`KeyHasher::positions`].
#[derive(Debug, Clone)]
pub struct Positions {
    h1: u64,
    h2: u64,
    m: u64,
    i: usize,
    k: usize,
}

impl Iterator for Positions {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.i >= self.k {
            return None;
        }
        let pos = self.h1.wrapping_add(self.h2.wrapping_mul(self.i as u64)) % self.m;
        self.i += 1;
        Some(pos as usize)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.k - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Positions {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_key() {
        let h = KeyHasher::default();
        let a: Vec<_> = h.positions(b"Phillies", 4, 256).collect();
        let b: Vec<_> = h.positions(b"Phillies", 4, 256).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let h = KeyHasher::default();
        let a: Vec<_> = h.positions(b"Phillies", 4, 256).collect();
        let b: Vec<_> = h.positions(b"NewMoon", 4, 256).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = KeyHasher::default().positions(b"key", 4, 256).collect();
        let b: Vec<_> = KeyHasher::with_seeds(1, 2)
            .positions(b"key", 4, 256)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn positions_in_range() {
        let h = KeyHasher::default();
        for key in ["a", "bb", "ccc", "", "Thanksgiving", "Michael Jackson"] {
            for &m in &[1usize, 2, 7, 64, 256, 1023] {
                for pos in h.positions(key.as_bytes(), 8, m) {
                    assert!(pos < m, "key={key} m={m} pos={pos}");
                }
            }
        }
    }

    #[test]
    fn positions_from_digests_match_keyed_positions() {
        let h = KeyHasher::default();
        for key in ["a", "", "NewMoon", "Thanksgiving"] {
            let digests = h.digests(key.as_bytes());
            for &m in &[7usize, 64, 256, 4096] {
                let direct: Vec<_> = h.positions(key.as_bytes(), 4, m).collect();
                let derived: Vec<_> = KeyHasher::positions_from_digests(digests, 4, m).collect();
                assert_eq!(direct, derived, "key={key} m={m}");
            }
        }
    }

    #[test]
    fn exact_size_iterator() {
        let h = KeyHasher::default();
        let it = h.positions(b"x", 5, 64);
        assert_eq!(it.len(), 5);
        assert_eq!(it.count(), 5);
    }

    #[test]
    fn empty_key_is_valid() {
        let h = KeyHasher::default();
        assert_eq!(h.positions(b"", 3, 128).count(), 3);
    }

    #[test]
    fn zero_k_yields_nothing() {
        let h = KeyHasher::default();
        assert_eq!(h.positions(b"x", 0, 128).count(), 0);
    }

    #[test]
    #[should_panic(expected = "filter length must be positive")]
    fn zero_m_panics() {
        let h = KeyHasher::default();
        let _ = h.positions(b"x", 1, 0);
    }

    #[test]
    fn stride_is_odd() {
        let h = KeyHasher::default();
        for key in ["a", "b", "c", "d", "e"] {
            let (_, h2) = h.digests(key.as_bytes());
            assert_eq!(h2 & 1, 1);
        }
    }

    /// Sanity check that the positions spread roughly uniformly: with
    /// 4096 keys × 4 probes into 256 bits, every bit should be hit.
    #[test]
    fn positions_cover_all_bits() {
        let h = KeyHasher::default();
        let mut seen = HashSet::new();
        for i in 0..4096 {
            let key = format!("key-{i}");
            seen.extend(h.positions(key.as_bytes(), 4, 256));
        }
        assert_eq!(seen.len(), 256);
    }

    /// Chi-squared-ish uniformity smoke test: no bit should receive more
    /// than 3x or less than 1/3x the expected number of probes.
    #[test]
    fn positions_roughly_uniform() {
        let h = KeyHasher::default();
        let m = 64;
        let mut counts = vec![0u32; m];
        let trials = 20_000;
        for i in 0..trials {
            let key = format!("uniform-{i}");
            for p in h.positions(key.as_bytes(), 2, m) {
                counts[p] += 1;
            }
        }
        let expected = (trials * 2 / m) as f64;
        for (bit, &c) in counts.iter().enumerate() {
            let ratio = f64::from(c) / expected;
            assert!(
                (0.33..3.0).contains(&ratio),
                "bit {bit} count {c} vs expected {expected}"
            );
        }
    }
}
