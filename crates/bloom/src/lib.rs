//! Bloom-filter substrate for B-SUB, including the paper's core data
//! structure: the **Temporal Counting Bloom Filter (TCBF)**.
//!
//! This crate implements, from scratch:
//!
//! - [`BloomFilter`] — the classic Bloom filter (Bloom, 1970) with
//!   insertion, probabilistic membership queries, and union merging.
//! - [`CountingBloomFilter`] — the counting Bloom filter (Fan et al.,
//!   "Summary Cache", 2000) which supports deletion.
//! - [`Tcbf`] — the Temporal Counting Bloom Filter of the B-SUB paper
//!   (Zhao & Wu, ICDCS 2010): counters are set to an initial value on
//!   insertion, combined with *A-merge* (additive) or *M-merge*
//!   (maximum), and *decayed* over time so that stale entries expire.
//!   It supports *existential* queries (classic membership) and
//!   *preferential* queries (ranking two filters as carriers of a key).
//!   Decay is recorded lazily as a per-filter epoch offset and
//!   materialized on read/merge, so it costs O(1) per call.
//! - [`PackedTcbf`] — the scale-tier TCBF: sixteen 4-bit counters per
//!   `u64` word with SWAR merge kernels (see [`packed`]), for
//!   million-node deployments where `C ≤ 15` bounds every counter.
//! - [`math`] — closed-form analysis from Sections III and VI of the
//!   paper: false-positive rate, fill ratio, the expected minimum of
//!   binomially distributed counter increments (Eq. 4), the decaying
//!   factor formula (Eq. 5), joint FPR of several filters (Eq. 7), and
//!   the memory model of the compressed wire format (Eq. 8).
//! - [`wire`] — the compressed encoding of Section VI-C: set-bit
//!   locations packed at ⌈log₂ m⌉ bits each, with full, shared, or
//!   ripped counters.
//! - [`allocation`] — the dynamic multi-filter allocation strategy of
//!   Section VI-D, including the binary search for the optimal filter
//!   count under a storage bound (Eq. 9–10).
//!
//! # Quickstart
//!
//! ```
//! use bsub_bloom::Tcbf;
//!
//! let mut interests = Tcbf::new(256, 4, 50);
//! interests.insert("NewMoon")?;
//! assert!(interests.contains("NewMoon"));
//! assert!(!interests.contains("openwebawards"));
//!
//! // Time passes: decay the counters. After 50 decrements the key
//! // expires, which is how B-SUB forgets interests of consumers a
//! // broker no longer meets.
//! interests.decay(50);
//! assert!(!interests.contains("NewMoon"));
//! # Ok::<(), bsub_bloom::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod allocation;
mod bitvec;
mod bloom;
mod counting;
mod error;
pub mod hash;
pub mod math;
pub mod packed;
pub mod rng;
mod tcbf;
pub mod wire;

pub use crate::allocation::{AllocationPlan, TcbfPool};
pub use crate::bitvec::BitVec;
pub use crate::bloom::BloomFilter;
pub use crate::counting::CountingBloomFilter;
pub use crate::error::Error;
pub use crate::hash::KeyHasher;
pub use crate::packed::PackedTcbf;
pub use crate::rng::SplitMix64;
pub use crate::tcbf::{Decayer, Preference, SparseTcbf, Tcbf};
