//! Closed-form analysis of Bloom filters and the TCBF, following
//! Sections III and VI of the B-SUB paper.
//!
//! Equation numbers refer to the paper:
//!
//! - Eq. 1 — [`false_positive_rate`]
//! - Eq. 2 — [`expected_set_bits`]
//! - Eq. 3 — [`fill_ratio`] (and its inverse, [`keys_from_fill_ratio`])
//! - Eq. 4 — [`expected_min_increments`]
//! - Eq. 5 — [`decaying_factor`]
//! - Eq. 6 — [`expected_unique_keys`]
//! - Eq. 7 — [`joint_false_positive_rate`]
//! - Eq. 8 — [`wire`] provides the per-filter memory model; see
//!   [`crate::allocation`] for the Eq. 9–10 optimizer built on it.
//!
//! [`wire`]: crate::wire

/// Eq. 1 — false positive rate of a Bloom filter of `m` bits and `k`
/// hash functions holding `n` keys: `(1 - e^{-kn/m})^k`.
///
/// # Examples
///
/// The paper's Section VII-A setting — 256 bits, 4 hashes, 38 keys —
/// yields the quoted worst-case FPR of about 0.04:
///
/// ```
/// let fpr = bsub_bloom::math::false_positive_rate(256, 4, 38.0);
/// assert!((fpr - 0.04).abs() < 0.005);
/// ```
///
/// # Panics
///
/// Panics if `m == 0` or `k == 0`, or if `n` is negative or not finite.
#[must_use]
pub fn false_positive_rate(m: usize, k: usize, n: f64) -> f64 {
    fill_ratio(m, k, n).powi(k as i32)
}

/// Eq. 2 — expected number of set bits after inserting `n` keys:
/// `m(1 - e^{-kn/m})`.
///
/// # Panics
///
/// Panics if `m == 0` or `k == 0`, or if `n` is negative or not finite.
#[must_use]
pub fn expected_set_bits(m: usize, k: usize, n: f64) -> f64 {
    m as f64 * fill_ratio(m, k, n)
}

/// Eq. 3 — expected fill ratio (set bits over `m`): `1 - e^{-kn/m}`.
///
/// # Panics
///
/// Panics if `m == 0` or `k == 0`, or if `n` is negative or not finite.
#[must_use]
pub fn fill_ratio(m: usize, k: usize, n: f64) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(k > 0, "k must be positive");
    assert!(
        n >= 0.0 && n.is_finite(),
        "n must be finite and non-negative"
    );
    1.0 - (-(k as f64) * n / m as f64).exp()
}

/// Inverse of Eq. 3 — estimates the key count from an observed fill
/// ratio: `n ≈ -(m/k)·ln(1 - FR)`.
///
/// Returns `f64::INFINITY` for `fr >= 1` (a saturated filter carries no
/// information about its cardinality).
///
/// # Panics
///
/// Panics if `m == 0` or `k == 0`, or if `fr` is outside `[0, 1]`.
#[must_use]
pub fn keys_from_fill_ratio(m: usize, k: usize, fr: f64) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(k > 0, "k must be positive");
    assert!((0.0..=1.0).contains(&fr), "fill ratio must be in [0, 1]");
    if fr >= 1.0 {
        return f64::INFINITY;
    }
    -(m as f64 / k as f64) * (1.0 - fr).ln()
}

/// Binomial probability mass function `P(X = x)` for
/// `X ~ Binomial(n, p)`, computed in log space for stability at the
/// trace scales the DF analysis needs (`n` in the hundreds).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binomial_pmf(x: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if x > n {
        return 0.0;
    }
    if p == 0.0 {
        return if x == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if x == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, x) + x as f64 * p.ln() + (n - x) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Binomial cumulative distribution function `P(X <= x)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binomial_cdf(x: u64, n: u64, p: f64) -> f64 {
    (0..=x.min(n))
        .map(|i| binomial_pmf(i, n, p))
        .sum::<f64>()
        .min(1.0)
}

fn ln_choose(n: u64, x: u64) -> f64 {
    ln_factorial(n) - ln_factorial(x) - ln_factorial(n - x)
}

/// `ln(n!)` via Stirling's series for large `n`, exact summation below.
fn ln_factorial(n: u64) -> f64 {
    if n < 32 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let n = n as f64;
        // Stirling with 1/(12n) correction: plenty for probabilities.
        n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
    }
}

/// Eq. 4 — expected value of the **minimum** of the `k` accidental
/// counter-increment counts of a key's bits.
///
/// Each of the key's `k` bits is accidentally hit by each of the `ncol`
/// other keys collected in the delay window with probability
/// `p = k/m`; the number of hits per bit is `Binomial(ncol, p)`, and a
/// key survives decay only as long as its *minimum* counter does, so
/// the quantity of interest is `E[min of k iid binomials]`, computed as
/// `Σ_{c=1..ncol} c · ((1 - F(c-1))^k - (1 - F(c))^k)`.
///
/// # Panics
///
/// Panics if `k == 0` or `m == 0`.
#[must_use]
pub fn expected_min_increments(ncol: u64, m: usize, k: usize) -> f64 {
    assert!(m > 0, "m must be positive");
    assert!(k > 0, "k must be positive");
    let p = (k as f64 / m as f64).min(1.0);
    let mut expectation = 0.0;
    let mut surv_prev = 1.0; // (1 - F(-1))^k = 1
    for c in 0..=ncol {
        let surv = (1.0 - binomial_cdf(c, ncol, p)).max(0.0).powi(k as i32);
        // P(min == c) = surv_prev - surv   (survival of min beyond c-1 vs c)
        expectation += c as f64 * (surv_prev - surv);
        surv_prev = surv;
        if surv < 1e-12 {
            break;
        }
    }
    expectation
}

/// Eq. 5 — the decaying factor that removes an interest `D` time units
/// after its last insertion, accounting for accidental increments:
///
/// `DF = C · (1 + E[min increments]) / D + Δ`
///
/// where `C` is the initial counter value, `E[min]` comes from Eq. 4,
/// and `Δ` is a small safety constant for the effects Eq. 4 ignores
/// (M-merge inflation).
///
/// The unit of the returned DF matches the unit of `delay_limit` (if
/// `delay_limit` is in minutes the DF is per minute).
///
/// # Panics
///
/// Panics if `delay_limit <= 0` or `initial == 0`.
#[must_use]
pub fn decaying_factor(initial: u32, expected_min: f64, delay_limit: f64, delta: f64) -> f64 {
    assert!(delay_limit > 0.0, "delay limit must be positive");
    assert!(initial > 0, "initial counter value must be positive");
    f64::from(initial) * (1.0 + expected_min) / delay_limit + delta
}

/// Eq. 6 — expected number of **unique** interests among `ncol` keys
/// collected from contacted nodes, when each producer holds `kbar`
/// keys drawn from a universe of `total_keys`:
///
/// `ℕᵤ = ℕ · (1 - (1 - 1/K)^{ℕ - k̄})`
///
/// (as printed in the paper; it discounts duplicated interests).
///
/// # Panics
///
/// Panics if `total_keys == 0`.
#[must_use]
pub fn expected_unique_keys(ncol: f64, kbar: f64, total_keys: u64) -> f64 {
    assert!(total_keys > 0, "key universe must be non-empty");
    let exponent = (ncol - kbar).max(0.0);
    ncol * (1.0 - (1.0 - 1.0 / total_keys as f64).powf(exponent))
}

/// The FPR-optimal hash count for a filter of `m` bits holding `n`
/// keys: `k* = (m/n)·ln 2` (standard Bloom-filter result; the paper's
/// m = 256, k = 4 is near-optimal for its ≈38–45-key operating
/// point).
///
/// Returns at least 1. Not an equation in the paper, but the design
/// rationale behind its parameter choice.
///
/// # Panics
///
/// Panics if `m == 0` or `n` is not positive and finite.
#[must_use]
pub fn optimal_hash_count(m: usize, n: f64) -> usize {
    assert!(m > 0, "m must be positive");
    assert!(n > 0.0 && n.is_finite(), "n must be positive and finite");
    ((m as f64 / n) * std::f64::consts::LN_2).round().max(1.0) as usize
}

/// Eq. 7 — joint false positive rate of `h` filters each holding `nᵢ`
/// keys: `1 - Π (1 - (1 - e^{-k nᵢ / m})^k)`.
///
/// # Panics
///
/// Panics if `m == 0` or `k == 0`, or any `nᵢ` is negative/not finite.
#[must_use]
pub fn joint_false_positive_rate(m: usize, k: usize, keys_per_filter: &[f64]) -> f64 {
    let correct: f64 = keys_per_filter
        .iter()
        .map(|&n| 1.0 - false_positive_rate(m, k, n))
        .product();
    1.0 - correct
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn eq1_paper_worst_case() {
        // Section VII-A: m=256, k=4, n=38 ⇒ FPR ≈ 0.04.
        let fpr = false_positive_rate(256, 4, 38.0);
        assert!((0.035..0.045).contains(&fpr), "fpr = {fpr}");
    }

    #[test]
    fn eq1_monotone_in_n() {
        let mut last = 0.0;
        for n in 0..100 {
            let fpr = false_positive_rate(256, 4, f64::from(n));
            assert!(fpr >= last);
            last = fpr;
        }
        assert!(last < 1.0);
    }

    #[test]
    fn eq1_empty_filter_never_false_positive() {
        assert!(false_positive_rate(256, 4, 0.0).abs() < EPS);
    }

    #[test]
    fn eq2_eq3_consistent() {
        for &(m, k, n) in &[(256usize, 4usize, 38.0f64), (1024, 6, 100.0), (64, 2, 5.0)] {
            let bits = expected_set_bits(m, k, n);
            let fr = fill_ratio(m, k, n);
            assert!((bits / m as f64 - fr).abs() < EPS);
            assert!(bits >= 0.0 && bits <= m as f64);
        }
    }

    #[test]
    fn eq3_inverse_roundtrip() {
        for &n in &[1.0f64, 10.0, 38.0, 100.0] {
            let fr = fill_ratio(256, 4, n);
            let back = keys_from_fill_ratio(256, 4, fr);
            assert!((back - n).abs() < 1e-6, "n={n} back={back}");
        }
    }

    #[test]
    fn saturated_filter_estimates_infinite() {
        assert!(keys_from_fill_ratio(256, 4, 1.0).is_infinite());
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3f64), (100, 0.015625), (300, 0.5)] {
            let total: f64 = (0..=n).map(|x| binomial_pmf(x, n, p)).sum();
            assert!((total - 1.0).abs() < 1e-6, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn binomial_pmf_degenerate_p() {
        assert!((binomial_pmf(0, 10, 0.0) - 1.0).abs() < EPS);
        assert!(binomial_pmf(1, 10, 0.0).abs() < EPS);
        assert!((binomial_pmf(10, 10, 1.0) - 1.0).abs() < EPS);
        assert!(binomial_pmf(9, 10, 1.0).abs() < EPS);
    }

    #[test]
    fn binomial_pmf_known_value() {
        // Binomial(4, 0.5): P(X=2) = 6/16.
        assert!((binomial_pmf(2, 4, 0.5) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn binomial_cdf_monotone_and_bounded() {
        let n = 50;
        let p = 0.1;
        let mut last = 0.0;
        for x in 0..=n {
            let c = binomial_cdf(x, n, p);
            assert!(c >= last - EPS);
            assert!(c <= 1.0 + EPS);
            last = c;
        }
        assert!((last - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_beyond_n_is_one() {
        assert!((binomial_cdf(100, 10, 0.4) - 1.0).abs() < EPS);
    }

    #[test]
    fn eq4_zero_when_no_colliders() {
        assert!(expected_min_increments(0, 256, 4).abs() < EPS);
    }

    #[test]
    fn eq4_monotone_in_colliders() {
        let a = expected_min_increments(50, 256, 4);
        let b = expected_min_increments(200, 256, 4);
        let c = expected_min_increments(800, 256, 4);
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }

    #[test]
    fn eq4_bounded_by_mean() {
        // min of k iid binomials <= mean of one binomial = ncol * k/m.
        for &ncol in &[10u64, 100, 500] {
            let e = expected_min_increments(ncol, 256, 4);
            let mean = ncol as f64 * 4.0 / 256.0;
            assert!(e <= mean + EPS, "ncol={ncol} e={e} mean={mean}");
            assert!(e >= 0.0);
        }
    }

    #[test]
    fn eq4_k1_equals_binomial_mean() {
        // With a single hash function, min over one binomial IS the
        // binomial, so the expectation is exactly n*p.
        let n = 100u64;
        let m = 256;
        let e = expected_min_increments(n, m, 1);
        let mean = n as f64 * (1.0 / m as f64);
        assert!((e - mean).abs() < 1e-6, "e={e} mean={mean}");
    }

    #[test]
    fn eq5_paper_calibration() {
        // Section VII-B: DF = 0.138/min for D = 10 h = 600 min with
        // C = 50 implies C(1+E[min]) ≈ 82.8, i.e. E[min] ≈ 0.656 —
        // consistent with a few hundred collected keys at k/m = 4/256.
        let df = decaying_factor(50, 0.656, 600.0, 0.0);
        assert!((df - 0.138).abs() < 0.001, "df = {df}");
    }

    #[test]
    fn eq5_decreases_with_delay_limit() {
        let short = decaying_factor(50, 0.5, 60.0, 0.0);
        let long = decaying_factor(50, 0.5, 1200.0, 0.0);
        assert!(short > long);
    }

    #[test]
    fn eq5_delta_added() {
        let base = decaying_factor(50, 0.0, 600.0, 0.0);
        let plus = decaying_factor(50, 0.0, 600.0, 0.01);
        assert!((plus - base - 0.01).abs() < EPS);
    }

    #[test]
    fn eq6_no_duplicates_with_tiny_collection() {
        // Collecting exactly kbar keys from one producer: exponent 0,
        // so the duplicate discount factor vanishes.
        let u = expected_unique_keys(5.0, 5.0, 38);
        assert!(u.abs() < EPS);
    }

    #[test]
    fn eq6_bounded_by_total_collected() {
        for &n in &[10.0f64, 100.0, 1000.0] {
            let u = expected_unique_keys(n, 1.0, 38);
            assert!(u >= 0.0 && u <= n);
        }
    }

    #[test]
    fn eq7_single_filter_reduces_to_eq1() {
        let joint = joint_false_positive_rate(256, 4, &[38.0]);
        let single = false_positive_rate(256, 4, 38.0);
        assert!((joint - single).abs() < EPS);
    }

    #[test]
    fn eq7_grows_with_filter_count() {
        let one = joint_false_positive_rate(256, 4, &[10.0]);
        let two = joint_false_positive_rate(256, 4, &[10.0, 10.0]);
        let four = joint_false_positive_rate(256, 4, &[10.0; 4]);
        assert!(one < two && two < four);
        assert!(four < 1.0);
    }

    #[test]
    fn eq7_empty_collection_is_zero() {
        assert!(joint_false_positive_rate(256, 4, &[]).abs() < EPS);
    }

    #[test]
    fn splitting_keys_reduces_joint_fpr() {
        // Section VI-D's premise: h filters of n/h keys each have a
        // lower joint FPR than one filter of n keys.
        let n = 120.0;
        let whole = joint_false_positive_rate(256, 4, &[n]);
        let split = joint_false_positive_rate(256, 4, &[n / 4.0; 4]);
        assert!(split < whole, "split {split} vs whole {whole}");
    }

    #[test]
    fn optimal_k_for_paper_setting() {
        // 256 bits / 44 keys: k* = (256/44)·ln2 ≈ 4 — the paper's
        // choice of k = 4 sits at the optimum for its load.
        assert_eq!(optimal_hash_count(256, 44.0), 4);
        assert_eq!(optimal_hash_count(256, 38.0), 5);
    }

    #[test]
    fn optimal_k_at_least_one() {
        assert_eq!(optimal_hash_count(8, 1000.0), 1);
    }

    #[test]
    fn optimal_k_minimizes_eq1() {
        // k* should (approximately) minimize Eq. 1 among nearby ks.
        let (m, n) = (1024usize, 100.0f64);
        let k_star = optimal_hash_count(m, n);
        let fpr_star = false_positive_rate(m, k_star, n);
        for k in [k_star.saturating_sub(2).max(1), k_star + 2] {
            assert!(
                fpr_star <= false_positive_rate(m, k, n) + 1e-12,
                "k*={k_star} must beat k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "m must be positive")]
    fn fill_ratio_rejects_zero_m() {
        let _ = fill_ratio(0, 4, 1.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn binomial_rejects_bad_p() {
        let _ = binomial_pmf(0, 10, 1.5);
    }
}
