//! Word-packed TCBF: sixteen 4-bit counters per `u64` word, with
//! SWAR (SIMD-within-a-register) merge kernels and the same lazy
//! epoch-decay rule as [`Tcbf`].
//!
//! The protocol-path [`Tcbf`] keeps full `u32` counters because the
//! paper experiments reinforce counters far past 15 (the Fig. 6
//! A-merge ablation drives them to `u32::MAX` on purpose). At the
//! million-node scale tier, counters are bounded by construction
//! (`C ≤ 15`, saturating arithmetic), so a counter fits in a nibble
//! and a whole filter shrinks 8x: a 256-bit filter is sixteen `u64`
//! words, and every merge touches 16 words instead of 256 `u32`s.
//!
//! # Word layout
//!
//! Counter `i` lives in word `i / 16`, nibble `i % 16`, at bit offset
//! `4·(i % 16)` — little-endian nibble order within the word. All
//! kernels split a word into its even and odd nibbles spread across
//! 8-bit lanes (`x & 0x0F0F…` and `(x >> 4) & 0x0F0F…`): byte lanes
//! holding values ≤ 15 can be added, subtracted, and compared without
//! cross-lane carries, which is what makes the merges branch-free.
//!
//! The scalar reference implementations in [`reference`] define the
//! intended per-nibble semantics; `tests/packed.rs` checks the SWAR
//! kernels against them exhaustively at the 8-bit-lane level and
//! differentially (against [`Tcbf`] as well) over seeded key sets.
//!
//! [`Tcbf`]: crate::tcbf::Tcbf

use crate::error::Error;
use crate::hash::KeyHasher;
use bsub_obs::{self as obs, Counter, TimeHist};

use crate::tcbf::Preference;

/// Counters saturate at the largest nibble value.
pub const NIBBLE_MAX: u8 = 15;

/// Nibbles (counters) per `u64` word.
pub const NIBBLES_PER_WORD: usize = 16;

/// Low nibble of every byte lane.
const EVEN: u64 = 0x0F0F_0F0F_0F0F_0F0F;
/// Low bit of every byte lane.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;
/// High bit of every byte lane.
const LANE_MSB: u64 = 0x8080_8080_8080_8080;

/// Saturating add of two nibble-packed words (each nibble independently
/// clamps at 15).
#[must_use]
pub fn word_sat_add(a: u64, b: u64) -> u64 {
    let even = lane_sat((a & EVEN) + (b & EVEN));
    let odd = lane_sat(((a >> 4) & EVEN) + ((b >> 4) & EVEN));
    even | (odd << 4)
}

/// Clamps byte lanes holding nibble sums (≤ 30) back to ≤ 15: a lane
/// with bit 4 set overflowed and becomes 0xF.
fn lane_sat(sum: u64) -> u64 {
    let over = (sum >> 4) & LANE_LSB;
    // Each overflowed lane gets an 0x0F mask (0x01 * 0x0F never
    // carries between lanes).
    (sum | (over * 0x0F)) & EVEN
}

/// Per-nibble maximum of two nibble-packed words, branch-free.
#[must_use]
pub fn word_max(a: u64, b: u64) -> u64 {
    let even = lane_max(a & EVEN, b & EVEN);
    let odd = lane_max((a >> 4) & EVEN, (b >> 4) & EVEN);
    even | (odd << 4)
}

/// Byte-lane maximum for lanes holding values ≤ 15. `(a | 0x80) - b`
/// keeps the lane's high bit set exactly when `a ≥ b` (the guard bit
/// absorbs the borrow), which turns into a full-lane select mask.
fn lane_max(a: u64, b: u64) -> u64 {
    let ge = (((a | LANE_MSB) - b) >> 7) & LANE_LSB;
    let mask = ge * 0xFF;
    (a & mask) | (b & !mask)
}

/// Saturating subtract of the constant nibble `d` (≤ 15) from every
/// nibble of a packed word — the epoch-materialization kernel.
#[must_use]
pub fn word_sat_sub(a: u64, d: u8) -> u64 {
    debug_assert!(d <= NIBBLE_MAX);
    let bcast = u64::from(d) * LANE_LSB;
    let even = lane_sat_sub(a & EVEN, bcast);
    let odd = lane_sat_sub((a >> 4) & EVEN, bcast);
    even | (odd << 4)
}

/// Byte-lane saturating subtract for lanes ≤ 15: lanes where `a < b`
/// lose the guard bit and are zeroed by the select mask.
fn lane_sat_sub(a: u64, b: u64) -> u64 {
    let diff = (a | LANE_MSB) - b;
    let keep = ((diff >> 7) & LANE_LSB) * 0xFF;
    diff & keep & EVEN
}

/// A mask with bit `4·j` set for every non-zero nibble `j` — feeding
/// `count_ones` gives the word's set-bit (non-zero-counter) count.
#[must_use]
pub fn word_nonzero_nibbles(a: u64) -> u64 {
    (a | (a >> 1) | (a >> 2) | (a >> 3)) & 0x1111_1111_1111_1111
}

/// Reads nibble `i % 16` of a packed word.
#[must_use]
pub fn word_get(word: u64, i: usize) -> u8 {
    ((word >> ((i % NIBBLES_PER_WORD) * 4)) & 0xF) as u8
}

/// Returns `word` with nibble `i % 16` set to `v` (≤ 15).
#[must_use]
pub fn word_set(word: u64, i: usize, v: u8) -> u64 {
    debug_assert!(v <= NIBBLE_MAX);
    let shift = (i % NIBBLES_PER_WORD) * 4;
    (word & !(0xFu64 << shift)) | (u64::from(v) << shift)
}

/// Scalar per-nibble reference kernels: the executable specification
/// the SWAR kernels are tested against. Deliberately written as the
/// obvious loop over unpacked nibbles.
pub mod reference {
    use super::{NIBBLES_PER_WORD, NIBBLE_MAX};

    /// Unpacks a word into its 16 nibble values.
    #[must_use]
    pub fn unpack(word: u64) -> [u8; NIBBLES_PER_WORD] {
        std::array::from_fn(|i| ((word >> (i * 4)) & 0xF) as u8)
    }

    /// Packs 16 nibble values (each ≤ 15) into a word.
    #[must_use]
    pub fn pack(nibbles: [u8; NIBBLES_PER_WORD]) -> u64 {
        nibbles
            .iter()
            .enumerate()
            .fold(0u64, |w, (i, &v)| w | (u64::from(v & 0xF) << (i * 4)))
    }

    /// Per-nibble saturating add.
    #[must_use]
    pub fn sat_add(a: u64, b: u64) -> u64 {
        let (a, b) = (unpack(a), unpack(b));
        pack(std::array::from_fn(|i| (a[i] + b[i]).min(NIBBLE_MAX)))
    }

    /// Per-nibble maximum.
    #[must_use]
    pub fn max(a: u64, b: u64) -> u64 {
        let (a, b) = (unpack(a), unpack(b));
        pack(std::array::from_fn(|i| a[i].max(b[i])))
    }

    /// Per-nibble saturating subtract of a constant.
    #[must_use]
    pub fn sat_sub(a: u64, d: u8) -> u64 {
        let a = unpack(a);
        pack(std::array::from_fn(|i| a[i].saturating_sub(d)))
    }
}

/// A TCBF with 4-bit packed counters — the scale-tier representation.
///
/// Same algebra as [`Tcbf`](crate::Tcbf) (insert-at-`C`, A-merge,
/// M-merge, lazy epoch decay, existential and preferential queries)
/// with counters saturating at [`NIBBLE_MAX`] instead of `u32::MAX`,
/// and merges running word-parallel over 16 counters at a time.
///
/// # Examples
///
/// ```
/// use bsub_bloom::PackedTcbf;
///
/// let mut relay = PackedTcbf::new(256, 4, 5);
/// let consumer = PackedTcbf::from_keys(256, 4, 5, ["NewMoon"]);
/// relay.a_merge(&consumer)?;
/// relay.a_merge(&consumer)?;
/// assert_eq!(relay.min_counter("NewMoon"), 10);
/// relay.decay(10); // O(1): recorded as an epoch offset
/// assert!(!relay.contains("NewMoon"));
/// # Ok::<(), bsub_bloom::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedTcbf {
    words: Vec<u64>,
    bits: usize,
    hashes: usize,
    initial: u8,
    /// Pending lazy decay, kept `< NIBBLE_MAX`: reaching 15 wipes every
    /// nibble, so [`PackedTcbf::decay`] clears the words instead.
    epoch: u8,
    hasher: KeyHasher,
    merged: bool,
}

/// Equality on materialized counters, like [`Tcbf`](crate::Tcbf).
impl PartialEq for PackedTcbf {
    fn eq(&self, other: &Self) -> bool {
        self.bits == other.bits
            && self.hashes == other.hashes
            && self.initial == other.initial
            && self.hasher == other.hasher
            && self.merged == other.merged
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(&a, &b)| word_sat_sub(a, self.epoch) == word_sat_sub(b, other.epoch))
    }
}

impl Eq for PackedTcbf {}

impl PackedTcbf {
    /// Creates an empty packed TCBF of `bits` counters, `hashes` hash
    /// functions, and insertion value `initial` (`1..=15`).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `hashes == 0`, `initial == 0`, or
    /// `initial > 15`.
    #[must_use]
    pub fn new(bits: usize, hashes: usize, initial: u8) -> Self {
        Self::with_hasher(bits, hashes, initial, KeyHasher::default())
    }

    /// Creates an empty packed TCBF with an explicit hasher.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PackedTcbf::new`].
    #[must_use]
    pub fn with_hasher(bits: usize, hashes: usize, initial: u8, hasher: KeyHasher) -> Self {
        assert!(bits > 0, "bit-vector length must be positive");
        assert!(hashes > 0, "hash count must be positive");
        assert!(
            (1..=NIBBLE_MAX).contains(&initial),
            "initial counter must be in 1..=15"
        );
        Self {
            words: vec![0; bits.div_ceil(NIBBLES_PER_WORD)],
            bits,
            hashes,
            initial,
            epoch: 0,
            hasher,
            merged: false,
        }
    }

    /// Builds a never-merged packed TCBF containing every key in
    /// `keys`.
    #[must_use]
    pub fn from_keys<I, K>(bits: usize, hashes: usize, initial: u8, keys: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut f = Self::new(bits, hashes, initial);
        for key in keys {
            f.insert(key).expect("fresh filter accepts inserts");
        }
        f
    }

    /// Inserts a key, setting unset counters to `C` (the same
    /// Section IV-A rule as [`Tcbf::insert`](crate::Tcbf::insert)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsertAfterMerge`] if this filter has received
    /// a merge.
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) -> Result<(), Error> {
        if self.merged {
            return Err(Error::InsertAfterMerge);
        }
        obs::count(Counter::TcbfInsert, 1);
        self.flush_epoch();
        for pos in self.hasher.positions(key.as_ref(), self.hashes, self.bits) {
            let w = pos / NIBBLES_PER_WORD;
            if word_get(self.words[w], pos) == 0 {
                self.words[w] = word_set(self.words[w], pos, self.initial);
            }
        }
        Ok(())
    }

    /// Additive merge, word-parallel and saturating at 15. Folds both
    /// filters' pending epochs in the same pass.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] on differing parameters.
    pub fn a_merge(&mut self, other: &Self) -> Result<(), Error> {
        self.check_compatible(other)?;
        obs::count(Counter::TcbfAMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.merge_words(&other.words, other.epoch, word_sat_add);
        Ok(())
    }

    /// Maximum merge, word-parallel and branch-free per nibble.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] on differing parameters.
    pub fn m_merge(&mut self, other: &Self) -> Result<(), Error> {
        self.check_compatible(other)?;
        obs::count(Counter::TcbfMMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.merge_words(&other.words, other.epoch, word_max);
        Ok(())
    }

    /// A-merges raw packed words (an epoch-free source such as an
    /// arena of genuine filters), without a compatibility check — the
    /// caller guarantees the layout matches. This is the scale
    /// harness's hot path.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than this filter's word count.
    pub fn a_merge_words(&mut self, words: &[u64]) {
        obs::count(Counter::TcbfAMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.merge_words(words, 0, word_sat_add);
    }

    /// A-merges a sparse list of `(word_index, packed_word)` entries
    /// from an epoch-free source, skipping the zero words a dense
    /// merge would stream through. With B-SUB's sizing (fill ratio
    /// ≈ 11%) most words of a consumer filter are zero, so the sparse
    /// form touches ~8× fewer words — the sharded scale harness's
    /// exchange format.
    ///
    /// Like [`PackedTcbf::a_merge_words`], no compatibility check: the
    /// caller guarantees the layout matches.
    ///
    /// # Panics
    ///
    /// Panics if any `word_index` is out of range for this filter.
    pub fn a_merge_sparse(&mut self, entries: &[(u32, u64)]) {
        obs::count(Counter::TcbfAMerge, 1);
        self.flush_epoch();
        for &(w, word) in entries {
            let slot = &mut self.words[w as usize];
            *slot = word_sat_add(*slot, word);
        }
        self.merged = true;
    }

    /// The non-zero materialized words as `(word_index, packed_word)`
    /// pairs — the sparse source format for
    /// [`PackedTcbf::a_merge_sparse`].
    #[must_use]
    pub fn sparse_words(&self) -> Vec<(u32, u64)> {
        let e = self.epoch;
        self.words
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| {
                let m = word_sat_sub(w, e);
                (m != 0).then_some((i as u32, m))
            })
            .collect()
    }

    fn merge_words(&mut self, other: &[u64], other_epoch: u8, op: fn(u64, u64) -> u64) {
        let (se, oe) = (self.epoch, other_epoch);
        if se == 0 && oe == 0 {
            for (a, &b) in self.words.iter_mut().zip(other) {
                *a = op(*a, b);
            }
        } else {
            for (a, &b) in self.words.iter_mut().zip(other) {
                *a = op(word_sat_sub(*a, se), word_sat_sub(b, oe));
            }
            self.epoch = 0;
        }
        self.merged = true;
    }

    /// Lazy decay: O(1). An accumulated epoch of 15 zeroes every
    /// nibble, so the filter is cleared outright and the epoch resets.
    pub fn decay(&mut self, amount: u32) {
        if amount == 0 {
            return;
        }
        obs::count(Counter::TcbfDecay, 1);
        let _span = obs::span(TimeHist::DecayNs);
        if amount >= u32::from(NIBBLE_MAX - self.epoch) {
            self.words.fill(0);
            self.epoch = 0;
        } else {
            self.epoch += amount as u8;
        }
    }

    fn flush_epoch(&mut self) {
        if self.epoch == 0 {
            return;
        }
        let e = self.epoch;
        for w in &mut self.words {
            *w = word_sat_sub(*w, e);
        }
        self.epoch = 0;
    }

    /// Existential query (classic Bloom membership).
    #[must_use]
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        self.min_counter(key) > 0
    }

    /// Minimum materialized counter over the key's hashed bits.
    #[must_use]
    pub fn min_counter<K: AsRef<[u8]>>(&self, key: K) -> u32 {
        obs::count(Counter::TcbfQuery, 1);
        self.hasher
            .positions(key.as_ref(), self.hashes, self.bits)
            .map(|pos| word_get(self.words[pos / NIBBLES_PER_WORD], pos).saturating_sub(self.epoch))
            .min()
            .unwrap_or(0)
            .into()
    }

    /// Preferential query, with the same `Relative`/`Absolute`
    /// semantics as [`Tcbf::preference`](crate::Tcbf::preference).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] on differing parameters.
    pub fn preference<K: AsRef<[u8]>>(&self, against: &Self, key: K) -> Result<Preference, Error> {
        self.check_compatible(against)?;
        obs::count(Counter::TcbfPreference, 1);
        let _span = obs::span(TimeHist::PreferenceNs);
        let key = key.as_ref();
        let f = i64::from(self.min_counter(key));
        let g = i64::from(against.min_counter(key));
        Ok(if g == 0 {
            Preference::Absolute(f)
        } else {
            Preference::Relative(f - g)
        })
    }

    /// Length of the counter vector (the paper's `m`).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Number of hash functions (the paper's `k`).
    #[must_use]
    pub fn hash_count(&self) -> usize {
        self.hashes
    }

    /// The insertion counter value `C`.
    #[must_use]
    pub fn initial_counter(&self) -> u8 {
        self.initial
    }

    /// Number of non-zero materialized counters, counted word-parallel.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        let e = self.epoch;
        self.words
            .iter()
            .map(|&w| word_nonzero_nibbles(word_sat_sub(w, e)).count_ones() as usize)
            .sum()
    }

    /// Fill ratio: non-zero counters over total (Eq. 3).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.set_bits() as f64 / self.bits as f64
    }

    /// Whether no counter is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let e = self.epoch;
        self.words.iter().all(|&w| word_sat_sub(w, e) == 0)
    }

    /// Whether this filter has received a merge.
    #[must_use]
    pub fn is_merged(&self) -> bool {
        self.merged
    }

    /// Resets the filter to empty and never-merged.
    pub fn reset(&mut self) {
        self.words.fill(0);
        self.epoch = 0;
        self.merged = false;
    }

    /// Materialized counter values, indexed by bit position.
    #[must_use]
    pub fn counter_values(&self) -> Vec<u8> {
        (0..self.bits)
            .map(|i| word_get(self.words[i / NIBBLES_PER_WORD], i).saturating_sub(self.epoch))
            .collect()
    }

    /// The packed words with the pending epoch folded in — a valid
    /// epoch-free source for [`PackedTcbf::a_merge_words`] (e.g. when
    /// building a genuine-filter arena).
    #[must_use]
    pub fn materialized_words(&self) -> Vec<u64> {
        let e = self.epoch;
        self.words.iter().map(|&w| word_sat_sub(w, e)).collect()
    }

    /// Heap bytes held by the packed counter array.
    #[must_use]
    pub fn word_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    fn check_compatible(&self, other: &Self) -> Result<(), Error> {
        if self.bits != other.bits || self.hashes != other.hashes || self.hasher != other.hasher {
            return Err(Error::ParamMismatch {
                ours: (self.bits, self.hashes),
                theirs: (other.bits, other.hashes),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_get_set_roundtrip() {
        let mut w = 0u64;
        for i in 0..NIBBLES_PER_WORD {
            w = word_set(w, i, (i % 16) as u8);
        }
        for i in 0..NIBBLES_PER_WORD {
            assert_eq!(word_get(w, i), (i % 16) as u8);
        }
    }

    #[test]
    fn sat_add_saturates_at_15() {
        let a = reference::pack([15; 16]);
        let b = reference::pack([1; 16]);
        assert_eq!(word_sat_add(a, b), a);
        assert_eq!(word_sat_add(a, a), a);
    }

    #[test]
    fn sat_sub_floors_at_zero() {
        let a = reference::pack(std::array::from_fn(|i| i as u8));
        assert_eq!(word_sat_sub(a, 15), 0);
        assert_eq!(word_sat_sub(a, 0), a);
    }

    #[test]
    fn nonzero_nibbles_counts() {
        let w = reference::pack([0, 1, 0, 15, 0, 0, 7, 0, 0, 0, 0, 2, 0, 0, 0, 9]);
        assert_eq!(word_nonzero_nibbles(w).count_ones(), 5);
        assert_eq!(word_nonzero_nibbles(0), 0);
    }

    #[test]
    fn insert_and_query() {
        let mut f = PackedTcbf::new(256, 4, 10);
        f.insert("k").unwrap();
        assert_eq!(f.min_counter("k"), 10);
        f.insert("k").unwrap();
        assert_eq!(f.min_counter("k"), 10, "re-insert leaves counters");
    }

    #[test]
    fn merge_decay_query_cycle() {
        let mut relay = PackedTcbf::new(256, 4, 5);
        let consumer = PackedTcbf::from_keys(256, 4, 5, ["t"]);
        relay.a_merge(&consumer).unwrap();
        relay.a_merge(&consumer).unwrap();
        relay.a_merge(&consumer).unwrap();
        assert_eq!(relay.min_counter("t"), 15, "saturates at nibble max");
        relay.decay(14);
        assert!(relay.contains("t"));
        relay.decay(1);
        assert!(relay.is_empty());
        assert_eq!(relay.epoch, 0, "full decay clears instead of epoching");
    }

    #[test]
    fn insert_rejected_after_merge() {
        let mut f = PackedTcbf::new(256, 4, 5);
        f.m_merge(&PackedTcbf::from_keys(256, 4, 5, ["x"])).unwrap();
        assert_eq!(f.insert("y"), Err(Error::InsertAfterMerge));
    }

    #[test]
    fn param_mismatch_rejected() {
        let mut a = PackedTcbf::new(256, 4, 5);
        let b = PackedTcbf::new(128, 4, 5);
        assert!(matches!(a.a_merge(&b), Err(Error::ParamMismatch { .. })));
        assert!(a.preference(&b, "k").is_err());
    }

    #[test]
    #[should_panic(expected = "1..=15")]
    fn oversized_initial_rejected() {
        let _ = PackedTcbf::new(256, 4, 16);
    }

    #[test]
    fn arena_merge_matches_filter_merge() {
        let src = PackedTcbf::from_keys(256, 4, 5, ["a", "b"]);
        let mut via_filter = PackedTcbf::new(256, 4, 5);
        via_filter.a_merge(&src).unwrap();
        let mut via_words = PackedTcbf::new(256, 4, 5);
        via_words.a_merge_words(&src.materialized_words());
        assert_eq!(via_filter, via_words);
    }

    #[test]
    fn sparse_merge_matches_dense_merge() {
        let src = PackedTcbf::from_keys(256, 4, 5, ["a", "b", "c"]);
        let mut dense = PackedTcbf::from_keys(256, 4, 7, ["x"]);
        let mut sparse = dense.clone();
        dense.a_merge_words(&src.materialized_words());
        sparse.a_merge_sparse(&src.sparse_words());
        assert_eq!(dense, sparse);
        assert!(sparse.is_merged());
    }

    #[test]
    fn sparse_merge_folds_pending_epoch() {
        let src = PackedTcbf::from_keys(256, 4, 5, ["s"]);
        let mut decayed = PackedTcbf::from_keys(256, 4, 9, ["s"]);
        decayed.decay(3); // pending epoch, not yet materialized
        let mut dense = decayed.clone();
        dense.a_merge_words(&src.materialized_words());
        decayed.a_merge_sparse(&src.sparse_words());
        assert_eq!(decayed, dense);
        assert_eq!(decayed.min_counter("s"), 11, "9 - 3 + 5");
    }

    #[test]
    fn sparse_words_skips_zero_words() {
        let f = PackedTcbf::from_keys(8192, 4, 5, ["only-key"]);
        let sparse = f.sparse_words();
        assert!(sparse.len() <= 4, "one key sets at most k words");
        assert!(sparse.iter().all(|&(_, w)| w != 0));
        let mut rebuilt = PackedTcbf::new(8192, 4, 5);
        rebuilt.a_merge_sparse(&sparse);
        assert_eq!(rebuilt.min_counter("only-key"), 5);
    }

    #[test]
    fn non_multiple_of_16_bits() {
        let mut f = PackedTcbf::new(300, 3, 7);
        f.insert("odd").unwrap();
        assert!(f.contains("odd"));
        assert_eq!(f.counter_values().len(), 300);
        assert_eq!(f.word_bytes(), 19 * 8);
    }
}
