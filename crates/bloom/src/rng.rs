//! A tiny deterministic PRNG shared by the whole workspace.
//!
//! The workspace builds fully offline, so instead of depending on the
//! `rand` crate every randomized component (synthetic traces, workload
//! generation, property-style tests, per-run sweep seeds) draws from
//! this SplitMix64 generator. SplitMix64 (Steele, Lea & Flood, 2014) is
//! the same finalizer already used by [`crate::hash::KeyHasher`]: a
//! 64-bit counter stepped by the golden-ratio increment and scrambled
//! by two multiply-xor-shift rounds. It passes BigCrush, is trivially
//! seedable from any `u64`, and — crucially for the experiment engine —
//! makes *seed derivation* explicit: [`SplitMix64::mix`] maps a
//! `(master, stream)` pair to an independent child seed, so parallel
//! sweep runs get bit-identical randomness regardless of scheduling.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use bsub_bloom::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The SplitMix64 output scramble (same constants as
/// [`crate::hash::KeyHasher`]'s finalizer).
const fn scramble(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child seed from a master seed and a
    /// stream index — the experiment engine's per-run seed rule.
    ///
    /// Distinct `(master, stream)` pairs land in distinct SplitMix64
    /// streams, so run *k* of a sweep draws the same randomness whether
    /// it executes first, last, or on another thread.
    #[must_use]
    pub const fn mix(master: u64, stream: u64) -> u64 {
        scramble(
            master
                .wrapping_add(GOLDEN_GAMMA)
                .wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        scramble(self.state)
    }

    /// Next uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next uniform `f64` in the open interval `(0, 1]` — safe to pass
    /// to `ln()` when inverting an exponential CDF.
    pub fn next_unit_positive(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift
    /// reduction (bias below `bound / 2^64`, negligible here).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 seeded with 0 (Vigna's reference
        // implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn unit_positive_never_zero() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            let u = r.next_unit_positive();
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(5);
        for bound in [1u64, 2, 3, 7, 140, 1 << 40] {
            for _ in 0..1000 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = SplitMix64::new(6);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(8);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            match r.range_u64(1, 140) {
                1 => lo_seen = true,
                140 => hi_seen = true,
                v => assert!((1..=140).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn mix_separates_streams() {
        let a = SplitMix64::mix(99, 0);
        let b = SplitMix64::mix(99, 1);
        let c = SplitMix64::mix(100, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And it is a pure function of its inputs.
        assert_eq!(a, SplitMix64::mix(99, 0));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
