//! The Temporal Counting Bloom Filter (Section IV of the paper).

use crate::bitvec::BitVec;
use crate::bloom::BloomFilter;
use crate::error::Error;
use crate::hash::KeyHasher;
use bsub_obs::{self as obs, Counter, TimeHist};

/// The Temporal Counting Bloom Filter (TCBF), the B-SUB paper's core
/// data structure.
///
/// Like a counting Bloom filter, a TCBF associates a counter with each
/// bit — but the counters do **not** count key multiplicity. Instead
/// (Section IV-A):
///
/// - **Insertion** sets the counters of the key's hashed bits to a
///   fixed initial value `C` ([`Tcbf::initial_counter`]). Counters that
///   are already set are left unchanged, so a freshly built filter
///   always has uniform counters.
/// - **A-merge** (additive merge, [`Tcbf::a_merge`]) ORs the bit
///   vectors and *adds* the counters. B-SUB uses it when a consumer
///   reports its interests to a broker: repeated meetings *reinforce*
///   the interests' counters.
/// - **M-merge** (maximum merge, [`Tcbf::m_merge`]) ORs the bit vectors
///   and takes the counter-wise *maximum*. B-SUB uses it between
///   brokers, which prevents the "bogus counter" feedback loop of
///   Fig. 6 (two brokers meeting frequently would otherwise inflate
///   each other's counters without any consumer nearby).
/// - **Decaying** ([`Tcbf::decay`]) subtracts from every counter; a bit
///   whose counter reaches zero is reset. This is the *temporal
///   deletion* that expires interests of consumers a broker no longer
///   meets. The subtraction rate is the paper's *decaying factor* (DF);
///   see [`Decayer`] for fractional-rate bookkeeping.
/// - An **existential query** ([`Tcbf::contains`]) is classic Bloom
///   membership; a **preferential query** ([`Tcbf::preference`])
///   compares the min-counters of a key in two filters to decide which
///   filter's owner is the better carrier for that key.
///
/// Insertion is only defined for filters that have never been merged
/// (the paper's rule); to add keys to a merged filter, insert them into
/// a fresh TCBF and merge the two.
///
/// # Lazy epoch decay
///
/// [`Tcbf::decay`] does **not** walk the counter array. It adds the
/// amount to a per-filter *epoch* offset, and every observable value is
/// materialized on read as `stored.saturating_sub(epoch)`. Because
/// saturating subtractions of accumulated amounts compose exactly
/// (`(c ∸ d₁) ∸ d₂ = c ∸ (d₁ + d₂)`), the materialized counters are
/// bit-identical to what an eager per-counter walk would produce — the
/// equivalence the property tests in `tests/properties.rs` pin down.
/// A-merges fold both filters' pending epochs into the stored counters
/// in the same single pass that combines them; M-merges only *equalize*
/// the two epochs (max commutes with a shared saturating offset, so the
/// common `min(e_self, e_other)` part stays lazy). Either way a broker
/// that meets rarely pays O(1) per decay instead of O(m) per contact.
///
/// # Examples
///
/// Reinforcement and expiry, the mechanism behind B-SUB forwarding:
///
/// ```
/// use bsub_bloom::Tcbf;
///
/// // A consumer's genuine filter.
/// let mut genuine = Tcbf::new(256, 4, 10);
/// genuine.insert("NewMoon")?;
///
/// // A broker A-merges it on every meeting.
/// let mut relay = Tcbf::new(256, 4, 10);
/// relay.a_merge(&genuine)?;
/// relay.a_merge(&genuine)?; // met twice: counter is now 20
/// assert_eq!(relay.min_counter("NewMoon"), 20);
///
/// // Decay below the reinforced level: the interest survives ...
/// relay.decay(15);
/// assert!(relay.contains("NewMoon"));
/// // ... but eventually expires.
/// relay.decay(5);
/// assert!(!relay.contains("NewMoon"));
/// # Ok::<(), bsub_bloom::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tcbf {
    /// Stored counters, *before* the pending epoch is subtracted.
    counters: Vec<u32>,
    /// Pending lazy decay: every observable counter value is
    /// `stored.saturating_sub(epoch)`. Saturating here is exact —
    /// stored values never exceed `u32::MAX`, so an epoch saturated at
    /// `u32::MAX` already wipes every counter.
    epoch: u32,
    hashes: usize,
    initial: u32,
    hasher: KeyHasher,
    merged: bool,
}

/// Equality is on *materialized* counters: a filter decayed lazily and
/// one decayed eagerly by the same amounts are the same filter.
impl PartialEq for Tcbf {
    fn eq(&self, other: &Self) -> bool {
        self.hashes == other.hashes
            && self.initial == other.initial
            && self.hasher == other.hasher
            && self.merged == other.merged
            && self.counters.len() == other.counters.len()
            && self.iter_counters().eq(other.iter_counters())
    }
}

impl Eq for Tcbf {}

impl Tcbf {
    /// Creates an empty TCBF of `bits` counters, `hashes` hash
    /// functions, and insertion counter value `initial` (the paper's
    /// `C`).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `hashes == 0`, or `initial == 0`.
    #[must_use]
    pub fn new(bits: usize, hashes: usize, initial: u32) -> Self {
        Self::with_hasher(bits, hashes, initial, KeyHasher::default())
    }

    /// Creates an empty TCBF with an explicit hasher.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `hashes == 0`, or `initial == 0`.
    #[must_use]
    pub fn with_hasher(bits: usize, hashes: usize, initial: u32, hasher: KeyHasher) -> Self {
        assert!(bits > 0, "bit-vector length must be positive");
        assert!(hashes > 0, "hash count must be positive");
        assert!(initial > 0, "initial counter value must be positive");
        Self {
            counters: vec![0; bits],
            epoch: 0,
            hashes,
            initial,
            hasher,
            merged: false,
        }
    }

    /// Builds a never-merged TCBF containing every key in `keys`.
    #[must_use]
    pub fn from_keys<I, K>(bits: usize, hashes: usize, initial: u32, keys: I) -> Self
    where
        I: IntoIterator<Item = K>,
        K: AsRef<[u8]>,
    {
        let mut f = Self::new(bits, hashes, initial);
        for key in keys {
            f.insert(key).expect("fresh filter accepts inserts");
        }
        f
    }

    /// Inserts a key: the counters of its hashed bits are set to the
    /// initial value `C`; counters that are already non-zero keep their
    /// value (Section IV-A).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InsertAfterMerge`] if this filter has been the
    /// receiver of an A-merge or M-merge. The paper only defines
    /// insertion on never-merged filters; insert into a fresh TCBF and
    /// merge it instead.
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) -> Result<(), Error> {
        if self.merged {
            return Err(Error::InsertAfterMerge);
        }
        obs::count(Counter::TcbfInsert, 1);
        // Fold any pending decay into the stored counters first, so
        // "already set" is judged on materialized values and the new
        // counters are stored exactly at `C`. Fresh filters (the only
        // insertion target in practice) have epoch 0 and skip this.
        self.flush_epoch();
        for pos in self
            .hasher
            .positions(key.as_ref(), self.hashes, self.counters.len())
        {
            if self.counters[pos] == 0 {
                self.counters[pos] = self.initial;
            }
        }
        Ok(())
    }

    /// Additive merge: bit vectors are ORed and counters are *summed*
    /// (saturating).
    ///
    /// Used for consumer → broker interest reinforcement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the filters' length, hash
    /// count, or hasher differ. (The initial counter value `C` may
    /// differ; merged counters no longer correspond to any single `C`.)
    pub fn a_merge(&mut self, other: &Self) -> Result<(), Error> {
        self.check_compatible(other)?;
        obs::count(Counter::TcbfAMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.merge_with(other, u32::saturating_add);
        Ok(())
    }

    /// Maximum merge: bit vectors are ORed and each counter becomes the
    /// *maximum* of the two.
    ///
    /// Used for broker ↔ broker relay-filter combination; prevents the
    /// bogus-counter loop of Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the filters' parameters
    /// differ.
    pub fn m_merge(&mut self, other: &Self) -> Result<(), Error> {
        self.check_compatible(other)?;
        obs::count(Counter::TcbfMMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        // Max commutes with a shared saturating offset:
        // `max(a ∸ e, b ∸ f) = max(a ∸ (e−m), b ∸ (f−m)) ∸ m` for
        // `m = min(e, f)`. So the merge only equalizes the two
        // epochs — at most ONE per-element subtraction, on the side
        // with the larger epoch — and the common part `m` stays lazy,
        // to be folded (or decayed further) later. Exact for all
        // values: only saturating subtractions are involved, and
        // those compose.
        let (se, oe) = (self.epoch, other.epoch);
        let m = se.min(oe);
        if se == oe {
            for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                *a = (*a).max(*b);
            }
        } else if se == m {
            let db = oe - m;
            for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                *a = (*a).max(b.saturating_sub(db));
            }
        } else {
            let da = se - m;
            for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                *a = a.saturating_sub(da).max(*b);
            }
        }
        self.epoch = m;
        self.merged = true;
        Ok(())
    }

    /// Additive merge against a pre-extracted sparse view: identical
    /// observable result to [`Tcbf::a_merge`] with the view's source
    /// filter, in O(set bits) instead of O(m).
    ///
    /// This is the consumer → broker fast path: a genuine filter holds
    /// a handful of interests (tens of non-zero counters out of
    /// thousands), and it never changes after construction, so the
    /// sparse view is extracted once and reused for every meeting.
    /// Zero counters are additive identities — skipping them is exact,
    /// not approximate.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the view's source filter
    /// had a different length, hash count, or hasher.
    pub fn a_merge_sparse(&mut self, other: &SparseTcbf) -> Result<(), Error> {
        if self.counters.len() != other.bits
            || self.hashes != other.hashes
            || self.hasher != other.hasher
        {
            return Err(Error::ParamMismatch {
                ours: (self.counters.len(), self.hashes),
                theirs: (other.bits, other.hashes),
            });
        }
        obs::count(Counter::TcbfAMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        // The sparse entries are already materialized. A pending epoch
        // on the receiver does NOT force an O(m) flush: storing
        // `max(a, e) + v` under unchanged epoch `e` materializes to
        // `(max(a, e) + v) ∸ e = (a ∸ e) + v` — exactly the dense
        // A-merge result — as long as the add itself cannot overflow.
        // If an entry would (counter within `v` of `u32::MAX`, unseen
        // in any committed workload), flush mid-way — entries already
        // stored as `max(a, e) + v` materialize correctly through the
        // flush — and finish with plain saturating adds, so saturation
        // lands on materialized values.
        let e = self.epoch;
        for (n, &(i, v)) in other.entries.iter().enumerate() {
            let c = &mut self.counters[i as usize];
            let s = u64::from((*c).max(e)) + u64::from(v);
            if s > u64::from(u32::MAX) {
                self.flush_epoch();
                for &(i, v) in &other.entries[n..] {
                    let c = &mut self.counters[i as usize];
                    *c = c.saturating_add(v);
                }
                self.merged = true;
                return Ok(());
            }
            *c = s as u32;
        }
        self.merged = true;
        Ok(())
    }

    /// Adopts an already-computed A-merge result by copy — see
    /// [`Tcbf::m_merge_adopt`]; addition is commutative too.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the filters' parameters
    /// differ.
    pub fn a_merge_adopt(&mut self, merged: &Self) -> Result<(), Error> {
        self.check_compatible(merged)?;
        obs::count(Counter::TcbfAMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.adopt(merged);
        Ok(())
    }

    /// Adopts an already-computed M-merge result by copy.
    ///
    /// Merging is commutative: when two brokers exchange relay filters
    /// and each merges the other's pre-contact snapshot, both sides
    /// converge on the *same* counter array, so the second side can
    /// copy the first side's merged state instead of re-running the
    /// O(m) combining pass. The caller guarantees `merged` is exactly
    /// `self_snapshot ∨ peer` for the peer snapshot `self` would have
    /// merged — i.e. neither filter changed between snapshot and
    /// merge. Counted as an M-merge in the profile: it *is* one,
    /// computed by copy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the filters' parameters
    /// differ.
    pub fn m_merge_adopt(&mut self, merged: &Self) -> Result<(), Error> {
        self.check_compatible(merged)?;
        obs::count(Counter::TcbfMMerge, 1);
        let _span = obs::span(TimeHist::MergeNs);
        self.adopt(merged);
        Ok(())
    }

    /// Becomes a copy of `merged` (counters, pending epoch, merged
    /// flag), reusing this filter's storage.
    fn adopt(&mut self, merged: &Self) {
        self.counters.copy_from_slice(&merged.counters);
        self.epoch = merged.epoch;
        self.merged = true;
    }

    /// Extracts a reusable sparse view: the materialized non-zero
    /// counters as `(bit index, value)` pairs, plus the merge-compat
    /// parameters. The view is a snapshot — it does not track later
    /// mutations of this filter — so it suits filters that are
    /// immutable after construction, like a consumer's genuine filter.
    #[must_use]
    pub fn to_sparse(&self) -> SparseTcbf {
        SparseTcbf {
            bits: self.counters.len(),
            hashes: self.hashes,
            hasher: self.hasher,
            entries: self
                .iter_counters()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(i, c)| (i as u32, c))
                .collect(),
        }
    }

    /// Shared merge loop, monomorphized per combiner so `op` inlines
    /// into a branchless, autovectorizable pass. When either side has
    /// a pending decay epoch, the fold happens *inside* the same pass
    /// (`(a ∸ e_a) op (b ∸ e_b)`) — the lazy decays cost one extra
    /// vector subtract here instead of their own O(m) walks.
    fn merge_with<F: Fn(u32, u32) -> u32>(&mut self, other: &Self, op: F) {
        let (se, oe) = (self.epoch, other.epoch);
        match (se, oe) {
            (0, 0) => {
                for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                    *a = op(*a, *b);
                }
            }
            (0, _) => {
                for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                    *a = op(*a, b.saturating_sub(oe));
                }
            }
            (_, 0) => {
                for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                    *a = op(a.saturating_sub(se), *b);
                }
            }
            _ => {
                for (a, b) in self.counters.iter_mut().zip(&other.counters) {
                    *a = op(a.saturating_sub(se), b.saturating_sub(oe));
                }
            }
        }
        self.epoch = 0;
        self.merged = true;
    }

    /// Decays the filter: every non-zero counter is decremented by
    /// `amount` (saturating); counters that reach zero reset their bit.
    ///
    /// This is the TCBF's only deletion mechanism ("temporal
    /// deletion"). Callers translate wall-clock time into an integer
    /// `amount` via the decaying factor; [`Decayer`] handles fractional
    /// DFs.
    ///
    /// Decay is *lazy*: this is an O(1) epoch bump, not a counter walk.
    /// Reads materialize `stored ∸ epoch` on the fly and merges fold
    /// the epoch into their combining pass — see the type-level docs.
    pub fn decay(&mut self, amount: u32) {
        if amount == 0 {
            return;
        }
        obs::count(Counter::TcbfDecay, 1);
        let _span = obs::span(TimeHist::DecayNs);
        self.epoch = self.epoch.saturating_add(amount);
    }

    /// Folds the pending epoch into the stored counters (making the
    /// lazy representation eager again). O(m), called only where a
    /// stored-value invariant matters (insertion).
    fn flush_epoch(&mut self) {
        if self.epoch == 0 {
            return;
        }
        let e = self.epoch;
        for c in &mut self.counters {
            *c = c.saturating_sub(e);
        }
        self.epoch = 0;
    }

    /// The materialized (epoch-adjusted) counter at bit `idx`.
    ///
    /// This is the batch-matching read path: a caller that derived a
    /// key's positions once (via [`crate::KeyHasher::digests`]) probes
    /// counters directly instead of re-hashing the key per filter.
    /// Uninstrumented, exactly like [`BloomFilter::contains`] — batch
    /// probing must not perturb the metrics of the per-key query path.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.bit_len()`.
    #[must_use]
    pub fn counter_at(&self, idx: usize) -> u32 {
        self.counters[idx].saturating_sub(self.epoch)
    }

    /// Raises the counters at `positions` to at least `value`: each
    /// becomes `max(current, value)` on materialized values.
    ///
    /// Observationally identical to M-merging a fresh filter whose
    /// only key hashes to exactly `positions` with initial counter
    /// `value`, in O(k) instead of O(m). Unlike [`Tcbf::insert`],
    /// which keeps already-set counters (the paper's insertion rule),
    /// this *refreshes* decayed counters — the aggregation write path
    /// of `bsub-match`, where a tier filter must guarantee
    /// `min_counter ≥ value` over a member's positions even when an
    /// earlier subscriber set them and decay has since weakened them.
    /// Being an M-merge, it marks the filter merged.
    ///
    /// # Panics
    ///
    /// Panics if any position is `>= self.bit_len()`.
    pub fn refresh_positions<I: IntoIterator<Item = usize>>(&mut self, positions: I, value: u32) {
        if value == 0 {
            return;
        }
        // Store `max(materialized, value)` under the unchanged epoch:
        // `max(c ∸ e, v) = max(c, v + e) ∸ e` as long as `v + e` does
        // not overflow; flush first in the (unreachable in practice)
        // saturating case so the max lands on materialized values.
        if self.epoch > u32::MAX - value {
            self.flush_epoch();
        }
        let target = value + self.epoch;
        for pos in positions {
            if self.counters[pos] < target {
                self.counters[pos] = target;
            }
        }
        self.merged = true;
    }

    /// Materialized (epoch-adjusted) counter values, in bit order — the
    /// observable state of the filter. Allocation-free iterator; use
    /// [`Tcbf::counter_values`] for a `Vec`.
    pub fn iter_counters(&self) -> impl Iterator<Item = u32> + '_ {
        let e = self.epoch;
        self.counters.iter().map(move |c| c.saturating_sub(e))
    }

    /// Existential query: `true` iff all hashed bits of the key have
    /// non-zero counters. Same false-positive behavior as the classic
    /// Bloom filter (Section IV-A).
    #[must_use]
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        self.min_counter(key) > 0
    }

    /// The minimum counter value over the key's hashed bits.
    ///
    /// Zero means the key is (definitely) not present. A non-zero value
    /// is the filter's "strength" for the key — how recently and how
    /// often it was reinforced — and is what preferential queries
    /// compare.
    #[must_use]
    pub fn min_counter<K: AsRef<[u8]>>(&self, key: K) -> u32 {
        obs::count(Counter::TcbfQuery, 1);
        self.hasher
            .positions(key.as_ref(), self.hashes, self.counters.len())
            .map(|pos| self.counters[pos].saturating_sub(self.epoch))
            .min()
            .unwrap_or(0)
    }

    /// Preferential query (Section IV-A): the preference of `self` over
    /// `against` for `key`.
    ///
    /// With `f = self.min_counter(key)` and `g = against.min_counter(key)`:
    ///
    /// - if `g != 0`, the preference is the finite difference `f - g`;
    /// - if `g == 0`, the preference is `f` but marked *absolute*: the
    ///   other filter does not hold the key at all, so its owner is not
    ///   a carrier for it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ParamMismatch`] if the filters' parameters
    /// differ.
    pub fn preference<K: AsRef<[u8]>>(&self, against: &Self, key: K) -> Result<Preference, Error> {
        self.check_compatible(against)?;
        obs::count(Counter::TcbfPreference, 1);
        let _span = obs::span(TimeHist::PreferenceNs);
        let key = key.as_ref();
        let f = i64::from(self.min_counter(key));
        let g = i64::from(against.min_counter(key));
        Ok(if g == 0 {
            Preference::Absolute(f)
        } else {
            Preference::Relative(f - g)
        })
    }

    /// Projects the TCBF to a plain [`BloomFilter`] by "ripping off the
    /// counters" (Section V-D): what a broker sends to a producer when
    /// requesting messages, to save bandwidth.
    #[must_use]
    pub fn to_bloom(&self) -> BloomFilter {
        let mut bits = BitVec::new(self.counters.len());
        for (i, &c) in self.counters.iter().enumerate() {
            if c > self.epoch {
                bits.set(i);
            }
        }
        BloomFilter::from_parts(bits, self.hashes, self.hasher)
    }

    /// Length of the counter vector (the paper's `m`).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.counters.len()
    }

    /// Number of hash functions (the paper's `k`).
    #[must_use]
    pub fn hash_count(&self) -> usize {
        self.hashes
    }

    /// The insertion counter value `C`.
    #[must_use]
    pub fn initial_counter(&self) -> u32 {
        self.initial
    }

    /// Number of non-zero counters (set bits).
    #[must_use]
    pub fn set_bits(&self) -> usize {
        let e = self.epoch;
        self.counters.iter().filter(|&&c| c > e).count()
    }

    /// Fill ratio: non-zero counters over total (Eq. 3).
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.set_bits() as f64 / self.counters.len() as f64
    }

    /// Whether no counter is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c <= self.epoch)
    }

    /// Whether this filter has ever been the receiver of a merge (and
    /// therefore rejects direct insertion).
    #[must_use]
    pub fn is_merged(&self) -> bool {
        self.merged
    }

    /// Resets the filter to empty and never-merged.
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.epoch = 0;
        self.merged = false;
    }

    /// Largest counter value in the filter; zero if empty.
    #[must_use]
    pub fn max_counter_value(&self) -> u32 {
        self.iter_counters().max().unwrap_or(0)
    }

    /// The hasher used by this filter.
    #[must_use]
    pub fn hasher(&self) -> KeyHasher {
        self.hasher
    }

    /// Materialized counter values, indexed by bit position.
    ///
    /// Allocates; prefer [`Tcbf::iter_counters`] in hot paths.
    #[must_use]
    pub fn counter_values(&self) -> Vec<u32> {
        self.iter_counters().collect()
    }

    /// Rebuilds a filter from raw materialized counters.
    ///
    /// This is the deserialization seam: `bsub_bloom::wire::decode`
    /// and the node-state snapshot codec in `bsub-core` use it to
    /// reconstruct a filter whose counters, insertion value `C`, and
    /// merged flag were recorded elsewhere. The counters are taken as
    /// already materialized (epoch zero); behavior is identical to a
    /// filter that reached the same counter values through
    /// insert/merge/decay operations.
    #[must_use]
    pub fn from_parts(
        counters: Vec<u32>,
        hashes: usize,
        initial: u32,
        hasher: KeyHasher,
        merged: bool,
    ) -> Self {
        Self {
            counters,
            epoch: 0,
            hashes,
            initial,
            hasher,
            merged,
        }
    }

    fn check_compatible(&self, other: &Self) -> Result<(), Error> {
        if self.counters.len() != other.counters.len()
            || self.hashes != other.hashes
            || self.hasher != other.hasher
        {
            return Err(Error::ParamMismatch {
                ours: (self.counters.len(), self.hashes),
                theirs: (other.counters.len(), other.hashes),
            });
        }
        Ok(())
    }
}

/// A pre-extracted sparse view of a [`Tcbf`]: its materialized
/// non-zero counters and the parameters another filter must share to
/// merge with it. Built with [`Tcbf::to_sparse`], consumed by
/// [`Tcbf::a_merge_sparse`].
///
/// The point is asymptotic: a consumer's genuine filter sets
/// `interests × k` counters out of `m`, so reinforcing a broker's
/// relay through the sparse view costs O(set bits) per meeting rather
/// than a full O(m) counter pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseTcbf {
    bits: usize,
    hashes: usize,
    hasher: KeyHasher,
    /// Materialized `(bit index, counter)` pairs, ascending by index.
    entries: Vec<(u32, u32)>,
}

impl SparseTcbf {
    /// Number of non-zero counters in the view.
    #[must_use]
    pub fn set_bits(&self) -> usize {
        self.entries.len()
    }
}

/// Result of a preferential query ([`Tcbf::preference`]).
///
/// Ordered so that any [`Preference::Absolute`] with a positive value
/// beats any [`Preference::Relative`]: a carrier that holds the key
/// when the other does not is always preferred, matching the paper's
/// "the preference is `f` when `g` equals 0" rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preference {
    /// Both filters hold the key; the value is `f - g`.
    Relative(i64),
    /// Only `self` may hold the key (`g == 0`); the value is `f`.
    Absolute(i64),
}

impl Preference {
    /// Whether this preference is strictly positive — i.e. the queried
    /// filter's owner is a *better* carrier. B-SUB forwards only
    /// messages with positive preference (Section V-D).
    #[must_use]
    pub fn is_positive(&self) -> bool {
        match self {
            Preference::Relative(v) | Preference::Absolute(v) => *v > 0,
        }
    }

    /// A sort key: absolute preferences rank above all relative ones,
    /// then by value. Messages with the largest positive preference are
    /// forwarded first.
    #[must_use]
    pub fn rank(&self) -> (u8, i64) {
        match self {
            Preference::Relative(v) => (0, *v),
            Preference::Absolute(v) => (1, *v),
        }
    }
}

impl PartialOrd for Preference {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Preference {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// Translates a fractional decaying factor into integer decay amounts.
///
/// The paper expresses the DF in counter units per minute (Fig. 9's
/// x-axis runs from 0 to 2.0 per minute, and the "best granularity" of
/// a 1-byte counter over 24 h is one decrement per 5.6 min). Counters
/// are integers, so a `Decayer` accumulates the exact product
/// `DF × elapsed` and releases its integer part, carrying the
/// fractional remainder — no decay is ever lost or double-applied.
///
/// # Examples
///
/// ```
/// use bsub_bloom::Decayer;
///
/// let mut d = Decayer::new(0.4); // 0.4 counter units per minute
/// assert_eq!(d.advance(1.0), 0); // 0.4 accumulated
/// assert_eq!(d.advance(2.0), 1); // 1.2 -> release 1, keep 0.2
/// assert_eq!(d.advance(2.0), 1); // 1.0 -> release 1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Decayer {
    rate_per_min: f64,
    residual: f64,
}

impl Decayer {
    /// Creates a decayer with the given DF in counter units per minute.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_min` is negative or not finite.
    #[must_use]
    pub fn new(rate_per_min: f64) -> Self {
        assert!(
            rate_per_min >= 0.0 && rate_per_min.is_finite(),
            "decaying factor must be a finite non-negative rate"
        );
        Self {
            rate_per_min,
            residual: 0.0,
        }
    }

    /// The decaying factor, in counter units per minute.
    #[must_use]
    pub fn rate_per_min(&self) -> f64 {
        self.rate_per_min
    }

    /// Changes the decaying factor, keeping the accumulated fractional
    /// residual. B-SUB's online DF adaptation (Section VI-B: "we can
    /// tentatively adjust the DF, then re-adjust its value") uses this
    /// as contact rates drift.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_min` is negative or not finite.
    pub fn set_rate_per_min(&mut self, rate_per_min: f64) {
        assert!(
            rate_per_min >= 0.0 && rate_per_min.is_finite(),
            "decaying factor must be a finite non-negative rate"
        );
        self.rate_per_min = rate_per_min;
    }

    /// The accumulated fractional decay not yet released by
    /// [`Decayer::advance`], in `[0, 1)` counter units.
    ///
    /// Exposed so a decayer can be serialized exactly: reconstructing
    /// via [`Decayer::restore`] with this value reproduces the same
    /// future release schedule bit-for-bit.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Rebuilds a decayer from a rate and a previously observed
    /// [`Decayer::residual`] — the deserialization counterpart of the
    /// accessor pair.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_min` is negative or not finite, or if
    /// `residual` is not in `[0, 1)`.
    #[must_use]
    pub fn restore(rate_per_min: f64, residual: f64) -> Self {
        let mut d = Self::new(rate_per_min);
        assert!(
            (0.0..1.0).contains(&residual),
            "residual must be a fraction in [0, 1)"
        );
        d.residual = residual;
        d
    }

    /// Advances time by `minutes` and returns the integer decay amount
    /// to apply via [`Tcbf::decay`].
    pub fn advance(&mut self, minutes: f64) -> u32 {
        debug_assert!(minutes >= 0.0, "time cannot flow backwards");
        self.residual += self.rate_per_min * minutes;
        let whole = self.residual.floor();
        self.residual -= whole;
        // Counters saturate at u32 range anyway; clamp the release.
        whole.min(f64::from(u32::MAX)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcbf() -> Tcbf {
        Tcbf::new(256, 4, 10)
    }

    #[test]
    fn insert_sets_counters_to_initial() {
        let mut f = tcbf();
        f.insert("k0").unwrap();
        assert_eq!(f.min_counter("k0"), 10);
        assert!(f.contains("k0"));
    }

    #[test]
    fn reinsert_does_not_change_set_counters() {
        // Section IV-A: "If the counter has already been set, we do not
        // change its value."
        let mut f = tcbf();
        f.insert("k0").unwrap();
        f.insert("k0").unwrap();
        assert_eq!(f.min_counter("k0"), 10);
        assert_eq!(f.max_counter_value(), 10);
    }

    #[test]
    fn counter_at_matches_iter_counters_under_lazy_decay() {
        let mut f = Tcbf::from_keys(64, 4, 10, ["a", "b", "c"]);
        f.decay(3);
        let eager: Vec<u32> = f.iter_counters().collect();
        for (i, &c) in eager.iter().enumerate() {
            assert_eq!(f.counter_at(i), c);
        }
    }

    #[test]
    fn refresh_positions_equals_m_merge_with_singleton() {
        // refresh = M-merge with a fresh one-key filter at counter v,
        // across decay states on the receiver.
        for receiver_decay in [0u32, 4, 9, 15] {
            let mut merged = Tcbf::from_keys(256, 4, 10, ["a", "b"]);
            merged.decay(receiver_decay);
            let mut refreshed = merged.clone();

            let single = Tcbf::from_keys(256, 4, 7, ["c"]);
            merged.m_merge(&single).unwrap();

            let positions: Vec<usize> = refreshed.hasher().positions(b"c", 4, 256).collect();
            refreshed.refresh_positions(positions.iter().copied(), 7);

            assert_eq!(refreshed, merged, "receiver_decay={receiver_decay}");
            assert!(refreshed.is_merged());
            assert!(refreshed.min_counter("c") >= 7);
        }
    }

    #[test]
    fn refresh_positions_raises_decayed_counters() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["k"]);
        f.decay(8);
        assert_eq!(f.min_counter("k"), 2);
        let positions: Vec<usize> = f.hasher().positions(b"k", 4, 256).collect();
        f.refresh_positions(positions, 10);
        assert_eq!(f.min_counter("k"), 10);
    }

    #[test]
    fn refresh_positions_never_lowers() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["k"]);
        let positions: Vec<usize> = f.hasher().positions(b"k", 4, 256).collect();
        f.refresh_positions(positions, 3);
        assert_eq!(f.min_counter("k"), 10, "refresh keeps the larger value");
    }

    #[test]
    fn refresh_positions_zero_value_is_noop() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["k"]);
        let before = f.clone();
        f.refresh_positions(0..4, 0);
        assert_eq!(f, before);
        assert!(!f.is_merged());
    }

    #[test]
    fn fresh_filter_has_uniform_counters() {
        let mut f = tcbf();
        for k in ["a", "b", "c", "d"] {
            f.insert(k).unwrap();
        }
        for c in f.counter_values() {
            assert!(c == 0 || c == 10);
        }
    }

    #[test]
    fn insert_after_merge_rejected() {
        let mut f = tcbf();
        let other = Tcbf::from_keys(256, 4, 10, ["x"]);
        f.a_merge(&other).unwrap();
        assert!(f.is_merged());
        assert_eq!(f.insert("y"), Err(Error::InsertAfterMerge));
    }

    #[test]
    fn paper_insert_into_merged_workflow() {
        // "In order to insert multiple keys into a merged filter, we
        // first insert the keys into an empty TCBF, then merge."
        let mut merged = tcbf();
        merged
            .a_merge(&Tcbf::from_keys(256, 4, 10, ["old"]))
            .unwrap();
        let fresh = Tcbf::from_keys(256, 4, 10, ["new"]);
        merged.a_merge(&fresh).unwrap();
        assert!(merged.contains("old"));
        assert!(merged.contains("new"));
    }

    #[test]
    fn a_merge_adds_counters() {
        // Fig. 3: A-merge of two filters holding {k0} and {k1}, both at
        // 10, yields k0/k1-only bits at 10 and shared bits at 20.
        let f0 = Tcbf::from_keys(256, 4, 10, ["k0"]);
        let f1 = Tcbf::from_keys(256, 4, 10, ["k1"]);
        let mut m = f0.clone();
        m.a_merge(&f1).unwrap();
        assert!(m.contains("k0") && m.contains("k1"));
        // Each counter is 10 (unshared bit) or 20 (shared bit).
        for c in m.counter_values() {
            assert!(c == 0 || c == 10 || c == 20, "counter {c}");
        }
    }

    #[test]
    fn m_merge_takes_maximum() {
        // Fig. 3: M-merge of the same two filters keeps all counters at
        // 10 — no bogus inflation.
        let f0 = Tcbf::from_keys(256, 4, 10, ["k0"]);
        let f1 = Tcbf::from_keys(256, 4, 10, ["k1"]);
        let mut m = f0.clone();
        m.m_merge(&f1).unwrap();
        assert!(m.contains("k0") && m.contains("k1"));
        assert_eq!(m.max_counter_value(), 10);
    }

    #[test]
    fn m_merge_prevents_bogus_counters() {
        // Fig. 6 scenario: two brokers repeatedly exchanging relay
        // filters must not inflate each other's counters.
        let seed = Tcbf::from_keys(256, 4, 10, ["a-interest"]);
        let mut broker_b = Tcbf::new(256, 4, 10);
        let mut broker_c = Tcbf::new(256, 4, 10);
        broker_b.a_merge(&seed).unwrap();
        for _ in 0..100 {
            broker_c.m_merge(&broker_b).unwrap();
            broker_b.m_merge(&broker_c).unwrap();
        }
        assert_eq!(broker_b.min_counter("a-interest"), 10);
        assert_eq!(broker_c.min_counter("a-interest"), 10);
        // With A-merge instead, the counters would explode:
        let mut bogus_b = Tcbf::new(256, 4, 10);
        let mut bogus_c = Tcbf::new(256, 4, 10);
        bogus_b.a_merge(&seed).unwrap();
        for _ in 0..5 {
            bogus_c.a_merge(&bogus_b).unwrap();
            bogus_b.a_merge(&bogus_c).unwrap();
        }
        assert!(bogus_b.min_counter("a-interest") > 100);
    }

    #[test]
    fn decay_removes_expired_keys() {
        // Fig. 4: keys decay out unless reinforced.
        let mut f = tcbf();
        f.insert("fleeting").unwrap();
        f.decay(9);
        assert!(f.contains("fleeting"));
        f.decay(1);
        assert!(!f.contains("fleeting"));
        assert!(f.is_empty());
    }

    #[test]
    fn decay_zero_is_noop() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["k"]);
        let before = f.clone();
        f.decay(0);
        assert_eq!(f, before);
    }

    #[test]
    fn decay_saturates_at_zero() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["k"]);
        f.decay(1000);
        assert!(f.is_empty());
        assert_eq!(f.max_counter_value(), 0);
    }

    #[test]
    fn reinforcement_extends_lifetime() {
        // The decaying-and-reinforcement mechanism: a consumer met
        // twice survives decay that expires a consumer met once.
        let once = Tcbf::from_keys(256, 4, 10, ["rare"]);
        let twice = Tcbf::from_keys(256, 4, 10, ["frequent"]);
        let mut relay = Tcbf::new(256, 4, 10);
        relay.a_merge(&once).unwrap();
        relay.a_merge(&twice).unwrap();
        relay.a_merge(&twice).unwrap();
        relay.decay(15);
        assert!(!relay.contains("rare"));
        assert!(relay.contains("frequent"));
    }

    #[test]
    fn existential_query_no_false_negatives() {
        let mut f = Tcbf::new(1024, 4, 5);
        let keys: Vec<String> = (0..40).map(|i| format!("k{i}")).collect();
        for k in &keys {
            f.insert(k).unwrap();
        }
        for k in &keys {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn preference_relative() {
        let mut strong = Tcbf::new(256, 4, 10);
        let mut weak = Tcbf::new(256, 4, 10);
        let genuine = Tcbf::from_keys(256, 4, 10, ["topic"]);
        strong.a_merge(&genuine).unwrap();
        strong.a_merge(&genuine).unwrap(); // counter 20
        weak.a_merge(&genuine).unwrap(); // counter 10
        let p = strong.preference(&weak, "topic").unwrap();
        assert_eq!(p, Preference::Relative(10));
        assert!(p.is_positive());
        let q = weak.preference(&strong, "topic").unwrap();
        assert_eq!(q, Preference::Relative(-10));
        assert!(!q.is_positive());
    }

    #[test]
    fn preference_absolute_when_other_lacks_key() {
        let holder = Tcbf::from_keys(256, 4, 10, ["topic"]);
        let empty = Tcbf::new(256, 4, 10);
        let p = holder.preference(&empty, "topic").unwrap();
        assert_eq!(p, Preference::Absolute(10));
        assert!(p.is_positive());
        // Neither holds it: absolute zero, not positive.
        let z = empty.preference(&empty.clone(), "topic").unwrap();
        assert_eq!(z, Preference::Absolute(0));
        assert!(!z.is_positive());
    }

    #[test]
    fn preference_ordering_absolute_beats_relative() {
        assert!(Preference::Absolute(1) > Preference::Relative(100));
        assert!(Preference::Relative(5) > Preference::Relative(3));
        assert!(Preference::Absolute(7) > Preference::Absolute(2));
    }

    #[test]
    fn to_bloom_rips_counters() {
        let f = Tcbf::from_keys(256, 4, 10, ["x", "y"]);
        let b = f.to_bloom();
        assert!(b.contains("x") && b.contains("y"));
        assert_eq!(b.set_bits(), f.set_bits());
    }

    #[test]
    fn merge_param_mismatch() {
        let mut a = Tcbf::new(256, 4, 10);
        let b = Tcbf::new(128, 4, 10);
        assert!(matches!(a.a_merge(&b), Err(Error::ParamMismatch { .. })));
        assert!(matches!(a.m_merge(&b), Err(Error::ParamMismatch { .. })));
        assert!(a.preference(&b, "k").is_err());
    }

    #[test]
    fn differing_initial_counters_still_merge() {
        let mut a = Tcbf::new(256, 4, 10);
        let b = Tcbf::from_keys(256, 4, 50, ["k"]);
        a.a_merge(&b).unwrap();
        assert_eq!(a.min_counter("k"), 50);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut f = tcbf();
        f.a_merge(&Tcbf::from_keys(256, 4, 10, ["k"])).unwrap();
        f.reset();
        assert!(f.is_empty());
        assert!(!f.is_merged());
        f.insert("again").unwrap();
        assert!(f.contains("again"));
    }

    #[test]
    fn fig4_timeline() {
        // Fig. 4's concept: k0 inserted repeatedly outlives k1, k2
        // inserted once. Initial value 10, DF 1 per unit time. We model
        // the timeline with fresh filters merged in (insertion into a
        // merged filter is not allowed).
        let mut f = Tcbf::new(256, 2, 10);
        let ins = |key: &str| Tcbf::from_keys(256, 2, 10, [key]);
        f.m_merge(&ins("k0")).unwrap(); // t=0
        f.decay(1);
        f.m_merge(&ins("k1")).unwrap(); // t=1
        f.decay(1);
        f.m_merge(&ins("k2")).unwrap(); // t=2
                                        // decay to t=10: k1 inserted at t=1 has counter 10-9=1, k2 has 2.
        f.decay(8);
        f.m_merge(&ins("k0")).unwrap(); // k0 refreshed at t=10
        f.decay(9); // t=19
        assert!(f.contains("k0"), "k0 was refreshed and survives");
        assert!(!f.contains("k1"), "k1 decayed away");
        assert!(!f.contains("k2"), "k2 decayed away");
    }

    #[test]
    fn decayer_accumulates_fractions() {
        let mut d = Decayer::new(0.25);
        let mut total = 0u32;
        for _ in 0..16 {
            total += d.advance(1.0);
        }
        assert_eq!(total, 4, "0.25/min over 16 min is exactly 4");
    }

    #[test]
    fn decayer_zero_rate_never_decays() {
        let mut d = Decayer::new(0.0);
        assert_eq!(d.advance(1e9), 0);
    }

    #[test]
    fn decayer_large_step() {
        let mut d = Decayer::new(2.0);
        assert_eq!(d.advance(600.0), 1200);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn decayer_rejects_negative_rate() {
        let _ = Decayer::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_initial_counter_panics() {
        let _ = Tcbf::new(256, 4, 0);
    }

    #[test]
    fn decay_is_lazy_but_observably_eager() {
        // The epoch offset must be invisible: every read path reports
        // the same values an eager per-counter walk would.
        let mut lazy = Tcbf::from_keys(256, 4, 10, ["a", "b", "c"]);
        lazy.a_merge(&Tcbf::from_keys(256, 4, 10, ["a"])).unwrap();
        let mut eager = lazy.clone();
        lazy.decay(4);
        lazy.decay(3);
        eager.flush_epoch(); // no-op, epoch 0
        for c in &mut eager.counters {
            *c = c.saturating_sub(4);
        }
        for c in &mut eager.counters {
            *c = c.saturating_sub(3);
        }
        assert!(lazy.epoch > 0, "decay must not have walked the array");
        assert_eq!(lazy, eager);
        assert_eq!(lazy.counter_values(), eager.counter_values());
        assert_eq!(lazy.set_bits(), eager.set_bits());
        assert_eq!(lazy.max_counter_value(), eager.max_counter_value());
        assert_eq!(lazy.min_counter("a"), eager.min_counter("a"));
        assert_eq!(lazy.to_bloom(), eager.to_bloom());
    }

    #[test]
    fn merge_folds_pending_epochs() {
        // Decayed filters on both sides of a merge must combine their
        // *materialized* values (the fused pass folds both pending
        // epochs); only observable values are asserted.
        let mut a = Tcbf::new(256, 4, 10);
        a.a_merge(&Tcbf::from_keys(256, 4, 10, ["k"])).unwrap();
        a.decay(3); // k at 7
        let mut b = Tcbf::new(256, 4, 10);
        b.a_merge(&Tcbf::from_keys(256, 4, 10, ["k"])).unwrap();
        b.decay(8); // k at 2
        let mut sum = a.clone();
        sum.a_merge(&b).unwrap();
        assert_eq!(sum.min_counter("k"), 9);
        let mut max = a.clone();
        max.m_merge(&b).unwrap();
        assert_eq!(max.min_counter("k"), 7);
        // Post-merge decay still applies on top.
        sum.decay(2);
        assert_eq!(sum.min_counter("k"), 7);
    }

    #[test]
    fn merge_near_u32_max_with_pending_epoch_stays_exact() {
        // Saturation at the top of the counter range must commute
        // with the lazy epoch: the fused merge materializes both
        // sides before combining, so a sum clamped at `u32::MAX`
        // stores exactly `u32::MAX`. Drive a filter there with a huge
        // initial counter and check against the eager expectation.
        let big = u32::MAX - 2;
        let mut f = Tcbf::new(64, 2, big);
        f.insert("k").unwrap();
        f.decay(5);
        // Materialized value: MAX - 7. A-merging another `big` filter
        // saturates the sum at MAX, which cannot be stored as
        // `MAX + 5`.
        f.a_merge(&Tcbf::from_keys(64, 2, big, ["k"])).unwrap();
        assert_eq!(f.min_counter("k"), u32::MAX);
        // Later decays still subtract exactly.
        f.decay(7);
        assert_eq!(f.min_counter("k"), u32::MAX - 7);
    }

    #[test]
    fn insert_after_decay_uses_materialized_state() {
        // A decayed-to-zero counter counts as unset again, and the new
        // insertion lands exactly at C — the epoch must not eat it.
        let mut f = tcbf();
        f.insert("gone").unwrap();
        f.decay(10);
        assert!(!f.contains("gone"));
        f.insert("gone").unwrap();
        assert_eq!(f.min_counter("gone"), 10);
    }

    #[test]
    fn m_merge_keeps_common_epoch_lazy() {
        // Max commutes with a shared saturating offset, so an M-merge
        // only equalizes the two epochs: min(e, f) must survive the
        // merge as pending decay, with materialized values identical
        // to the eager computation.
        let mut a = Tcbf::new(256, 4, 10);
        a.a_merge(&Tcbf::from_keys(256, 4, 10, ["ka", "shared"]))
            .unwrap();
        a.decay(4);
        let mut b = Tcbf::new(256, 4, 10);
        b.a_merge(&Tcbf::from_keys(256, 4, 10, ["kb", "shared"]))
            .unwrap();
        b.a_merge(&Tcbf::from_keys(256, 4, 10, ["shared"])).unwrap();
        b.decay(7);

        // Eager expectation on materialized values.
        let eager: Vec<u32> = a
            .iter_counters()
            .zip(b.iter_counters())
            .map(|(x, y)| x.max(y))
            .collect();
        let mut m = a.clone();
        m.m_merge(&b).unwrap();
        assert_eq!(m.epoch, 4, "common epoch part must stay pending");
        assert_eq!(m.counter_values(), eager);
        // And the mirror direction, with the larger epoch on self.
        let mut m2 = b.clone();
        m2.m_merge(&a).unwrap();
        assert_eq!(m2.epoch, 4);
        assert_eq!(m2.counter_values(), eager);
    }

    #[test]
    fn sparse_a_merge_with_pending_epoch_avoids_flush() {
        // The sparse add stores `max(a, e) + v` under the unchanged
        // epoch instead of flushing — observably identical to the
        // dense merge, with the decay still pending afterwards.
        let genuine = Tcbf::from_keys(256, 4, 10, ["g"]);
        let mut relay = Tcbf::new(256, 4, 10);
        relay
            .a_merge(&Tcbf::from_keys(256, 4, 10, ["g", "other"]))
            .unwrap();
        relay.decay(6);
        let mut dense = relay.clone();
        relay.a_merge_sparse(&genuine.to_sparse()).unwrap();
        dense.a_merge(&genuine).unwrap();
        assert_eq!(relay.epoch, 6, "epoch must survive the sparse add");
        assert_eq!(relay, dense);
        assert_eq!(relay.counter_values(), dense.counter_values());
        // Later decay applies on top of the preserved epoch.
        relay.decay(5);
        dense.decay(5);
        assert_eq!(relay.counter_values(), dense.counter_values());
    }

    #[test]
    fn sparse_a_merge_near_saturation_falls_back_exactly() {
        // When `max(a, e) + v` would overflow u32, the sparse path
        // must flush and saturate on materialized values, exactly
        // like the dense merge.
        let big = u32::MAX - 2;
        let genuine = Tcbf::from_keys(64, 2, big, ["k"]);
        let mut relay = Tcbf::new(64, 2, big);
        relay.a_merge(&genuine).unwrap();
        relay.decay(5); // materialized MAX - 7, epoch pending
        let mut dense = relay.clone();
        relay.a_merge_sparse(&genuine.to_sparse()).unwrap();
        dense.a_merge(&genuine).unwrap();
        assert_eq!(relay.min_counter("k"), u32::MAX);
        assert_eq!(relay.counter_values(), dense.counter_values());
        relay.decay(9);
        dense.decay(9);
        assert_eq!(relay.counter_values(), dense.counter_values());
    }

    #[test]
    fn sparse_a_merge_matches_dense() {
        // The sparse fast path must be observably identical to the
        // dense A-merge, including with pending epochs on the
        // receiver and a decayed source.
        let genuine = Tcbf::from_keys(256, 4, 10, ["a", "b", "c"]);
        let sparse = genuine.to_sparse();
        assert_eq!(sparse.set_bits(), genuine.set_bits());
        let mut relay = Tcbf::new(256, 4, 10);
        relay.a_merge(&Tcbf::from_keys(256, 4, 10, ["a"])).unwrap();
        relay.decay(3); // pending epoch on the receiver
        let mut dense = relay.clone();
        relay.a_merge_sparse(&sparse).unwrap();
        dense.a_merge(&genuine).unwrap();
        assert_eq!(relay, dense);
        assert_eq!(relay.counter_values(), dense.counter_values());
    }

    #[test]
    fn sparse_view_of_decayed_filter_is_materialized() {
        let mut f = Tcbf::from_keys(256, 4, 10, ["x", "y"]);
        f.decay(4);
        let sparse = f.to_sparse();
        let mut via_sparse = Tcbf::new(256, 4, 10);
        via_sparse.a_merge_sparse(&sparse).unwrap();
        let mut via_dense = Tcbf::new(256, 4, 10);
        via_dense.a_merge(&f).unwrap();
        assert_eq!(via_sparse, via_dense);
        assert_eq!(via_sparse.min_counter("x"), 6);
    }

    #[test]
    fn sparse_merge_param_mismatch() {
        let genuine = Tcbf::from_keys(128, 4, 10, ["a"]);
        let mut relay = Tcbf::new(256, 4, 10);
        assert!(matches!(
            relay.a_merge_sparse(&genuine.to_sparse()),
            Err(Error::ParamMismatch { .. })
        ));
    }

    #[test]
    fn merge_adopt_matches_second_direction_merge() {
        // The broker-exchange shortcut: after a merges b's snapshot,
        // b adopting a's result must equal b merging a's snapshot —
        // for both rules, and with pending epochs on both sides.
        for additive in [false, true] {
            let mut a = Tcbf::new(256, 4, 10);
            a.a_merge(&Tcbf::from_keys(256, 4, 10, ["a1", "shared"]))
                .unwrap();
            a.decay(2);
            let mut b = Tcbf::new(256, 4, 10);
            b.a_merge(&Tcbf::from_keys(256, 4, 10, ["b1", "shared"]))
                .unwrap();
            b.a_merge(&Tcbf::from_keys(256, 4, 10, ["shared"])).unwrap();
            b.decay(5);

            let (snap_a, snap_b) = (a.clone(), b.clone());
            let mut b_expected = b.clone();
            if additive {
                a.a_merge(&snap_b).unwrap();
                b_expected.a_merge(&snap_a).unwrap();
                b.a_merge_adopt(&a).unwrap();
            } else {
                a.m_merge(&snap_b).unwrap();
                b_expected.m_merge(&snap_a).unwrap();
                b.m_merge_adopt(&a).unwrap();
            }
            assert_eq!(b, b_expected, "additive={additive}");
            assert_eq!(b.counter_values(), b_expected.counter_values());
        }
    }

    #[test]
    fn merge_adopt_counts_as_merge() {
        bsub_obs::start();
        let mut a = Tcbf::new(256, 4, 10);
        a.m_merge(&Tcbf::from_keys(256, 4, 10, ["k"])).unwrap();
        let mut b = Tcbf::new(256, 4, 10);
        b.m_merge_adopt(&a).unwrap();
        let genuine = Tcbf::from_keys(256, 4, 10, ["g"]);
        b.a_merge_sparse(&genuine.to_sparse()).unwrap();
        let report = bsub_obs::finish();
        assert_eq!(report.counter(Counter::TcbfMMerge), 2);
        assert_eq!(report.counter(Counter::TcbfAMerge), 1);
        assert_eq!(report.time_hist(TimeHist::MergeNs).count(), 3);
    }

    #[test]
    fn profiling_counts_tcbf_hot_paths() {
        bsub_obs::start();
        let mut a = Tcbf::from_keys(256, 4, 10, ["x", "y"]);
        let b = Tcbf::from_keys(256, 4, 10, ["x"]);
        a.a_merge(&b).unwrap();
        let mut m = Tcbf::new(256, 4, 10);
        m.m_merge(&b).unwrap();
        a.decay(1);
        a.decay(0); // zero decay is a no-op and must not be counted
        let _ = a.contains("x");
        let _ = a.preference(&b, "x").unwrap();
        let report = bsub_obs::finish();
        assert_eq!(report.counter(Counter::TcbfInsert), 3);
        assert_eq!(report.counter(Counter::TcbfAMerge), 1);
        assert_eq!(report.counter(Counter::TcbfMMerge), 1);
        assert_eq!(report.counter(Counter::TcbfDecay), 1);
        // contains → 1 query; preference → 2 more via min_counter.
        assert_eq!(report.counter(Counter::TcbfQuery), 3);
        assert_eq!(report.counter(Counter::TcbfPreference), 1);
        assert_eq!(report.time_hist(TimeHist::MergeNs).count(), 2);
    }
}
