//! Compressed wire encoding of TCBFs (Section VI-C of the paper).
//!
//! Because the fill ratio is low in B-SUB's operating regime, a filter
//! is cheaper to ship as a *list of set-bit locations* than as a raw
//! bit vector: each location costs ⌈log₂ m⌉ bits, so `n` set bits cost
//! `n·⌈log₂ m⌉` bits instead of `m`. Counters add one byte per set bit,
//! with two paper-described optimizations:
//!
//! - **shared counter** — if all counters are identical (always true
//!   for a freshly built genuine filter), a single byte is stored;
//! - **ripped counters** — when a broker requests messages from a
//!   producer, counters are not needed at all and are omitted,
//!   yielding a plain Bloom filter on the other side.
//!
//! A fourth, non-paper mode ([`CounterMode::Wide`]) stores each
//! counter as a full `u32` — lossless where `Full` saturates at 255.
//! The networked runtime uses it to ship relay-filter state between
//! processes, where exactness matters more than radio bytes.
//!
//! The encoding is self-describing: [`decode`] returns either a
//! [`Tcbf`] or a [`BloomFilter`] depending on what was sent. Hasher
//! seeds are *not* encoded — B-SUB assumes a network-wide hash
//! configuration, so the decoder uses [`KeyHasher::default`].
//!
//! # Framing and integrity
//!
//! The fixed 8-byte header is `tag (1) | m: u16 LE (2) | k (1) |
//! n: u16 LE (2) | crc: u16 LE (2)`, where `crc` is CRC-16/CCITT-FALSE
//! over the first six header bytes and the whole body. Control filters
//! travel over lossy radio links, so [`decode`] must *reject* any
//! truncated or bit-flipped encoding rather than reconstruct a
//! plausible-but-wrong filter: truncation is caught by the exact-length
//! check (the header fully determines the payload length) and any
//! single-bit error is caught by the checksum — both are exercised
//! exhaustively by the property tests in `tests/properties.rs`.

use crate::bitvec::BitVec;
use crate::bloom::BloomFilter;
use crate::error::Error;
use crate::hash::KeyHasher;
use crate::tcbf::Tcbf;
use bsub_obs::{self as obs, Counter, SizeHist, TimeHist};

/// How counters are represented on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// One byte per set bit (values saturate at 255).
    Full,
    /// A single shared byte; valid only when all non-zero counters are
    /// identical (e.g. a never-merged genuine filter).
    Shared,
    /// No counters: the receiver reconstructs a plain [`BloomFilter`].
    Ripped,
    /// Four bytes (`u32` LE) per set bit — lossless at any counter
    /// magnitude, unlike [`CounterMode::Full`]'s 255 saturation. Used
    /// for state snapshots (the networked runtime ships relay filters
    /// between processes), never for the paper's radio cost model.
    Wide,
}

/// A decoded wire payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WirePayload {
    /// A filter that carried counters ([`CounterMode::Full`] or
    /// [`CounterMode::Shared`]). Decoded filters are marked merged, so
    /// they reject direct insertion, matching their role as
    /// merge sources.
    Tcbf(Tcbf),
    /// A counter-less filter ([`CounterMode::Ripped`]).
    Bloom(BloomFilter),
}

impl WirePayload {
    /// Extracts the TCBF, if the payload carried counters.
    #[must_use]
    pub fn into_tcbf(self) -> Option<Tcbf> {
        match self {
            WirePayload::Tcbf(t) => Some(t),
            WirePayload::Bloom(_) => None,
        }
    }

    /// Extracts a plain Bloom filter, ripping counters if present.
    #[must_use]
    pub fn into_bloom(self) -> BloomFilter {
        match self {
            WirePayload::Tcbf(t) => t.to_bloom(),
            WirePayload::Bloom(b) => b,
        }
    }
}

const TAG_FULL: u8 = 0;
const TAG_SHARED: u8 = 1;
const TAG_RIPPED: u8 = 2;
const TAG_WIDE: u8 = 3;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over the
/// concatenation of `parts`. A degree-16 polynomial with more than one
/// term detects every single-bit error, which is the guarantee the
/// fault model leans on.
///
/// Public because the networked runtime (`bsub-net`) frames every
/// socket message with the same checksum — see DESIGN.md §12 for the
/// normative frame layout.
#[must_use]
pub fn crc16(parts: [&[u8]; 2]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for part in parts {
        for &byte in part {
            crc ^= u16::from(byte) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
    }
    crc
}

/// Bits needed to address one of `m` locations: ⌈log₂ m⌉ (minimum 1).
#[must_use]
pub fn location_bits(m: usize) -> usize {
    assert!(m > 0, "m must be positive");
    usize::BITS as usize - (m - 1).leading_zeros() as usize + usize::from(m == 1)
}

/// Size in bytes of an encoded filter with `n_set` set bits out of `m`,
/// under the given counter mode. This is the crate's instantiation of
/// the paper's Eq. 8 memory model (plus a fixed 8-byte header).
#[must_use]
pub fn encoded_len(n_set: usize, m: usize, mode: CounterMode) -> usize {
    let header = 8;
    let locations = (n_set * location_bits(m)).div_ceil(8);
    let counters = match mode {
        CounterMode::Full => n_set,
        CounterMode::Shared => 1,
        CounterMode::Ripped => 0,
        CounterMode::Wide => 4 * n_set,
    };
    header + locations + counters
}

/// Serialized size of representing `keys` as raw strings instead of a
/// filter, for the Section VI-C comparison: per key, a 2-byte length
/// prefix, the UTF-8 bytes, and a 1-byte counter (the "associated
/// control information").
#[must_use]
pub fn raw_strings_len<I, K>(keys: I) -> usize
where
    I: IntoIterator<Item = K>,
    K: AsRef<str>,
{
    keys.into_iter().map(|k| 2 + k.as_ref().len() + 1).sum()
}

/// Encodes a TCBF.
///
/// # Errors
///
/// Returns [`Error::InvalidParams`] if:
/// - `mode` is [`CounterMode::Shared`] but the non-zero counters are
///   not all identical, or
/// - the filter has more than `u16::MAX` set bits or more than
///   `u16::MAX` locations (outside any HUNET operating range).
pub fn encode(filter: &Tcbf, mode: CounterMode) -> Result<Vec<u8>, Error> {
    let _span = obs::span(TimeHist::EncodeNs);
    let m = filter.bit_len();
    if m > u16::MAX as usize {
        return Err(Error::InvalidParams {
            reason: "bit-vector too long for wire format",
        });
    }
    // Materialized counters: the lazy decay epoch is folded in here,
    // so the bytes on the wire are exactly what an eagerly decayed
    // filter would produce.
    let set: Vec<(usize, u32)> = filter
        .iter_counters()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    if set.len() > u16::MAX as usize {
        return Err(Error::InvalidParams {
            reason: "too many set bits for wire format",
        });
    }
    let shared_value = match mode {
        CounterMode::Shared => {
            let first = set.first().map_or(0, |&(_, c)| c);
            if set.iter().any(|&(_, c)| c != first) {
                return Err(Error::InvalidParams {
                    reason: "shared-counter mode requires identical counters",
                });
            }
            Some(first)
        }
        _ => None,
    };

    let mut out = Vec::with_capacity(encoded_len(set.len(), m, mode));
    out.push(match mode {
        CounterMode::Full => TAG_FULL,
        CounterMode::Shared => TAG_SHARED,
        CounterMode::Ripped => TAG_RIPPED,
        CounterMode::Wide => TAG_WIDE,
    });
    out.extend_from_slice(&(m as u16).to_le_bytes());
    out.push(
        filter
            .hash_count()
            .try_into()
            .map_err(|_| Error::InvalidParams {
                reason: "hash count exceeds 255",
            })?,
    );
    out.extend_from_slice(&(set.len() as u16).to_le_bytes());
    out.extend_from_slice(&[0, 0]); // checksum backfilled below

    // Bit-packed locations, MSB-first.
    let width = location_bits(m);
    let mut acc: u64 = 0;
    let mut acc_bits = 0usize;
    for &(loc, _) in &set {
        acc = (acc << width) | loc as u64;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push(((acc >> (acc_bits - 8)) & 0xff) as u8);
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push(((acc << (8 - acc_bits)) & 0xff) as u8);
    }

    match mode {
        CounterMode::Full => {
            out.extend(set.iter().map(|&(_, c)| saturate(c)));
        }
        CounterMode::Shared => {
            out.push(saturate(shared_value.unwrap_or(0)));
        }
        CounterMode::Ripped => {}
        CounterMode::Wide => {
            for &(_, c) in &set {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    let crc = crc16([&out[..6], &out[8..]]);
    out[6..8].copy_from_slice(&crc.to_le_bytes());
    obs::count(Counter::WireEncode, 1);
    obs::count(Counter::WireBytes, out.len() as u64);
    obs::observe(SizeHist::EncodedFilterBytes, out.len() as u64);
    Ok(out)
}

fn saturate(c: u32) -> u8 {
    c.min(u32::from(u8::MAX)) as u8
}

/// Decodes a wire payload produced by [`encode`].
///
/// # Errors
///
/// Returns [`Error::Decode`] on truncated or corrupt input.
pub fn decode(bytes: &[u8]) -> Result<WirePayload, Error> {
    let _span = obs::span(TimeHist::DecodeNs);
    let result = decode_inner(bytes);
    obs::count(
        if result.is_ok() {
            Counter::WireDecodeOk
        } else {
            Counter::WireDecodeReject
        },
        1,
    );
    result
}

fn decode_inner(bytes: &[u8]) -> Result<WirePayload, Error> {
    let err = |reason| Error::Decode { reason };
    if bytes.len() < 8 {
        return Err(err("truncated header"));
    }
    let tag = bytes[0];
    let m = u16::from_le_bytes(bytes[1..3].try_into().expect("2 bytes")) as usize;
    let k = bytes[3] as usize;
    let n = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes")) as usize;
    let crc = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if m == 0 {
        return Err(err("zero-length bit vector"));
    }
    if k == 0 {
        return Err(err("zero hash count"));
    }
    let width = location_bits(m);
    let loc_bytes = (n * width).div_ceil(8);
    let counters_len = match tag {
        TAG_FULL => n,
        TAG_SHARED => 1,
        TAG_RIPPED => 0,
        TAG_WIDE => 4 * n,
        _ => return Err(err("unknown format tag")),
    };
    if bytes.len() != 8 + loc_bytes + counters_len {
        return Err(err("payload length mismatch"));
    }
    if crc16([&bytes[..6], &bytes[8..]]) != crc {
        return Err(err("checksum mismatch"));
    }

    // Unpack locations.
    let mut locations = Vec::with_capacity(n);
    let mut acc: u64 = 0;
    let mut acc_bits = 0usize;
    let mut cursor = 8;
    for _ in 0..n {
        while acc_bits < width {
            acc = (acc << 8) | u64::from(bytes[cursor]);
            cursor += 1;
            acc_bits += 8;
        }
        let loc = (acc >> (acc_bits - width)) & ((1u64 << width) - 1);
        acc_bits -= width;
        let loc = loc as usize;
        if loc >= m {
            return Err(err("bit location out of range"));
        }
        locations.push(loc);
    }

    let hasher = KeyHasher::default();
    match tag {
        TAG_RIPPED => {
            let mut bits = BitVec::new(m);
            for &loc in &locations {
                bits.set(loc);
            }
            Ok(WirePayload::Bloom(BloomFilter::from_parts(bits, k, hasher)))
        }
        TAG_FULL | TAG_SHARED | TAG_WIDE => {
            let mut counters = vec![0u32; m];
            let payload = &bytes[8 + loc_bytes..];
            for (i, &loc) in locations.iter().enumerate() {
                let c = match tag {
                    TAG_FULL => u32::from(payload[i]),
                    TAG_SHARED => u32::from(payload[0]),
                    _ => u32::from_le_bytes(payload[4 * i..4 * i + 4].try_into().expect("4 bytes")),
                };
                if c == 0 {
                    return Err(err("zero counter for a set bit"));
                }
                counters[loc] = c;
            }
            // Decoded filters are merge sources; mark them merged so
            // they reject direct insertion (initial value 1 is a
            // placeholder that insertion can never use).
            Ok(WirePayload::Tcbf(Tcbf::from_parts(
                counters, k, 1, hasher, true,
            )))
        }
        _ => unreachable!("tag validated above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tcbf() -> Tcbf {
        Tcbf::from_keys(256, 4, 50, ["NewMoon", "Phillies", "Thanksgiving"])
    }

    #[test]
    fn full_roundtrip_preserves_counters() {
        let mut f = sample_tcbf();
        // Make counters non-uniform via a-merge.
        let extra = Tcbf::from_keys(256, 4, 50, ["NewMoon"]);
        f.a_merge(&extra).unwrap();
        let bytes = encode(&f, CounterMode::Full).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.counter_values(), f.counter_values());
        assert_eq!(decoded.bit_len(), 256);
        assert_eq!(decoded.hash_count(), 4);
        assert!(decoded.is_merged());
    }

    #[test]
    fn shared_roundtrip() {
        let f = sample_tcbf();
        let bytes = encode(&f, CounterMode::Shared).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.counter_values(), f.counter_values());
    }

    #[test]
    fn shared_rejects_non_uniform() {
        let mut f = sample_tcbf();
        f.a_merge(&Tcbf::from_keys(256, 4, 50, ["NewMoon"]))
            .unwrap();
        assert!(matches!(
            encode(&f, CounterMode::Shared),
            Err(Error::InvalidParams { .. })
        ));
    }

    #[test]
    fn ripped_roundtrip_yields_bloom() {
        let f = sample_tcbf();
        let bytes = encode(&f, CounterMode::Ripped).unwrap();
        let bloom = match decode(&bytes).unwrap() {
            WirePayload::Bloom(b) => b,
            other => panic!("expected bloom, got {other:?}"),
        };
        for key in ["NewMoon", "Phillies", "Thanksgiving"] {
            assert!(bloom.contains(key));
        }
        assert_eq!(bloom.set_bits(), f.set_bits());
    }

    #[test]
    fn counters_saturate_at_255_on_wire() {
        let mut f = Tcbf::new(256, 4, 300);
        f.a_merge(&Tcbf::from_keys(256, 4, 300, ["big"])).unwrap();
        let bytes = encode(&f, CounterMode::Full).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.min_counter("big"), 255);
    }

    #[test]
    fn sizes_match_encoded_len() {
        let f = sample_tcbf();
        let n = f.set_bits();
        for mode in [
            CounterMode::Full,
            CounterMode::Shared,
            CounterMode::Ripped,
            CounterMode::Wide,
        ] {
            let bytes = encode(&f, mode).unwrap();
            assert_eq!(bytes.len(), encoded_len(n, 256, mode), "{mode:?}");
        }
    }

    #[test]
    fn wide_roundtrip_is_lossless_above_255() {
        // Where Full saturates (see counters_saturate_at_255_on_wire),
        // Wide must reproduce the exact counters — it is the snapshot
        // format for relay filters whose A-merged counters exceed 255.
        let mut f = Tcbf::new(256, 4, 300);
        let src = Tcbf::from_keys(256, 4, 300, ["big"]);
        f.a_merge(&src).unwrap();
        f.a_merge(&src).unwrap();
        let bytes = encode(&f, CounterMode::Wide).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.min_counter("big"), 600);
        assert_eq!(decoded.counter_values(), f.counter_values());
    }

    #[test]
    fn empty_filter_roundtrip() {
        let f = Tcbf::new(256, 4, 10);
        let bytes = encode(&f, CounterMode::Full).unwrap();
        assert_eq!(bytes.len(), 8);
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn location_bits_values() {
        assert_eq!(location_bits(1), 1);
        assert_eq!(location_bits(2), 1);
        assert_eq!(location_bits(3), 2);
        assert_eq!(location_bits(256), 8);
        assert_eq!(location_bits(257), 9);
        assert_eq!(location_bits(1024), 10);
    }

    #[test]
    fn paper_size_claim_single_key() {
        // Section VII-A: with m=256, k=4, "at most 5 bytes are used to
        // encode a single key" — 4 locations × 8 bits = 4 bytes plus a
        // shared counter byte. Our header adds fixed framing on top.
        let n = 4; // at most 4 set bits for one key
        let body = encoded_len(n, 256, CounterMode::Shared) - 8;
        assert_eq!(body, 5);
    }

    #[test]
    fn tcbf_beats_raw_strings_for_paper_workload() {
        // Section VI-C claims the TCBF uses about half the space of raw
        // strings. 38 keys of average length 11.5 bytes vs a 256-bit
        // filter.
        let keys: Vec<String> = (0..38).map(|i| format!("trendkey-{i:03}")).collect();
        let raw = raw_strings_len(keys.iter().map(String::as_str));
        let f = Tcbf::from_keys(256, 4, 50, keys.iter().map(String::as_bytes));
        let wire = encode(&f, CounterMode::Shared).unwrap().len();
        assert!(
            (wire as f64) < raw as f64 * 0.6,
            "wire {wire} should be well under raw {raw}"
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let f = sample_tcbf();
        let bytes = encode(&f, CounterMode::Full).unwrap();
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(
                matches!(decode(&bytes[..cut]), Err(Error::Decode { .. })),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let f = sample_tcbf();
        let mut bytes = encode(&f, CounterMode::Full).unwrap();
        bytes.push(0xff);
        assert!(matches!(decode(&bytes), Err(Error::Decode { .. })));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let f = sample_tcbf();
        let mut bytes = encode(&f, CounterMode::Full).unwrap();
        bytes[0] = 42;
        assert!(matches!(decode(&bytes), Err(Error::Decode { .. })));
    }

    #[test]
    fn decode_rejects_zero_params() {
        let f = sample_tcbf();
        let mut bytes = encode(&f, CounterMode::Ripped).unwrap();
        bytes[3] = 0; // k = 0
        assert!(matches!(decode(&bytes), Err(Error::Decode { .. })));
    }

    #[test]
    fn decode_rejects_every_single_bit_flip() {
        let f = sample_tcbf();
        for mode in [
            CounterMode::Full,
            CounterMode::Shared,
            CounterMode::Ripped,
            CounterMode::Wide,
        ] {
            let bytes = encode(&f, mode).unwrap();
            for bit in 0..bytes.len() * 8 {
                let mut flipped = bytes.clone();
                flipped[bit / 8] ^= 1 << (bit % 8);
                assert!(
                    matches!(decode(&flipped), Err(Error::Decode { .. })),
                    "{mode:?}: flip of bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn decode_reports_checksum_mismatch_for_body_damage() {
        let f = sample_tcbf();
        let mut bytes = encode(&f, CounterMode::Full).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        match decode(&bytes) {
            Err(Error::Decode { reason }) => assert_eq!(reason, "checksum mismatch"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn non_power_of_two_m_roundtrip() {
        let f = Tcbf::from_keys(300, 3, 7, ["a", "b", "c", "d"]);
        let bytes = encode(&f, CounterMode::Full).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.counter_values(), f.counter_values());
    }

    #[test]
    fn large_filter_roundtrip() {
        let keys: Vec<String> = (0..200).map(|i| format!("k{i}")).collect();
        let f = Tcbf::from_keys(4096, 6, 99, keys.iter().map(String::as_bytes));
        let bytes = encode(&f, CounterMode::Full).unwrap();
        let decoded = decode(&bytes).unwrap().into_tcbf().unwrap();
        for k in &keys {
            assert!(decoded.contains(k));
        }
        assert_eq!(decoded.counter_values(), f.counter_values());
    }

    #[test]
    fn profiling_counts_encodes_decodes_and_rejects() {
        bsub_obs::start();
        let f = sample_tcbf();
        let bytes = encode(&f, CounterMode::Full).unwrap();
        decode(&bytes).unwrap();
        assert!(decode(&bytes[..4]).is_err());
        let report = bsub_obs::finish();
        assert_eq!(report.counter(Counter::WireEncode), 1);
        assert_eq!(report.counter(Counter::WireDecodeOk), 1);
        assert_eq!(report.counter(Counter::WireDecodeReject), 1);
        assert_eq!(report.counter(Counter::WireBytes), bytes.len() as u64);
        assert_eq!(
            report.size_hist(SizeHist::EncodedFilterBytes).max(),
            bytes.len() as u64
        );
    }

    #[test]
    fn raw_strings_len_model() {
        assert_eq!(raw_strings_len(["ab", "cde"]), (2 + 2 + 1) + (2 + 3 + 1));
        assert_eq!(raw_strings_len(Vec::<&str>::new()), 0);
    }
}
