//! Property tests for the word-packed TCBF: the SWAR kernels against
//! the scalar reference kernels, the packed filter against the `u32`
//! [`Tcbf`] in the no-saturation regime, saturation-at-15 edges, and
//! lazy-vs-eager decay equivalence over interleaved schedules.
//!
//! Seeded-case style, like `tests/properties.rs`: every case derives
//! its randomness from `SplitMix64::mix(TAG, case)`, so failures
//! reproduce exactly.

use bsub_bloom::packed::{
    reference, word_max, word_nonzero_nibbles, word_sat_add, word_sat_sub, NIBBLE_MAX,
};
use bsub_bloom::rng::SplitMix64;
use bsub_bloom::{PackedTcbf, Tcbf};

const CASES: u64 = 128;
const TAG: u64 = 0xb50b_4b17;

fn rng_for(case: u64) -> SplitMix64 {
    SplitMix64::new(SplitMix64::mix(TAG, case))
}

fn random_keys(rng: &mut SplitMix64, max: usize) -> Vec<String> {
    let n = rng.below_usize(max) + 1;
    (0..n).map(|_| format!("key-{}", rng.next_u64())).collect()
}

// ---- SWAR kernels vs the scalar reference, on random words ----

#[test]
fn kernel_sat_add_matches_reference() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(
            word_sat_add(a, b),
            reference::sat_add(a, b),
            "case {case}: a={a:#x} b={b:#x}"
        );
    }
}

#[test]
fn kernel_max_matches_reference() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(
            word_max(a, b),
            reference::max(a, b),
            "case {case}: a={a:#x} b={b:#x}"
        );
    }
}

#[test]
fn kernel_sat_sub_matches_reference() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let a = rng.next_u64();
        for d in 0..=NIBBLE_MAX {
            assert_eq!(
                word_sat_sub(a, d),
                reference::sat_sub(a, d),
                "case {case}: a={a:#x} d={d}"
            );
        }
    }
}

#[test]
fn kernel_nonzero_count_matches_reference() {
    for case in 0..CASES {
        let mut rng = rng_for(case);
        let a = rng.next_u64();
        let expected = reference::unpack(a).iter().filter(|&&v| v > 0).count() as u32;
        assert_eq!(word_nonzero_nibbles(a).count_ones(), expected);
    }
}

/// Exhaustive at the lane level: every (a, b) nibble pair in every
/// lane position is covered by two words enumerating 16x16 pairs.
#[test]
fn kernels_exhaustive_over_nibble_pairs() {
    for hi in 0..16u64 {
        let mut a = 0u64;
        let mut b = 0u64;
        for lane in 0..16u64 {
            a |= hi << (lane * 4);
            b |= lane << (lane * 4);
        }
        assert_eq!(word_sat_add(a, b), reference::sat_add(a, b));
        assert_eq!(word_max(a, b), reference::max(a, b));
        assert_eq!(word_max(b, a), reference::max(b, a));
        for d in 0..=NIBBLE_MAX {
            assert_eq!(word_sat_sub(a, d), reference::sat_sub(a, d));
        }
    }
}

// ---- Packed filter vs the u32 Tcbf, below the saturation point ----

/// With few enough reinforcements that no counter reaches 15, the
/// packed filter and the u32 TCBF must agree on every observable:
/// counter values, queries, preferences, set bits.
#[test]
fn differential_packed_vs_tcbf_no_saturation() {
    for case in 0..CASES {
        let mut rng = rng_for(1000 + case);
        let keys = random_keys(&mut rng, 12);
        let initial = (rng.below(3) + 1) as u8; // 1..=3
        let packed_src = PackedTcbf::from_keys(256, 4, initial, keys.iter().map(String::as_bytes));
        let tcbf_src = Tcbf::from_keys(
            256,
            4,
            u32::from(initial),
            keys.iter().map(String::as_bytes),
        );

        let mut packed = PackedTcbf::new(256, 4, initial);
        let mut tcbf = Tcbf::new(256, 4, u32::from(initial));
        // ≤ 4 A-merges of C ≤ 3 keeps every counter ≤ 12 < 15.
        let merges = rng.below(4) + 1;
        for _ in 0..merges {
            packed.a_merge(&packed_src).unwrap();
            tcbf.a_merge(&tcbf_src).unwrap();
        }
        let decay = (rng.below(4)) as u32;
        packed.decay(decay);
        tcbf.decay(decay);

        let packed_vals: Vec<u32> = packed
            .counter_values()
            .iter()
            .map(|&v| u32::from(v))
            .collect();
        assert_eq!(packed_vals, tcbf.counter_values(), "case {case}");
        assert_eq!(packed.set_bits(), tcbf.set_bits(), "case {case}");
        for k in &keys {
            assert_eq!(packed.min_counter(k), tcbf.min_counter(k), "case {case}");
            assert_eq!(packed.contains(k), tcbf.contains(k), "case {case}");
        }
        // Preference against the one-merge source filter.
        let mut packed_one = PackedTcbf::new(256, 4, initial);
        packed_one.a_merge(&packed_src).unwrap();
        let mut tcbf_one = Tcbf::new(256, 4, u32::from(initial));
        tcbf_one.a_merge(&tcbf_src).unwrap();
        for k in &keys {
            assert_eq!(
                packed.preference(&packed_one, k).unwrap(),
                tcbf.preference(&tcbf_one, k).unwrap(),
                "case {case} key {k}"
            );
        }
    }
}

/// M-merge differential: maximum of two independently built filters.
#[test]
fn differential_m_merge_matches_tcbf() {
    for case in 0..CASES {
        let mut rng = rng_for(2000 + case);
        let keys_a = random_keys(&mut rng, 10);
        let keys_b = random_keys(&mut rng, 10);
        let mut packed = PackedTcbf::new(256, 4, 9);
        packed
            .a_merge(&PackedTcbf::from_keys(
                256,
                4,
                9,
                keys_a.iter().map(String::as_bytes),
            ))
            .unwrap();
        let mut tcbf = Tcbf::new(256, 4, 9);
        tcbf.a_merge(&Tcbf::from_keys(
            256,
            4,
            9,
            keys_a.iter().map(String::as_bytes),
        ))
        .unwrap();
        packed.decay(3);
        tcbf.decay(3);
        packed
            .m_merge(&PackedTcbf::from_keys(
                256,
                4,
                9,
                keys_b.iter().map(String::as_bytes),
            ))
            .unwrap();
        tcbf.m_merge(&Tcbf::from_keys(
            256,
            4,
            9,
            keys_b.iter().map(String::as_bytes),
        ))
        .unwrap();
        let packed_vals: Vec<u32> = packed
            .counter_values()
            .iter()
            .map(|&v| u32::from(v))
            .collect();
        assert_eq!(packed_vals, tcbf.counter_values(), "case {case}");
    }
}

// ---- Saturation-at-15 edges ----

#[test]
fn a_merge_saturates_at_15_and_stays_there() {
    let src = PackedTcbf::from_keys(256, 4, 8, ["sat"]);
    let mut relay = PackedTcbf::new(256, 4, 8);
    relay.a_merge(&src).unwrap(); // 8
    relay.a_merge(&src).unwrap(); // 15 (8 + 8 clamps)
    assert_eq!(relay.min_counter("sat"), 15);
    relay.a_merge(&src).unwrap(); // still 15
    assert_eq!(relay.min_counter("sat"), 15);
    // Saturated counters decay like any other.
    relay.decay(7);
    assert_eq!(relay.min_counter("sat"), 8);
}

#[test]
fn saturation_commutes_with_m_merge() {
    // max(15, x) == 15 for any nibble, including another 15.
    let full = PackedTcbf::from_keys(256, 4, 15, ["k"]);
    let mut a = PackedTcbf::new(256, 4, 15);
    a.a_merge(&full).unwrap();
    a.a_merge(&full).unwrap(); // saturated
    let mut b = PackedTcbf::new(256, 4, 15);
    b.m_merge(&full).unwrap();
    let mut ab = a.clone();
    ab.m_merge(&b).unwrap();
    let mut ba = b.clone();
    ba.m_merge(&a).unwrap();
    assert_eq!(ab, ba);
    assert_eq!(ab.min_counter("k"), 15);
}

#[test]
fn decay_at_or_past_15_empties_any_filter() {
    for case in 0..8 {
        let mut rng = rng_for(3000 + case);
        let keys = random_keys(&mut rng, 20);
        let mut f = PackedTcbf::new(512, 4, 15);
        f.a_merge(&PackedTcbf::from_keys(
            512,
            4,
            15,
            keys.iter().map(String::as_bytes),
        ))
        .unwrap();
        f.decay(15 + (rng.below(100)) as u32);
        assert!(f.is_empty());
        assert_eq!(f.set_bits(), 0);
    }
}

// ---- Lazy-vs-eager decay equivalence over interleaved schedules ----

/// An eager model of the packed filter: applies decay immediately via
/// the reference kernel. Interleaving merges, decays, and queries in a
/// random schedule must leave both representations observably equal.
#[test]
fn lazy_decay_equals_eager_over_interleaved_schedules() {
    for case in 0..CASES {
        let mut rng = rng_for(4000 + case);
        let keys = random_keys(&mut rng, 8);
        let sources: Vec<PackedTcbf> = (0..3)
            .map(|i| {
                let ks: Vec<&String> = keys.iter().skip(i).step_by(2).collect();
                let mut f = PackedTcbf::new(256, 4, 6);
                if ks.is_empty() {
                    return f;
                }
                f.a_merge(&PackedTcbf::from_keys(
                    256,
                    4,
                    6,
                    ks.iter().map(|k| k.as_bytes()),
                ))
                .unwrap();
                f
            })
            .collect();

        let mut lazy = PackedTcbf::new(256, 4, 6);
        // Eager model: counters as plain bytes, decayed immediately.
        let mut eager = vec![0u8; 256];
        let apply_merge = |eager: &mut Vec<u8>, src: &PackedTcbf, additive: bool| {
            for (i, v) in src.counter_values().into_iter().enumerate() {
                eager[i] = if additive {
                    (eager[i] + v).min(NIBBLE_MAX)
                } else {
                    eager[i].max(v)
                };
            }
        };

        for _step in 0..24 {
            match rng.below(4) {
                0 => {
                    let src = &sources[rng.below_usize(sources.len())];
                    lazy.a_merge(src).unwrap();
                    apply_merge(&mut eager, src, true);
                }
                1 => {
                    let src = &sources[rng.below_usize(sources.len())];
                    lazy.m_merge(src).unwrap();
                    apply_merge(&mut eager, src, false);
                }
                2 => {
                    let d = (rng.below(5)) as u32;
                    lazy.decay(d);
                    for c in &mut eager {
                        *c = c.saturating_sub(d as u8);
                    }
                }
                _ => {
                    // Queries must see through the pending epoch and
                    // never exceed the nibble range.
                    for k in &keys {
                        let got = lazy.min_counter(k);
                        assert!(got <= u32::from(NIBBLE_MAX), "case {case}: {got}");
                    }
                }
            }
            assert_eq!(
                lazy.counter_values(),
                *eager,
                "case {case} diverged mid-schedule"
            );
            assert_eq!(
                lazy.set_bits(),
                eager.iter().filter(|&&c| c > 0).count(),
                "case {case}"
            );
        }
        for k in &keys {
            let min_eager = {
                // Recompute from the eager array via a fresh packed
                // filter sharing the hasher's positions.
                let probe = PackedTcbf::from_keys(256, 4, 1, [k.as_bytes()]);
                probe
                    .counter_values()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v > 0)
                    .map(|(i, _)| u32::from(eager[i]))
                    .min()
                    .unwrap_or(0)
            };
            assert_eq!(lazy.min_counter(k), min_eager, "case {case} key {k}");
        }
    }
}

/// Decay additivity: split decays equal one big decay, across the
/// epoch-normalization boundary at 15.
#[test]
fn split_decay_equals_total_decay() {
    for case in 0..CASES {
        let mut rng = rng_for(5000 + case);
        let keys = random_keys(&mut rng, 10);
        let build = || {
            let mut f = PackedTcbf::new(256, 4, 7);
            f.a_merge(&PackedTcbf::from_keys(
                256,
                4,
                7,
                keys.iter().map(String::as_bytes),
            ))
            .unwrap();
            f.a_merge(&PackedTcbf::from_keys(
                256,
                4,
                7,
                keys.iter().map(String::as_bytes),
            ))
            .unwrap();
            f
        };
        let total = (rng.below(20)) as u32;
        let split = (rng.below(u64::from(total) + 1)) as u32;
        let mut one = build();
        one.decay(total);
        let mut two = build();
        two.decay(split);
        two.decay(total - split);
        assert_eq!(
            one,
            two,
            "case {case}: {split}+{} vs {total}",
            total - split
        );
    }
}

/// Sparse A-merge ≡ dense A-merge under randomized epoch skew: the
/// receiver and the source each carry independent random lazy-decay
/// epochs, and folding `other` in dense form must leave the same
/// materialized state as folding `other.sparse_words()` — the sparse
/// path both materializes the source (sparse entries are epoch-free)
/// and flushes the receiver's pending epoch before adding.
#[test]
fn sparse_a_merge_matches_dense_under_epoch_skew() {
    for case in 0..CASES {
        let mut rng = rng_for(7000 + case);

        let build = |rng: &mut SplitMix64| {
            let mut f = PackedTcbf::new(256, 4, (rng.below(14) + 1) as u8);
            for key in random_keys(rng, 12) {
                let _ = f.insert(key);
            }
            f
        };
        let mut receiver = build(&mut rng);
        // Pile on extra merges so some nibbles sit near saturation.
        for _ in 0..rng.below_usize(3) {
            let extra = build(&mut rng);
            receiver.a_merge(&extra).unwrap();
        }
        let mut source = build(&mut rng);

        // Independent random epoch skew on both sides (decay keeps the
        // epochs lazy below the clear-at-15 shortcut).
        receiver.decay(rng.below(8) as u32);
        source.decay(rng.below(8) as u32);

        let mut dense = receiver.clone();
        dense.a_merge(&source).unwrap();

        let mut sparse = receiver.clone();
        sparse.a_merge_sparse(&source.sparse_words());

        assert_eq!(
            dense.materialized_words(),
            sparse.materialized_words(),
            "case {case}: dense and sparse A-merge diverged"
        );
        // Subsequent uniform decay keeps them in agreement too.
        let d = rng.below(6) as u32;
        dense.decay(d);
        sparse.decay(d);
        assert_eq!(
            dense.materialized_words(),
            sparse.materialized_words(),
            "case {case}: divergence after post-merge decay"
        );
    }
}
