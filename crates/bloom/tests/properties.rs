//! Property-based tests for the filter family's invariants.

use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{math, BloomFilter, CountingBloomFilter, Tcbf};
use proptest::collection::vec;
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ]{0,24}"
}

proptest! {
    /// A Bloom filter never produces a false negative.
    #[test]
    fn bloom_no_false_negatives(keys in vec(key_strategy(), 0..60)) {
        let mut f = BloomFilter::new(512, 4);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Merging is a set union: the merge contains everything either
    /// filter contained, and nothing tested-absent in both becomes
    /// newly present... except by the union's own (larger) FPR — so we
    /// only assert the superset direction, which is exact.
    #[test]
    fn bloom_merge_is_superset(
        left in vec(key_strategy(), 0..30),
        right in vec(key_strategy(), 0..30),
    ) {
        let a = BloomFilter::from_keys(512, 4, left.iter());
        let b = BloomFilter::from_keys(512, 4, right.iter());
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        prop_assert!(a.bits().is_subset_of(merged.bits()));
        prop_assert!(b.bits().is_subset_of(merged.bits()));
        for k in left.iter().chain(&right) {
            prop_assert!(merged.contains(k));
        }
    }

    /// Bloom merge is commutative.
    #[test]
    fn bloom_merge_commutes(
        left in vec(key_strategy(), 0..30),
        right in vec(key_strategy(), 0..30),
    ) {
        let a = BloomFilter::from_keys(512, 4, left.iter());
        let b = BloomFilter::from_keys(512, 4, right.iter());
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// CBF: inserting then removing the same multiset restores emptiness
    /// (when no counter saturates).
    #[test]
    fn cbf_insert_remove_cancels(keys in vec(key_strategy(), 0..40)) {
        let mut f = CountingBloomFilter::new(512, 4);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.remove(k));
        }
        prop_assert!(f.is_empty());
    }

    /// TCBF: a never-merged filter has all counters in {0, C}.
    #[test]
    fn tcbf_fresh_counters_uniform(keys in vec(key_strategy(), 0..40), initial in 1u32..200) {
        let f = Tcbf::from_keys(512, 4, initial, keys.iter());
        for &c in f.counters() {
            prop_assert!(c == 0 || c == initial);
        }
    }

    /// TCBF M-merge is idempotent: merging a filter into itself (a
    /// copy) changes nothing.
    #[test]
    fn tcbf_m_merge_idempotent(keys in vec(key_strategy(), 0..40)) {
        let f = Tcbf::from_keys(512, 4, 10, keys.iter());
        let mut m = f.clone();
        m.m_merge(&f).unwrap();
        prop_assert_eq!(m.counters(), f.counters());
    }

    /// TCBF M-merge is commutative and counter-wise max.
    #[test]
    fn tcbf_m_merge_commutes(
        left in vec(key_strategy(), 0..25),
        right in vec(key_strategy(), 0..25),
    ) {
        let a = Tcbf::from_keys(512, 4, 10, left.iter());
        let b = Tcbf::from_keys(512, 4, 20, right.iter());
        let mut ab = a.clone();
        ab.m_merge(&b).unwrap();
        let mut ba = b.clone();
        ba.m_merge(&a).unwrap();
        prop_assert_eq!(ab.counters(), ba.counters());
        for (i, &c) in ab.counters().iter().enumerate() {
            prop_assert_eq!(c, a.counters()[i].max(b.counters()[i]));
        }
    }

    /// TCBF A-merge adds counters exactly (below saturation).
    #[test]
    fn tcbf_a_merge_adds(
        left in vec(key_strategy(), 0..25),
        right in vec(key_strategy(), 0..25),
    ) {
        let a = Tcbf::from_keys(512, 4, 10, left.iter());
        let b = Tcbf::from_keys(512, 4, 20, right.iter());
        let mut ab = a.clone();
        ab.a_merge(&b).unwrap();
        for (i, &c) in ab.counters().iter().enumerate() {
            prop_assert_eq!(c, a.counters()[i] + b.counters()[i]);
        }
    }

    /// Decay then decay equals one combined decay (additivity), and
    /// decay never resurrects a key.
    #[test]
    fn tcbf_decay_additive(
        keys in vec(key_strategy(), 0..30),
        d1 in 0u32..40,
        d2 in 0u32..40,
    ) {
        let base = Tcbf::from_keys(512, 4, 50, keys.iter());
        let mut split = base.clone();
        split.decay(d1);
        split.decay(d2);
        let mut whole = base.clone();
        whole.decay(d1 + d2);
        prop_assert_eq!(split.counters(), whole.counters());
        // Monotone: everything absent in base stays absent.
        for k in &keys {
            if !base.contains(k) {
                prop_assert!(!split.contains(k));
            }
        }
    }

    /// Decay commutes with M-merge: max(a - d, b - d) == max(a, b) - d.
    #[test]
    fn tcbf_decay_commutes_with_m_merge(
        left in vec(key_strategy(), 0..20),
        right in vec(key_strategy(), 0..20),
        d in 0u32..60,
    ) {
        let a = Tcbf::from_keys(512, 4, 50, left.iter());
        let b = Tcbf::from_keys(512, 4, 30, right.iter());

        let mut merge_then_decay = a.clone();
        merge_then_decay.m_merge(&b).unwrap();
        merge_then_decay.decay(d);

        let mut da = a.clone();
        da.decay(d);
        let mut db = b.clone();
        db.decay(d);
        let mut decay_then_merge = da;
        decay_then_merge.m_merge(&db).unwrap();

        prop_assert_eq!(merge_then_decay.counters(), decay_then_merge.counters());
    }

    /// Wire round-trip (full counters) is lossless for counters <= 255.
    #[test]
    fn wire_full_roundtrip(keys in vec(key_strategy(), 0..50), initial in 1u32..=255) {
        let f = Tcbf::from_keys(512, 4, initial, keys.iter());
        let bytes = wire::encode(&f, CounterMode::Full).unwrap();
        let decoded = wire::decode(&bytes).unwrap().into_tcbf().unwrap();
        prop_assert_eq!(decoded.counters(), f.counters());
    }

    /// Ripped wire round-trip preserves exact bit membership.
    #[test]
    fn wire_ripped_roundtrip(keys in vec(key_strategy(), 0..50)) {
        let f = Tcbf::from_keys(512, 4, 10, keys.iter());
        let bytes = wire::encode(&f, CounterMode::Ripped).unwrap();
        let bloom = wire::decode(&bytes).unwrap().into_bloom();
        prop_assert_eq!(bloom.set_bits(), f.set_bits());
        for k in &keys {
            prop_assert!(bloom.contains(k));
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn wire_decode_never_panics(bytes in vec(any::<u8>(), 0..200)) {
        let _ = wire::decode(&bytes);
    }

    /// The min-counter of a contained key is bounded by the largest
    /// counter in the filter.
    #[test]
    fn tcbf_min_counter_bounded(keys in vec(key_strategy(), 1..30)) {
        let f = Tcbf::from_keys(512, 4, 37, keys.iter());
        for k in &keys {
            let c = f.min_counter(k);
            prop_assert!(c > 0);
            prop_assert!(c <= f.max_counter_value());
        }
    }

    /// Eq. 1 / Eq. 3 relationship: FPR == FR^k for any parameters.
    #[test]
    fn math_fpr_is_fr_pow_k(m in 8usize..2048, k in 1usize..8, n in 0u32..500) {
        let fr = math::fill_ratio(m, k, f64::from(n));
        let fpr = math::false_positive_rate(m, k, f64::from(n));
        prop_assert!((fpr - fr.powi(k as i32)).abs() < 1e-12);
    }
}
