//! Property-style tests for the filter family's invariants.
//!
//! The workspace builds offline with no external dev-dependencies, so
//! instead of `proptest` these drive each invariant over a few hundred
//! seeded random cases from the in-tree [`SplitMix64`] generator. Every
//! case is fully determined by its index, so failures reproduce
//! exactly.

use bsub_bloom::rng::SplitMix64;
use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{math, BloomFilter, CountingBloomFilter, Tcbf};

const CASES: u64 = 128;

const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";

/// A random key matching the old `[a-zA-Z0-9 ]{0,24}` strategy.
fn rand_key(rng: &mut SplitMix64) -> String {
    let len = rng.below_usize(25);
    (0..len)
        .map(|_| ALPHABET[rng.below_usize(ALPHABET.len())] as char)
        .collect()
}

/// Between `lo` and `hi - 1` random keys.
fn rand_keys(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<String> {
    let n = lo + rng.below_usize(hi - lo);
    (0..n).map(|_| rand_key(rng)).collect()
}

/// Runs `body` over `CASES` independent seeded cases.
fn cases(mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(SplitMix64::mix(0xb50b_0000, case));
        body(&mut rng);
    }
}

/// A Bloom filter never produces a false negative.
#[test]
fn bloom_no_false_negatives() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 60);
        let mut f = BloomFilter::new(512, 4);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k));
        }
    });
}

/// Merging is a set union: the merge contains everything either filter
/// contained (the superset direction is exact; the other direction is
/// only probabilistic).
#[test]
fn bloom_merge_is_superset() {
    cases(|rng| {
        let left = rand_keys(rng, 0, 30);
        let right = rand_keys(rng, 0, 30);
        let a = BloomFilter::from_keys(512, 4, left.iter());
        let b = BloomFilter::from_keys(512, 4, right.iter());
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        assert!(a.bits().is_subset_of(merged.bits()));
        assert!(b.bits().is_subset_of(merged.bits()));
        for k in left.iter().chain(&right) {
            assert!(merged.contains(k));
        }
    });
}

/// Bloom merge is commutative.
#[test]
fn bloom_merge_commutes() {
    cases(|rng| {
        let left = rand_keys(rng, 0, 30);
        let right = rand_keys(rng, 0, 30);
        let a = BloomFilter::from_keys(512, 4, left.iter());
        let b = BloomFilter::from_keys(512, 4, right.iter());
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        assert_eq!(ab, ba);
    });
}

/// CBF: inserting then removing the same multiset restores emptiness
/// (when no counter saturates).
#[test]
fn cbf_insert_remove_cancels() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 40);
        let mut f = CountingBloomFilter::new(512, 4);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.remove(k));
        }
        assert!(f.is_empty());
    });
}

/// TCBF: a never-merged filter has all counters in {0, C}.
#[test]
fn tcbf_fresh_counters_uniform() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 40);
        let initial = 1 + rng.below(199) as u32;
        let f = Tcbf::from_keys(512, 4, initial, keys.iter());
        for c in f.counter_values() {
            assert!(c == 0 || c == initial);
        }
    });
}

/// TCBF M-merge is idempotent: merging a filter into itself (a copy)
/// changes nothing.
#[test]
fn tcbf_m_merge_idempotent() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 40);
        let f = Tcbf::from_keys(512, 4, 10, keys.iter());
        let mut m = f.clone();
        m.m_merge(&f).unwrap();
        assert_eq!(m.counter_values(), f.counter_values());
    });
}

/// TCBF M-merge is commutative and counter-wise max.
#[test]
fn tcbf_m_merge_commutes() {
    cases(|rng| {
        let left = rand_keys(rng, 0, 25);
        let right = rand_keys(rng, 0, 25);
        let a = Tcbf::from_keys(512, 4, 10, left.iter());
        let b = Tcbf::from_keys(512, 4, 20, right.iter());
        let mut ab = a.clone();
        ab.m_merge(&b).unwrap();
        let mut ba = b.clone();
        ba.m_merge(&a).unwrap();
        assert_eq!(ab.counter_values(), ba.counter_values());
        for (i, &c) in ab.counter_values().iter().enumerate() {
            assert_eq!(c, a.counter_values()[i].max(b.counter_values()[i]));
        }
    });
}

/// TCBF A-merge adds counters exactly (below saturation).
#[test]
fn tcbf_a_merge_adds() {
    cases(|rng| {
        let left = rand_keys(rng, 0, 25);
        let right = rand_keys(rng, 0, 25);
        let a = Tcbf::from_keys(512, 4, 10, left.iter());
        let b = Tcbf::from_keys(512, 4, 20, right.iter());
        let mut ab = a.clone();
        ab.a_merge(&b).unwrap();
        for (i, &c) in ab.counter_values().iter().enumerate() {
            assert_eq!(c, a.counter_values()[i] + b.counter_values()[i]);
        }
    });
}

/// Decay then decay equals one combined decay (additivity), and decay
/// never resurrects a key.
#[test]
fn tcbf_decay_additive() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 30);
        let d1 = rng.below(40) as u32;
        let d2 = rng.below(40) as u32;
        let base = Tcbf::from_keys(512, 4, 50, keys.iter());
        let mut split = base.clone();
        split.decay(d1);
        split.decay(d2);
        let mut whole = base.clone();
        whole.decay(d1 + d2);
        assert_eq!(split.counter_values(), whole.counter_values());
        // Monotone: everything absent in base stays absent.
        for k in &keys {
            if !base.contains(k) {
                assert!(!split.contains(k));
            }
        }
    });
}

/// Decay commutes with M-merge: max(a - d, b - d) == max(a, b) - d.
#[test]
fn tcbf_decay_commutes_with_m_merge() {
    cases(|rng| {
        let left = rand_keys(rng, 0, 20);
        let right = rand_keys(rng, 0, 20);
        let d = rng.below(60) as u32;
        let a = Tcbf::from_keys(512, 4, 50, left.iter());
        let b = Tcbf::from_keys(512, 4, 30, right.iter());

        let mut merge_then_decay = a.clone();
        merge_then_decay.m_merge(&b).unwrap();
        merge_then_decay.decay(d);

        let mut da = a.clone();
        da.decay(d);
        let mut db = b.clone();
        db.decay(d);
        let mut decay_then_merge = da;
        decay_then_merge.m_merge(&db).unwrap();

        assert_eq!(
            merge_then_decay.counter_values(),
            decay_then_merge.counter_values()
        );
    });
}

/// Wire round-trip (full counters) is lossless for counters <= 255.
#[test]
fn wire_full_roundtrip() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 50);
        let initial = 1 + rng.below(255) as u32;
        let f = Tcbf::from_keys(512, 4, initial, keys.iter());
        let bytes = wire::encode(&f, CounterMode::Full).unwrap();
        let decoded = wire::decode(&bytes).unwrap().into_tcbf().unwrap();
        assert_eq!(decoded.counter_values(), f.counter_values());
    });
}

/// Ripped wire round-trip preserves exact bit membership.
#[test]
fn wire_ripped_roundtrip() {
    cases(|rng| {
        let keys = rand_keys(rng, 0, 50);
        let f = Tcbf::from_keys(512, 4, 10, keys.iter());
        let bytes = wire::encode(&f, CounterMode::Ripped).unwrap();
        let bloom = wire::decode(&bytes).unwrap().into_bloom();
        assert_eq!(bloom.set_bits(), f.set_bits());
        for k in &keys {
            assert!(bloom.contains(k));
        }
    });
}

/// Decoding arbitrary bytes never panics.
#[test]
fn wire_decode_never_panics() {
    cases(|rng| {
        let len = rng.below_usize(200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = wire::decode(&bytes);
    });
}

/// A random valid encoding in a random counter mode.
fn rand_encoding(rng: &mut SplitMix64) -> Vec<u8> {
    let keys = rand_keys(rng, 0, 50);
    let initial = 1 + rng.below(255) as u32;
    let f = Tcbf::from_keys(512, 4, initial, keys.iter());
    let mode = match rng.below(3) {
        0 => CounterMode::Full,
        1 => CounterMode::Shared,
        _ => CounterMode::Ripped,
    };
    wire::encode(&f, mode).unwrap()
}

/// Every strict prefix of a valid encoding is rejected, never decoded
/// into a filter and never a panic (the fault model truncates filter
/// transmissions mid-flight).
#[test]
fn wire_decode_rejects_every_truncated_prefix() {
    cases(|rng| {
        let bytes = rand_encoding(rng);
        for cut in 0..bytes.len() {
            assert!(
                wire::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must be rejected",
                bytes.len()
            );
        }
    });
}

/// Every single-bit flip of a valid encoding is rejected (the CRC-16
/// in the header detects all single-bit errors).
#[test]
fn wire_decode_rejects_every_single_bit_flip() {
    cases(|rng| {
        let bytes = rand_encoding(rng);
        for bit in 0..bytes.len() * 8 {
            let mut flipped = bytes.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert!(
                wire::decode(&flipped).is_err(),
                "flip of bit {bit} must be rejected"
            );
        }
    });
}

/// Encode → corrupt → decode never yields a filter: damage of the kind
/// the fault model injects (random truncation or a random bit flip)
/// cannot produce an `Ok` payload.
#[test]
fn wire_corrupted_encoding_never_validates() {
    cases(|rng| {
        let bytes = rand_encoding(rng);
        for _ in 0..16 {
            let mut damaged = bytes.clone();
            if rng.next_bool() {
                let keep = rng.below_usize(damaged.len());
                damaged.truncate(keep);
            } else {
                let bit = rng.below_usize(damaged.len() * 8);
                damaged[bit / 8] ^= 1 << (bit % 8);
            }
            assert!(
                wire::decode(&damaged).is_err(),
                "corrupted encoding must never decode"
            );
        }
    });
}

/// The min-counter of a contained key is bounded by the largest counter
/// in the filter.
#[test]
fn tcbf_min_counter_bounded() {
    cases(|rng| {
        let keys = rand_keys(rng, 1, 30);
        let f = Tcbf::from_keys(512, 4, 37, keys.iter());
        for k in &keys {
            let c = f.min_counter(k);
            assert!(c > 0);
            assert!(c <= f.max_counter_value());
        }
    });
}

/// Eq. 1 / Eq. 3 relationship: FPR == FR^k for any parameters.
#[test]
fn math_fpr_is_fr_pow_k() {
    cases(|rng| {
        let m = 8 + rng.below_usize(2040);
        let k = 1 + rng.below_usize(7);
        let n = rng.below(500) as u32;
        let fr = math::fill_ratio(m, k, f64::from(n));
        let fpr = math::false_positive_rate(m, k, f64::from(n));
        assert!((fpr - fr.powi(k as i32)).abs() < 1e-12);
    });
}
