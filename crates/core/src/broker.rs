//! Broker allocation: the decentralized election of Section V-B.
//!
//! Each *user* keeps a sliding log of the nodes it met within the
//! window `W`. From the log it derives:
//!
//! - how many distinct **brokers** it met (if below `L`, promote the
//!   next user it meets; if above `U`, try to demote);
//! - its own **degree** — the number of distinct nodes met in `W`
//!   (exchanged in the identity beacon, and compared against the
//!   average degree of known brokers when demoting: "the user
//!   designates the broker to be a user if the broker's degree is
//!   below the average value").
//!
//! Brokers themselves never promote or demote anyone.

use bsub_traces::{NodeId, SimDuration, SimTime};
use std::collections::VecDeque;

/// One remembered meeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meeting {
    at: SimTime,
    peer: NodeId,
    peer_was_broker: bool,
    peer_degree: usize,
}

/// A node's sliding meeting log and the election statistics derived
/// from it.
#[derive(Debug, Clone, Default)]
pub struct ElectionLog {
    meetings: VecDeque<Meeting>,
}

/// What a user decides about the peer it just met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectionAction {
    /// Designate the peer (a user) as a broker — too few brokers seen.
    Promote,
    /// Designate the peer (a low-degree broker) back to a user — too
    /// many brokers seen.
    Demote,
    /// Leave the peer's role alone.
    Keep,
}

impl ElectionLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops meetings older than `window` before `now`.
    pub fn prune(&mut self, now: SimTime, window: SimDuration) {
        let cutoff = now.saturating_since(SimTime::ZERO + window);
        let cutoff = SimTime::from_secs(cutoff.as_secs());
        while let Some(front) = self.meetings.front() {
            if front.at < cutoff {
                self.meetings.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records a meeting with `peer`, whose pre-contact role and
    /// self-reported degree arrive in the identity beacon.
    pub fn record(
        &mut self,
        now: SimTime,
        peer: NodeId,
        peer_was_broker: bool,
        peer_degree: usize,
    ) {
        self.meetings.push_back(Meeting {
            at: now,
            peer,
            peer_was_broker,
            peer_degree,
        });
    }

    /// Distinct brokers met within the (already pruned) window.
    #[must_use]
    pub fn brokers_met(&self) -> usize {
        let mut seen: Vec<NodeId> = Vec::new();
        for m in &self.meetings {
            if m.peer_was_broker && !seen.contains(&m.peer) {
                seen.push(m.peer);
            }
        }
        seen.len()
    }

    /// This node's degree: distinct peers met within the window.
    #[must_use]
    pub fn degree(&self) -> usize {
        let mut seen: Vec<NodeId> = Vec::new();
        for m in &self.meetings {
            if !seen.contains(&m.peer) {
                seen.push(m.peer);
            }
        }
        seen.len()
    }

    /// Mean of the last-reported degrees of the distinct brokers in
    /// the window; `None` if no broker was met.
    #[must_use]
    pub fn average_broker_degree(&self) -> Option<f64> {
        let mut latest: Vec<(NodeId, usize)> = Vec::new();
        for m in &self.meetings {
            if !m.peer_was_broker {
                continue;
            }
            if let Some(entry) = latest.iter_mut().find(|(p, _)| *p == m.peer) {
                entry.1 = m.peer_degree; // later meeting wins
            } else {
                latest.push((m.peer, m.peer_degree));
            }
        }
        if latest.is_empty() {
            return None;
        }
        Some(latest.iter().map(|&(_, d)| d as f64).sum::<f64>() / latest.len() as f64)
    }

    /// The election rule of Section V-B, evaluated by a **user** about
    /// the peer it just met (call *before* recording the meeting, so
    /// the counts reflect the window prior to this contact).
    ///
    /// - fewer than `lower` brokers met and the peer is a user ⇒
    ///   [`ElectionAction::Promote`];
    /// - more than `upper` brokers met, the peer is a broker, and the
    ///   peer's degree is below the average broker degree ⇒
    ///   [`ElectionAction::Demote`];
    /// - otherwise ⇒ [`ElectionAction::Keep`].
    #[must_use]
    pub fn decide(
        &self,
        peer_is_broker: bool,
        peer_degree: usize,
        lower: usize,
        upper: usize,
    ) -> ElectionAction {
        let brokers = self.brokers_met();
        if brokers < lower && !peer_is_broker {
            return ElectionAction::Promote;
        }
        if brokers > upper && peer_is_broker {
            if let Some(avg) = self.average_broker_degree() {
                if (peer_degree as f64) < avg {
                    return ElectionAction::Demote;
                }
            }
        }
        ElectionAction::Keep
    }

    /// Iterates the remembered meetings oldest-first as
    /// `(at, peer, peer_was_broker, peer_degree)` tuples — the exact
    /// arguments [`ElectionLog::record`] takes, so a log snapshot is
    /// round-tripped by replaying each tuple into a fresh log. Used by
    /// the `snapshot` module to ship election state between processes.
    pub fn meetings(&self) -> impl Iterator<Item = (SimTime, NodeId, bool, usize)> + '_ {
        self.meetings
            .iter()
            .map(|m| (m.at, m.peer, m.peer_was_broker, m.peer_degree))
    }

    /// Number of meetings currently in the window (for diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.meetings.len()
    }

    /// Whether the window holds no meetings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.meetings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: SimDuration = SimDuration::from_hours(5);

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn empty_log_promotes_users() {
        let log = ElectionLog::new();
        assert_eq!(log.decide(false, 3, 3, 5), ElectionAction::Promote);
        // A broker peer is never promoted.
        assert_eq!(log.decide(true, 3, 3, 5), ElectionAction::Keep);
    }

    #[test]
    fn enough_brokers_keeps() {
        let mut log = ElectionLog::new();
        for i in 0..3 {
            log.record(t(i), NodeId::new(i as u32), true, 4);
        }
        assert_eq!(log.brokers_met(), 3);
        assert_eq!(log.decide(false, 3, 3, 5), ElectionAction::Keep);
    }

    #[test]
    fn too_many_brokers_demotes_low_degree() {
        let mut log = ElectionLog::new();
        for i in 0..6 {
            log.record(t(i), NodeId::new(i as u32), true, 10);
        }
        // Average broker degree is 10; a degree-2 broker is below it.
        assert_eq!(log.decide(true, 2, 3, 5), ElectionAction::Demote);
        // A degree-12 broker is not.
        assert_eq!(log.decide(true, 12, 3, 5), ElectionAction::Keep);
        // A user peer is never demoted.
        assert_eq!(log.decide(false, 2, 3, 5), ElectionAction::Keep);
    }

    #[test]
    fn brokers_met_counts_distinct() {
        let mut log = ElectionLog::new();
        log.record(t(0), NodeId::new(1), true, 4);
        log.record(t(1), NodeId::new(1), true, 4);
        log.record(t(2), NodeId::new(2), true, 4);
        log.record(t(3), NodeId::new(3), false, 4);
        assert_eq!(log.brokers_met(), 2);
        assert_eq!(log.degree(), 3);
    }

    #[test]
    fn prune_drops_old_meetings() {
        let mut log = ElectionLog::new();
        log.record(t(0), NodeId::new(1), true, 4);
        log.record(t(100), NodeId::new(2), true, 4);
        log.prune(t(400), W); // window 300 min: meeting at t=0 expires
        assert_eq!(log.len(), 1);
        assert_eq!(log.brokers_met(), 1);
    }

    #[test]
    fn prune_near_time_zero_is_safe() {
        let mut log = ElectionLog::new();
        log.record(t(0), NodeId::new(1), true, 4);
        log.prune(t(1), W); // now < window: nothing can be older
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn average_broker_degree_uses_latest_report() {
        let mut log = ElectionLog::new();
        log.record(t(0), NodeId::new(1), true, 2);
        log.record(t(1), NodeId::new(1), true, 8); // degree grew
        log.record(t(2), NodeId::new(2), true, 4);
        assert_eq!(log.average_broker_degree(), Some(6.0));
    }

    #[test]
    fn average_broker_degree_none_without_brokers() {
        let mut log = ElectionLog::new();
        log.record(t(0), NodeId::new(1), false, 2);
        assert_eq!(log.average_broker_degree(), None);
        // With no average available, no demotion can happen.
        for i in 0..10 {
            log.record(t(i), NodeId::new(10 + i as u32), false, 1);
        }
        assert_eq!(log.decide(true, 0, 0, 0), ElectionAction::Keep);
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut log = ElectionLog::new();
        assert!(log.is_empty());
        log.record(t(0), NodeId::new(1), false, 0);
        assert!(!log.is_empty());
    }
}
