//! Protocol configuration.

use bsub_traces::SimDuration;

/// How brokers' relay filters decay over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DfMode {
    /// No decay (the paper's "DF = 0" point in Fig. 9): interests
    /// accumulate forever, behavior approaches flooding, limited only
    /// by the TTL.
    Disabled,
    /// A fixed decaying factor in counter units per minute — how the
    /// paper runs Figs. 7–9, computing the value offline from Eq. 5.
    Fixed(f64),
    /// Online adaptation (Section VII-B: "it is straightforward to set
    /// an appropriate DF online by counting the number of nodes a
    /// broker meets in the time window"): each broker counts contacts
    /// within the delay limit and re-derives its DF from Eq. 4/5, plus
    /// the safety constant `delta`.
    Auto {
        /// The paper's Δ of Eq. 5 — a small constant covering the
        /// counter inflation Eq. 4 ignores (M-merges).
        delta: f64,
    },
}

/// How two brokers combine their relay filters — an ablation switch
/// for the paper's Fig. 6 argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeRule {
    /// M-merge (counter-wise maximum) — the paper's choice, which
    /// prevents the bogus-counter feedback loop of Fig. 6.
    #[default]
    Maximum,
    /// A-merge (counter-wise sum) between brokers — the design the
    /// paper warns against: two frequently meeting brokers inflate
    /// each other's counters without any consumer nearby, so they get
    /// selected as forwarders for interests they cannot serve.
    Additive,
}

/// How a broker picks messages to hand to a peer broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardingPolicy {
    /// The paper's preferential query: move only messages the peer's
    /// relay filter scores strictly higher for.
    #[default]
    Preferential,
    /// Ablation: move every message whose key the peer's relay filter
    /// contains at all, ignoring relative counter strength.
    AnyMatch,
}

/// How nodes become brokers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BrokerPolicy {
    /// The paper's decentralized election (Section V-B).
    #[default]
    Elected,
    /// Ablation: a fixed fraction of node ids are brokers from the
    /// start (no social awareness); the fraction is clamped to
    /// `[0, 1]` and at least one broker is always designated.
    Static(f64),
}

/// B-SUB parameters, defaulting to the evaluation settings of
/// Section VII-A.
#[derive(Debug, Clone, PartialEq)]
pub struct BsubConfig {
    /// Bit-vector length `m` of every filter (paper: 256).
    pub bits: usize,
    /// Hash count `k` (paper: 4).
    pub hashes: usize,
    /// Initial counter value `C` set on insertion (paper: 50).
    pub initial_counter: u32,
    /// Maximum copies `ℂ` a producer replicates to brokers (paper: 3).
    pub copies: u32,
    /// Broker-election lower bound `L` (paper: 3).
    pub lower: usize,
    /// Broker-election upper bound `U` (paper: 5).
    pub upper: usize,
    /// Broker-election time window `W` (paper: 5 hours).
    pub window: SimDuration,
    /// Decay behavior of relay filters.
    pub df: DfMode,
    /// The delay budget `D` used by [`DfMode::Auto`] to derive the DF
    /// (the paper sets it to the message TTL).
    pub delay_limit: SimDuration,
    /// Broker↔broker relay combination rule (ablation; paper:
    /// [`MergeRule::Maximum`]).
    pub merge_rule: MergeRule,
    /// Broker↔broker message hand-off policy (ablation; paper:
    /// [`ForwardingPolicy::Preferential`]).
    pub forwarding: ForwardingPolicy,
    /// Broker designation scheme (ablation; paper:
    /// [`BrokerPolicy::Elected`]).
    pub broker_policy: BrokerPolicy,
}

impl BsubConfig {
    /// Starts a builder with the paper's defaults.
    #[must_use]
    pub fn builder() -> BsubConfigBuilder {
        BsubConfigBuilder {
            config: Self::default(),
        }
    }
}

impl Default for BsubConfig {
    fn default() -> Self {
        Self {
            bits: 256,
            hashes: 4,
            initial_counter: 50,
            copies: 3,
            lower: 3,
            upper: 5,
            window: SimDuration::from_hours(5),
            df: DfMode::Auto { delta: 0.005 },
            delay_limit: SimDuration::from_hours(20),
            merge_rule: MergeRule::Maximum,
            forwarding: ForwardingPolicy::Preferential,
            broker_policy: BrokerPolicy::Elected,
        }
    }
}

/// Builder for [`BsubConfig`]; validates on [`BsubConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct BsubConfigBuilder {
    config: BsubConfig,
}

impl BsubConfigBuilder {
    /// Bit-vector length `m`.
    #[must_use]
    pub fn bits(mut self, bits: usize) -> Self {
        self.config.bits = bits;
        self
    }

    /// Hash count `k`.
    #[must_use]
    pub fn hashes(mut self, hashes: usize) -> Self {
        self.config.hashes = hashes;
        self
    }

    /// Initial counter value `C`.
    #[must_use]
    pub fn initial_counter(mut self, c: u32) -> Self {
        self.config.initial_counter = c;
        self
    }

    /// Copy limit `ℂ`.
    #[must_use]
    pub fn copies(mut self, copies: u32) -> Self {
        self.config.copies = copies;
        self
    }

    /// Election lower bound `L`.
    #[must_use]
    pub fn lower(mut self, lower: usize) -> Self {
        self.config.lower = lower;
        self
    }

    /// Election upper bound `U`.
    #[must_use]
    pub fn upper(mut self, upper: usize) -> Self {
        self.config.upper = upper;
        self
    }

    /// Election window `W`.
    #[must_use]
    pub fn window(mut self, window: SimDuration) -> Self {
        self.config.window = window;
        self
    }

    /// Decay mode.
    #[must_use]
    pub fn df(mut self, df: DfMode) -> Self {
        self.config.df = df;
        self
    }

    /// Delay budget `D` for [`DfMode::Auto`].
    #[must_use]
    pub fn delay_limit(mut self, delay_limit: SimDuration) -> Self {
        self.config.delay_limit = delay_limit;
        self
    }

    /// Broker↔broker merge rule (ablation).
    #[must_use]
    pub fn merge_rule(mut self, rule: MergeRule) -> Self {
        self.config.merge_rule = rule;
        self
    }

    /// Broker↔broker hand-off policy (ablation).
    #[must_use]
    pub fn forwarding(mut self, policy: ForwardingPolicy) -> Self {
        self.config.forwarding = policy;
        self
    }

    /// Broker designation scheme (ablation).
    #[must_use]
    pub fn broker_policy(mut self, policy: BrokerPolicy) -> Self {
        self.config.broker_policy = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (`bits`/`hashes`/
    /// `initial_counter`/`copies` zero, `lower > upper`, a negative or
    /// non-finite fixed DF, or a zero window/delay limit).
    #[must_use]
    pub fn build(self) -> BsubConfig {
        let c = self.config;
        assert!(c.bits > 0, "bits must be positive");
        assert!(c.hashes > 0, "hashes must be positive");
        assert!(c.initial_counter > 0, "initial counter must be positive");
        assert!(c.copies > 0, "copy limit must be positive");
        assert!(c.lower <= c.upper, "election bounds must satisfy L <= U");
        assert!(!c.window.is_zero(), "election window must be positive");
        assert!(!c.delay_limit.is_zero(), "delay limit must be positive");
        if let DfMode::Fixed(df) = c.df {
            assert!(
                df >= 0.0 && df.is_finite(),
                "fixed DF must be finite and non-negative"
            );
        }
        if let DfMode::Auto { delta } = c.df {
            assert!(
                delta >= 0.0 && delta.is_finite(),
                "delta must be finite and non-negative"
            );
        }
        if let BrokerPolicy::Static(fraction) = c.broker_policy {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "static broker fraction must be in [0, 1]"
            );
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BsubConfig::default();
        assert_eq!(c.bits, 256);
        assert_eq!(c.hashes, 4);
        assert_eq!(c.initial_counter, 50);
        assert_eq!(c.copies, 3);
        assert_eq!(c.lower, 3);
        assert_eq!(c.upper, 5);
        assert_eq!(c.window, SimDuration::from_hours(5));
    }

    #[test]
    fn builder_overrides() {
        let c = BsubConfig::builder()
            .bits(512)
            .hashes(6)
            .initial_counter(10)
            .copies(5)
            .lower(2)
            .upper(7)
            .window(SimDuration::from_hours(1))
            .df(DfMode::Fixed(0.2))
            .delay_limit(SimDuration::from_hours(10))
            .build();
        assert_eq!(c.bits, 512);
        assert_eq!(c.hashes, 6);
        assert_eq!(c.copies, 5);
        assert_eq!(c.df, DfMode::Fixed(0.2));
    }

    #[test]
    #[should_panic(expected = "L <= U")]
    fn inverted_bounds_rejected() {
        let _ = BsubConfig::builder().lower(6).upper(2).build();
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_fixed_df_rejected() {
        let _ = BsubConfig::builder().df(DfMode::Fixed(-1.0)).build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bits_rejected() {
        let _ = BsubConfig::builder().bits(0).build();
    }

    #[test]
    fn ablation_defaults_follow_paper() {
        let c = BsubConfig::default();
        assert_eq!(c.merge_rule, MergeRule::Maximum);
        assert_eq!(c.forwarding, ForwardingPolicy::Preferential);
        assert_eq!(c.broker_policy, BrokerPolicy::Elected);
    }

    #[test]
    fn ablation_switches_settable() {
        let c = BsubConfig::builder()
            .merge_rule(MergeRule::Additive)
            .forwarding(ForwardingPolicy::AnyMatch)
            .broker_policy(BrokerPolicy::Static(0.3))
            .build();
        assert_eq!(c.merge_rule, MergeRule::Additive);
        assert_eq!(c.forwarding, ForwardingPolicy::AnyMatch);
        assert_eq!(c.broker_policy, BrokerPolicy::Static(0.3));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn static_fraction_out_of_range_rejected() {
        let _ = BsubConfig::builder()
            .broker_policy(BrokerPolicy::Static(1.5))
            .build();
    }
}
