//! Decaying-factor selection (Section VI-A/B, Eq. 4–5).
//!
//! The DF must remove an interest `D` time units after its last
//! insertion, where `D` is the message delay budget (the TTL). A key's
//! counters start at `C` but may be accidentally incremented when
//! other keys hash onto its bits, so Eq. 5 inflates the rate by the
//! expected minimum accidental increment of Eq. 4:
//!
//! `DF = C · (1 + E[min increments]) / D + Δ`

use bsub_bloom::math;

/// Computes the Eq. 5 decaying factor, in counter units per minute.
///
/// - `initial` — the counter value `C` set on insertion;
/// - `keys_collected` — ℕ, the number of keys a broker accumulates
///   within the delay budget (with single-interest nodes, this is the
///   number of consumer contacts in `D`);
/// - `bits` / `hashes` — the filter geometry `m`, `k`;
/// - `delay_limit_mins` — the budget `D`, in minutes;
/// - `delta` — the paper's safety constant Δ.
///
/// # Panics
///
/// Panics if `delay_limit_mins <= 0`, `initial == 0`, or the filter
/// geometry is degenerate.
#[must_use]
pub fn decaying_factor_per_min(
    initial: u32,
    keys_collected: u64,
    bits: usize,
    hashes: usize,
    delay_limit_mins: f64,
    delta: f64,
) -> f64 {
    let expected_min = math::expected_min_increments(keys_collected, bits, hashes);
    math::decaying_factor(initial, expected_min, delay_limit_mins, delta)
}

/// Incrementally tracked DF for [`DfMode::Auto`](crate::DfMode::Auto):
/// caches the last ℕ and only recomputes Eq. 4 when the observed
/// contact count drifts by more than ~10%, since the expectation is
/// smooth in ℕ.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDf {
    initial: u32,
    bits: usize,
    hashes: usize,
    delay_limit_mins: f64,
    delta: f64,
    last_ncol: u64,
    current: f64,
}

impl AdaptiveDf {
    /// Creates an adaptive DF starting from ℕ = 0 (no accidental
    /// increments: `DF = C/D + Δ`).
    ///
    /// # Panics
    ///
    /// Panics if `delay_limit_mins <= 0` or `initial == 0`.
    #[must_use]
    pub fn new(
        initial: u32,
        bits: usize,
        hashes: usize,
        delay_limit_mins: f64,
        delta: f64,
    ) -> Self {
        let current = decaying_factor_per_min(initial, 0, bits, hashes, delay_limit_mins, delta);
        Self {
            initial,
            bits,
            hashes,
            delay_limit_mins,
            delta,
            last_ncol: 0,
            current,
        }
    }

    /// Updates with the latest observed ℕ and returns the (possibly
    /// recomputed) DF in counter units per minute.
    pub fn update(&mut self, keys_collected: u64) -> f64 {
        let drift = keys_collected.abs_diff(self.last_ncol);
        if drift > (self.last_ncol / 10).max(4) {
            self.current = decaying_factor_per_min(
                self.initial,
                keys_collected,
                self.bits,
                self.hashes,
                self.delay_limit_mins,
                self.delta,
            );
            self.last_ncol = keys_collected;
        }
        self.current
    }

    /// The DF currently in effect.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The cached ℕ the current DF was computed for.
    #[must_use]
    pub fn last_ncol(&self) -> u64 {
        self.last_ncol
    }

    /// Restores the `(last_ncol, current)` cache pair captured from a
    /// sibling instance built with the same configuration — the
    /// snapshot seam used when shipping node state between processes.
    /// Both values travel together because `current` was computed *at*
    /// `last_ncol`; restoring only one would desynchronize the drift
    /// test in [`AdaptiveDf::update`].
    pub fn restore_cache(&mut self, last_ncol: u64, current: f64) {
        self.last_ncol = last_ncol;
        self.current = current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_rate_without_collisions() {
        // ℕ = 0 ⇒ DF = C/D + Δ.
        let df = decaying_factor_per_min(50, 0, 256, 4, 600.0, 0.0);
        assert!((df - 50.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn paper_operating_point() {
        // Section VII-B quotes DF = 0.138/min for D = 10 h with C = 50,
        // i.e. C(1 + E[min]) ≈ 82.8 ⇒ E[min] ≈ 0.66, which Eq. 4
        // produces for ℕ ≈ 130 collected keys at k/m = 4/256.
        let df = decaying_factor_per_min(50, 130, 256, 4, 600.0, 0.0);
        assert!(
            (0.1..0.18).contains(&df),
            "df {df} should be near the paper's 0.138"
        );
    }

    #[test]
    fn more_collisions_raise_df() {
        let low = decaying_factor_per_min(50, 10, 256, 4, 600.0, 0.0);
        let high = decaying_factor_per_min(50, 1000, 256, 4, 600.0, 0.0);
        assert!(high > low);
    }

    #[test]
    fn longer_delay_budget_lowers_df() {
        let short = decaying_factor_per_min(50, 100, 256, 4, 60.0, 0.0);
        let long = decaying_factor_per_min(50, 100, 256, 4, 1200.0, 0.0);
        assert!(short > long);
    }

    #[test]
    fn adaptive_caches_small_drift() {
        let mut a = AdaptiveDf::new(50, 256, 4, 600.0, 0.0);
        let base = a.current();
        // ℕ drifting 0 → 3 stays cached.
        let same = a.update(3);
        assert_eq!(same, base);
        // A big jump recomputes and raises the DF.
        let jumped = a.update(500);
        assert!(jumped > base);
        // Small drift around 500 keeps the new value.
        assert_eq!(a.update(510), jumped);
    }

    #[test]
    fn adaptive_initial_value_matches_formula() {
        let a = AdaptiveDf::new(50, 256, 4, 1200.0, 0.01);
        assert!((a.current() - (50.0 / 1200.0 + 0.01)).abs() < 1e-9);
    }
}
