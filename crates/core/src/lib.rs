//! B-SUB: the Bloom-filter-based content-based publish-subscribe
//! protocol for human networks (Zhao & Wu, ICDCS 2010).
//!
//! B-SUB has two logical components (Section V):
//!
//! - **Broker allocation** ([`broker`]) — a decentralized election:
//!   each *user* tracks how many brokers it met inside a time window
//!   `W`; below a lower bound `L` it promotes the next user it meets,
//!   above an upper bound `U` it demotes brokers whose degree falls
//!   below the average of the brokers it knows. Socially active nodes
//!   end up carrying the traffic.
//! - **Pub-sub forwarding** ([`BsubProtocol`]) — interests live in TCBFs:
//!   every consumer keeps a *genuine filter* of its own interests;
//!   every broker keeps a decaying *relay filter*. Consumers A-merge
//!   their genuine filter into brokers they meet (reinforcement);
//!   brokers M-merge each other's relay filters (no bogus counters);
//!   producers push at most `ℂ` copies of a message to matching
//!   brokers; broker-to-broker handoff is ranked by the TCBF's
//!   preferential query; consumers receive messages whose key tests
//!   positive against their genuine filter — the only place a false
//!   positive can surface as a falsely delivered message.
//!
//! The decaying factor (DF) is the protocol's single most important
//! knob (Section VI); [`df`] implements the Eq. 4/5 machinery for
//! setting it from a delay budget, and [`DfMode`] selects between a
//! fixed DF, the online-adaptive variant, and no decay at all.
//!
//! Every protocol state transition — promotion/demotion, filter merge
//! and decay, forwarding decision, injection, expiry — additionally
//! emits a typed [`TraceEvent`] through the run's [`Recorder`]. With
//! the default [`NullRecorder`] the emission closures are never run,
//! so ordinary simulations pay nothing for the instrumentation.
//!
//! # Quickstart
//!
//! ```
//! use bsub_core::{BsubConfig, BsubProtocol, DfMode};
//! use bsub_sim::{Simulation, SimConfig, GeneratedMessage, SubscriptionTable};
//! use bsub_traces::synthetic::SyntheticTrace;
//! use bsub_traces::{NodeId, SimDuration, SimTime};
//!
//! let trace = SyntheticTrace::new("q", 12, SimDuration::from_hours(8), 2000)
//!     .seed(1)
//!     .build();
//! let mut subs = SubscriptionTable::new(12);
//! for n in 0..12 {
//!     subs.subscribe(NodeId::new(n), if n % 2 == 0 { "news" } else { "sports" });
//! }
//! let schedule = vec![GeneratedMessage {
//!     at: SimTime::from_secs(60),
//!     producer: NodeId::new(0),
//!     key: "sports".into(),
//!     size: 120,
//! }];
//! let config = BsubConfig::builder().df(DfMode::Fixed(0.05)).build();
//! let mut bsub = BsubProtocol::new(config, &subs);
//! let sim = Simulation::new(trace, subs.clone(), schedule, SimConfig::default());
//! let report = sim.run(&mut bsub);
//! assert!(report.delivered > 0, "dense little network delivers");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod broker;
mod config;
pub mod df;
mod node;
mod protocol;
pub mod snapshot;

pub use crate::config::{
    BrokerPolicy, BsubConfig, BsubConfigBuilder, DfMode, ForwardingPolicy, MergeRule,
};
pub use crate::node::Role;
pub use crate::protocol::BsubProtocol;

// The observability surface: every emission site in this crate goes
// through these types, so re-export them for callers that only depend
// on `bsub-core`.
pub use bsub_sim::{
    EpochRow, EventLog, MergeKind, NullRecorder, PreferenceValue, Recorder, RunRecorder,
    TimeSeriesRecorder, TraceEvent,
};
