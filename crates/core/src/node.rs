//! Per-node protocol state.

use crate::broker::ElectionLog;
use crate::config::{BsubConfig, DfMode};
use crate::df::AdaptiveDf;
use bsub_bloom::{Decayer, SparseTcbf, Tcbf};
use bsub_sim::{Message, MessageId};
use bsub_traces::{NodeId, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A node's current role in the two-tier B-SUB structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A normal user: produces and consumes, but does not relay.
    User,
    /// A broker: additionally collects subscriptions (relay filter)
    /// and carries messages.
    Broker,
}

/// A message carried by a broker. The payload is shared (`Arc`) with
/// the producer's store and the simulator — moving a message between
/// stores never copies it.
#[derive(Debug, Clone)]
pub(crate) struct Carried {
    pub msg: Arc<Message>,
    /// Consumers this copy was already handed to (suppresses repeated
    /// transfers on later meetings; the metrics would dedup anyway,
    /// but re-sending would waste link budget and inflate the
    /// forwarding count).
    pub delivered_to: HashSet<NodeId>,
}

/// A message in its producer's memory (payload shared, see
/// [`Carried`]).
#[derive(Debug, Clone)]
pub(crate) struct Produced {
    pub msg: Arc<Message>,
    /// Broker copies still allowed (starts at ℂ; Section V-D: "The
    /// message is removed from the producer's memory after its copy
    /// number reaches the limit").
    pub copies_left: u32,
    /// Consumers served directly (direct deliveries are not copies).
    pub delivered_to: HashSet<NodeId>,
}

/// The relay side of a broker.
#[derive(Debug)]
pub(crate) struct RelayState {
    /// The relay filter accumulating consumers' interests.
    pub filter: Tcbf,
    /// Fractional decay accumulator.
    pub decayer: Decayer,
    /// Last instant the filter was decayed to.
    pub last_decay: SimTime,
    /// Contact timestamps within the delay budget (ℕ for Auto DF).
    pub contact_log: VecDeque<SimTime>,
    /// Eq. 4/5 adaptation state (present in Auto mode).
    pub adaptive: Option<AdaptiveDf>,
    /// Ground-truth mirror of the relay filter: an exact key → counter
    /// map maintained with the same A-merge / M-merge / decay
    /// semantics as the TCBF. A real node could not have this (it
    /// would defeat the point of the filter); it exists only so the
    /// metrics can label a relay injection as a pure Bloom false
    /// positive (Fig. 9(d)).
    pub shadow: HashMap<Arc<str>, u32>,
}

impl RelayState {
    pub fn new(config: &BsubConfig, now: SimTime) -> Self {
        let (rate, adaptive) = match config.df {
            DfMode::Disabled => (0.0, None),
            DfMode::Fixed(df) => (df, None),
            DfMode::Auto { delta } => {
                let a = AdaptiveDf::new(
                    config.initial_counter,
                    config.bits,
                    config.hashes,
                    config.delay_limit.as_mins(),
                    delta,
                );
                (a.current(), Some(a))
            }
        };
        Self {
            filter: Tcbf::new(config.bits, config.hashes, config.initial_counter),
            decayer: Decayer::new(rate),
            last_decay: now,
            contact_log: VecDeque::new(),
            adaptive,
            shadow: HashMap::new(),
        }
    }

    /// Applies lazy decay up to `now` (filter and shadow identically).
    /// Returns the units subtracted from every counter (0 when the
    /// accumulated fraction has not reached a whole unit yet).
    pub fn decay_to(&mut self, now: SimTime) -> u32 {
        if now <= self.last_decay {
            return 0;
        }
        let minutes = (now - self.last_decay).as_mins();
        let amount = self.decayer.advance(minutes);
        if amount > 0 {
            self.filter.decay(amount);
            self.shadow.retain(|_, c| {
                *c = c.saturating_sub(amount);
                *c > 0
            });
        }
        self.last_decay = now;
        amount
    }

    /// A-merges a consumer's genuine filter (and mirrors it in the
    /// shadow: each interest key gains the consumer's counter value).
    ///
    /// Takes the consumer's cached sparse view
    /// ([`NodeState::genuine_sparse`]): a genuine filter sets only
    /// `interests × k` of the `m` counters and never changes after
    /// construction, so reinforcement touches just those entries
    /// instead of walking the whole relay filter.
    pub fn absorb_genuine(&mut self, genuine: &SparseTcbf, interests: &[Arc<str>], counter: u32) {
        self.filter
            .a_merge_sparse(genuine)
            .expect("network-wide filter parameters match");
        for key in interests {
            let c = self.shadow.entry(Arc::clone(key)).or_insert(0);
            *c = c.saturating_add(counter);
        }
    }

    /// Combines a peer broker's relay filter (and shadow snapshot)
    /// into this one, under the configured merge rule. The paper uses
    /// [`MergeRule::Maximum`]; [`MergeRule::Additive`] exists to
    /// demonstrate the bogus-counter loop of Fig. 6.
    pub fn absorb_relay(
        &mut self,
        filter: &Tcbf,
        shadow: &HashMap<Arc<str>, u32>,
        rule: crate::config::MergeRule,
    ) {
        match rule {
            crate::config::MergeRule::Maximum => {
                self.filter
                    .m_merge(filter)
                    .expect("network-wide filter parameters match");
                for (key, &c) in shadow {
                    let mine = self.shadow.entry(Arc::clone(key)).or_insert(0);
                    *mine = (*mine).max(c);
                }
            }
            crate::config::MergeRule::Additive => {
                self.filter
                    .a_merge(filter)
                    .expect("network-wide filter parameters match");
                for (key, &c) in shadow {
                    let mine = self.shadow.entry(Arc::clone(key)).or_insert(0);
                    *mine = mine.saturating_add(c);
                }
            }
        }
    }

    /// Second-direction variant of [`RelayState::absorb_relay`]: when
    /// both sides of a broker exchange received each other's snapshot
    /// intact, the merge rules (max and saturating sum alike) are
    /// commutative, so the peer that merged first already computed
    /// exactly the array this side's merge would produce. Adopt its
    /// filter by copy instead of re-running the O(m) combining pass.
    /// The shadow is still merged per-side — it is a small map, and
    /// copying it would allocate.
    pub fn absorb_relay_adopted(
        &mut self,
        peer_merged: &Tcbf,
        shadow: &HashMap<Arc<str>, u32>,
        rule: crate::config::MergeRule,
    ) {
        match rule {
            crate::config::MergeRule::Maximum => {
                self.filter
                    .m_merge_adopt(peer_merged)
                    .expect("network-wide filter parameters match");
                for (key, &c) in shadow {
                    let mine = self.shadow.entry(Arc::clone(key)).or_insert(0);
                    *mine = (*mine).max(c);
                }
            }
            crate::config::MergeRule::Additive => {
                self.filter
                    .a_merge_adopt(peer_merged)
                    .expect("network-wide filter parameters match");
                for (key, &c) in shadow {
                    let mine = self.shadow.entry(Arc::clone(key)).or_insert(0);
                    *mine = mine.saturating_add(c);
                }
            }
        }
    }

    /// Whether the relay *truly* holds `key` (ground truth — a
    /// filter-positive key absent here is a Bloom false positive).
    #[must_use]
    pub fn truly_holds(&self, key: &str) -> bool {
        self.shadow.contains_key(key)
    }

    /// Records a consumer contact for ℕ tracking and, in Auto mode,
    /// re-derives the DF.
    pub fn on_consumer_contact(&mut self, now: SimTime, config: &BsubConfig) {
        self.contact_log.push_back(now);
        let cutoff = now.saturating_since(SimTime::ZERO + config.delay_limit);
        let cutoff = SimTime::ZERO + cutoff;
        while self.contact_log.front().is_some_and(|&t| t < cutoff) {
            self.contact_log.pop_front();
        }
        if let Some(adaptive) = &mut self.adaptive {
            let rate = adaptive.update(self.contact_log.len() as u64);
            self.decayer.set_rate_per_min(rate);
        }
    }
}

/// Everything B-SUB keeps for one node.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub role: Role,
    pub election: ElectionLog,
    /// The consumer's genuine filter (its own interests at counter C).
    pub genuine: Tcbf,
    /// Sparse view of `genuine`, extracted once — the filter is
    /// immutable after construction. Brokers A-merge this on every
    /// meeting, touching only the set counters.
    pub genuine_sparse: SparseTcbf,
    /// Relay state while (or since last being) a broker; `None` for a
    /// node that was never promoted. Demotion drops it.
    pub relay: Option<RelayState>,
    /// Messages carried as a broker. Survives demotion: a demoted
    /// broker still hands its cargo to interested consumers it meets
    /// directly, it just stops accepting new interests and messages.
    pub store: Vec<Carried>,
    /// Messages this node produced and still replicates/serves.
    pub published: Vec<Produced>,
    /// Every message id this node has held in any role (prevents
    /// copy ping-pong between brokers).
    pub seen: HashSet<MessageId>,
}

impl NodeState {
    pub fn new(config: &BsubConfig, interests: &[std::sync::Arc<str>]) -> Self {
        let genuine = Tcbf::from_keys(
            config.bits,
            config.hashes,
            config.initial_counter,
            interests.iter().map(|k| k.as_bytes()),
        );
        let genuine_sparse = genuine.to_sparse();
        Self {
            role: Role::User,
            election: ElectionLog::new(),
            genuine,
            genuine_sparse,
            relay: None,
            store: Vec::new(),
            published: Vec::new(),
            seen: HashSet::new(),
        }
    }

    pub fn is_broker(&self) -> bool {
        self.role == Role::Broker
    }

    /// Promotion: become a broker with a fresh relay filter.
    pub fn promote(&mut self, config: &BsubConfig, now: SimTime) {
        if self.role == Role::Broker {
            return;
        }
        self.role = Role::Broker;
        self.relay = Some(RelayState::new(config, now));
    }

    /// Demotion: back to a user; the relay filter is dropped, carried
    /// messages are kept (see [`NodeState::store`]).
    pub fn demote(&mut self) {
        self.role = Role::User;
        self.relay = None;
    }

    /// Fault injection: the node rejoined after downtime. Buffered
    /// copies and volatile routing state are gone; what survives is
    /// what a restarted device would still know — its role, its own
    /// subscriptions (the genuine filter), and its election history
    /// (social contacts it remembers). A broker restarts with an empty
    /// relay filter and re-learns interests from scratch.
    pub fn reset_volatile(&mut self, config: &BsubConfig, now: SimTime) {
        self.store.clear();
        self.published.clear();
        self.seen.clear();
        self.relay = if self.role == Role::Broker {
            Some(RelayState::new(config, now))
        } else {
            None
        };
    }

    /// Drops expired messages from both stores; returns how many
    /// copies were dropped.
    pub fn prune(&mut self, now: SimTime) -> u64 {
        let before = self.store.len() + self.published.len();
        self.store.retain(|c| !c.msg.is_expired(now));
        self.published.retain(|p| !p.msg.is_expired(now));
        (before - self.store.len() - self.published.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsub_traces::SimDuration;
    use std::sync::Arc;

    fn config() -> BsubConfig {
        BsubConfig::builder().df(DfMode::Fixed(1.0)).build()
    }

    fn interests(keys: &[&str]) -> Vec<Arc<str>> {
        keys.iter().map(|&k| Arc::from(k)).collect()
    }

    #[test]
    fn new_node_is_user_with_genuine_filter() {
        let n = NodeState::new(&config(), &interests(&["news"]));
        assert_eq!(n.role, Role::User);
        assert!(!n.is_broker());
        assert!(n.genuine.contains("news"));
        assert!(!n.genuine.contains("sports"));
        assert!(n.relay.is_none());
    }

    #[test]
    fn promote_then_demote() {
        let cfg = config();
        let mut n = NodeState::new(&cfg, &interests(&["news"]));
        n.promote(&cfg, SimTime::ZERO);
        assert!(n.is_broker());
        assert!(n.relay.is_some());
        n.demote();
        assert!(!n.is_broker());
        assert!(n.relay.is_none());
    }

    #[test]
    fn promote_is_idempotent() {
        let cfg = config();
        let mut n = NodeState::new(&cfg, &interests(&["news"]));
        n.promote(&cfg, SimTime::ZERO);
        let genuine = Tcbf::from_keys(cfg.bits, cfg.hashes, cfg.initial_counter, ["x"]);
        n.relay.as_mut().unwrap().filter.a_merge(&genuine).unwrap();
        n.promote(&cfg, SimTime::from_secs(10));
        assert!(
            n.relay.as_ref().unwrap().filter.contains("x"),
            "re-promotion must not reset an active relay"
        );
    }

    #[test]
    fn relay_decays_lazily() {
        let cfg = config(); // DF = 1/min
        let mut r = RelayState::new(&cfg, SimTime::ZERO);
        let src = Tcbf::from_keys(cfg.bits, cfg.hashes, 50, ["topic"]);
        r.filter.a_merge(&src).unwrap();
        r.decay_to(SimTime::from_mins(10));
        assert_eq!(r.filter.min_counter("topic"), 40);
        r.decay_to(SimTime::from_mins(60));
        assert!(!r.filter.contains("topic"), "fully decayed after 50 min");
    }

    #[test]
    fn decay_to_is_monotone() {
        let cfg = config();
        let mut r = RelayState::new(&cfg, SimTime::from_mins(100));
        let src = Tcbf::from_keys(cfg.bits, cfg.hashes, 50, ["t"]);
        r.filter.a_merge(&src).unwrap();
        // Going "backwards" in time must be a no-op.
        r.decay_to(SimTime::from_mins(50));
        assert_eq!(r.filter.min_counter("t"), 50);
    }

    #[test]
    fn disabled_df_never_decays() {
        let cfg = BsubConfig::builder().df(DfMode::Disabled).build();
        let mut r = RelayState::new(&cfg, SimTime::ZERO);
        let src = Tcbf::from_keys(cfg.bits, cfg.hashes, 50, ["t"]);
        r.filter.a_merge(&src).unwrap();
        r.decay_to(SimTime::from_days(30));
        assert_eq!(r.filter.min_counter("t"), 50);
    }

    #[test]
    fn auto_df_tracks_contacts() {
        let cfg = BsubConfig::builder()
            .df(DfMode::Auto { delta: 0.0 })
            .delay_limit(SimDuration::from_hours(10))
            .build();
        let mut r = RelayState::new(&cfg, SimTime::ZERO);
        let quiet = r.decayer.rate_per_min();
        for i in 0..500 {
            r.on_consumer_contact(SimTime::from_secs(i * 30), &cfg);
        }
        let busy = r.decayer.rate_per_min();
        assert!(
            busy > quiet,
            "busy broker must decay faster: {busy} vs {quiet}"
        );
        assert_eq!(r.contact_log.len(), 500);
    }

    #[test]
    fn auto_df_contact_log_slides() {
        let cfg = BsubConfig::builder()
            .df(DfMode::Auto { delta: 0.0 })
            .delay_limit(SimDuration::from_mins(10))
            .build();
        let mut r = RelayState::new(&cfg, SimTime::ZERO);
        r.on_consumer_contact(SimTime::from_mins(0), &cfg);
        r.on_consumer_contact(SimTime::from_mins(5), &cfg);
        r.on_consumer_contact(SimTime::from_mins(30), &cfg);
        assert_eq!(r.contact_log.len(), 1, "old contacts outside D dropped");
    }

    #[test]
    fn reset_volatile_drops_cargo_keeps_identity() {
        let cfg = config();
        let mut n = NodeState::new(&cfg, &interests(&["news"]));
        n.promote(&cfg, SimTime::ZERO);
        let taught = Tcbf::from_keys(cfg.bits, cfg.hashes, cfg.initial_counter, ["news"]);
        n.relay.as_mut().unwrap().filter.a_merge(&taught).unwrap();
        let msg = Arc::new(Message {
            id: MessageId::new(1),
            key: "news".into(),
            size: 10,
            created: SimTime::ZERO,
            ttl: SimDuration::from_secs(100),
            producer: NodeId::new(0),
        });
        n.store.push(Carried {
            msg: msg.clone(),
            delivered_to: HashSet::new(),
        });
        n.published.push(Produced {
            msg: msg.clone(),
            copies_left: 3,
            delivered_to: HashSet::new(),
        });
        n.seen.insert(msg.id);

        n.reset_volatile(&cfg, SimTime::from_secs(60));

        assert!(n.store.is_empty(), "buffered copies are gone");
        assert!(n.published.is_empty());
        assert!(n.seen.is_empty());
        assert!(n.is_broker(), "role survives the restart");
        let relay = n.relay.as_ref().unwrap();
        assert!(
            !relay.filter.contains("news"),
            "the relay filter restarts empty"
        );
        assert!(n.genuine.contains("news"), "own subscriptions survive");
    }

    #[test]
    fn reset_volatile_on_user_has_no_relay() {
        let cfg = config();
        let mut n = NodeState::new(&cfg, &interests(&["news"]));
        n.reset_volatile(&cfg, SimTime::from_secs(60));
        assert!(n.relay.is_none());
        assert_eq!(n.role, Role::User);
    }

    #[test]
    fn prune_drops_expired() {
        let cfg = config();
        let mut n = NodeState::new(&cfg, &interests(&["k"]));
        let msg = Arc::new(Message {
            id: MessageId::new(1),
            key: "k".into(),
            size: 10,
            created: SimTime::ZERO,
            ttl: SimDuration::from_secs(100),
            producer: NodeId::new(0),
        });
        n.store.push(Carried {
            msg: msg.clone(),
            delivered_to: HashSet::new(),
        });
        n.published.push(Produced {
            msg,
            copies_left: 3,
            delivered_to: HashSet::new(),
        });
        n.prune(SimTime::from_secs(50));
        assert_eq!(n.store.len(), 1);
        n.prune(SimTime::from_secs(101));
        assert!(n.store.is_empty());
        assert!(n.published.is_empty());
    }
}
