//! The B-SUB protocol proper: what happens on every contact
//! (Sections V-C and V-D).
//!
//! Contact processing order, mirroring the paper's narrative:
//!
//! 1. **Housekeeping** — prune expired messages, lazily decay relay
//!    filters to the contact time.
//! 2. **Identity exchange** — 8-byte beacons carrying id, role, and
//!    self-reported degree.
//! 3. **Broker election** — each side that is (still) a *user* applies
//!    the Section V-B rule about its peer. Sides are processed
//!    sequentially (lower id first): a node promoted in this very
//!    contact is a broker by the time its own turn comes, and "brokers
//!    themselves do not perform these operations" — this is what stops
//!    two users from blindly promoting each other into an all-broker
//!    network.
//! 4. **Interest propagation** — each consumer sends its genuine TCBF
//!    (shared-counter wire form) to a broker peer, which A-merges it
//!    (reinforcement); two brokers exchange relay filters (full wire
//!    form) and M-merge them — *after* step 5's forwarding decisions,
//!    as the paper specifies.
//! 5. **Message forwarding** —
//!    a. *producer → consumer* (any pair): the consumer's genuine
//!    filter, with counters ripped, selects matching published
//!    messages for direct delivery (not counted as copies);
//!    b. *producer → broker*: the broker's relay filter (ripped)
//!    selects messages to replicate, up to `ℂ` copies each; a
//!    message whose copies are exhausted leaves the producer's memory;
//!    c. *carrier → consumer*: whoever holds relayed copies hands over
//!    the ones matching the consumer's genuine filter — the only
//!    step where a Bloom false positive becomes a falsely *delivered*
//!    message;
//!    d. *broker ↔ broker*: each message is scored with the
//!    preferential query against the peer's pre-merge relay filter;
//!    positive-preference messages move (largest preference first)
//!    and leave the sender's store.
//!
//! Every filter and message transfer debits the contact's link budget;
//! when the budget runs out, the remaining steps simply don't happen
//! (the paper's motivation for compressing interests in the first
//! place).

use crate::broker::ElectionAction;
use crate::config::BsubConfig;
use crate::node::{Carried, NodeState, Produced, Role};
use bsub_bloom::wire::{self, CounterMode};
use bsub_match::ProbeCache;
use bsub_obs::{self as obs, Counter, Gauge};
use bsub_sim::{
    Link, MergeKind, Message, PreferenceValue, Protocol, SimCtx, SubscriptionTable, TraceEvent,
};
use bsub_traces::{ContactEvent, NodeId, SimTime};
use std::collections::HashSet;
use std::sync::Arc;

/// Bytes of one identity beacon (id + role + degree).
const IDENTITY_BYTES: u64 = 8;

/// How a consumer's genuine filter reaches the serving side in
/// [`BsubProtocol::serve_consumer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterChannel {
    /// Plain consumer: the ripped filter must still be paid for (and
    /// may be corrupted in flight).
    Pay,
    /// A broker already received the filter intact during interest
    /// propagation; serving is free.
    Arrived,
    /// A broker was sent the filter but it was corrupted in flight:
    /// the serving side has nothing to match against this contact.
    Corrupted,
}

/// Fault injection: decides whether a filter transmission arriving at
/// `receiver` is corrupted in flight. Returns `true` when the receiver
/// must discard it (the wire bytes were damaged and failed to decode).
///
/// This routes the *actual* encoded bytes through the sim layer's
/// [`WireCorruption`](bsub_sim::WireCorruption) damage and the real
/// [`wire::decode`] rejection path, so the protocol exercises exactly
/// the validation a deployment would: a truncated or bit-flipped TCBF
/// never poisons receiver state, it is dropped at the codec.
fn corrupted_in_flight(
    ctx: &mut SimCtx<'_>,
    receiver: NodeId,
    filter: &bsub_bloom::Tcbf,
    mode: CounterMode,
    bytes: u64,
) -> bool {
    let Some(damage) = ctx.draw_corruption() else {
        return false;
    };
    let rejected = match wire::encode(filter, mode) {
        Ok(mut encoded) => {
            damage.apply(&mut encoded);
            wire::decode(&encoded).is_err()
        }
        Err(_) => true,
    };
    debug_assert!(rejected, "corrupted encodings must never decode");
    let at = ctx.now();
    ctx.emit(|| TraceEvent::ControlCorrupted {
        at,
        node: receiver,
        bytes,
    });
    rejected
}

/// The B-SUB protocol (implements [`bsub_sim::Protocol`]).
#[derive(Debug)]
pub struct BsubProtocol {
    config: BsubConfig,
    nodes: Vec<NodeState>,
    /// Contacts seen while profiling — schedules the sampled
    /// occupancy walk. Metrics-only state: never read by the
    /// protocol logic, untouched when profiling is off.
    occupancy_probe: u64,
}

impl BsubProtocol {
    /// Creates B-SUB state for every node in `subscriptions`, building
    /// each node's genuine filter from its own interests.
    #[must_use]
    pub fn new(config: BsubConfig, subscriptions: &SubscriptionTable) -> Self {
        let n = subscriptions.node_count();
        let mut nodes: Vec<NodeState> = (0..n)
            .map(|i| NodeState::new(&config, subscriptions.interests_of(NodeId::new(i))))
            .collect();
        if let crate::config::BrokerPolicy::Static(fraction) = config.broker_policy {
            // Evenly spread `ceil(fraction·n)` (at least one) static
            // brokers over the id space — no social awareness.
            let count = ((fraction * f64::from(n)).ceil() as u32).clamp(1, n.max(1));
            for k in 0..count {
                let idx = (u64::from(k) * u64::from(n) / u64::from(count)) as usize;
                nodes[idx].promote(&config, SimTime::ZERO);
            }
        }
        Self {
            config,
            nodes,
            occupancy_probe: 0,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &BsubConfig {
        &self.config
    }

    /// Current number of brokers.
    #[must_use]
    pub fn broker_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_broker()).count()
    }

    /// Current fraction of nodes acting as brokers (the paper keeps
    /// about 30% with L=3, U=5).
    #[must_use]
    pub fn broker_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.broker_count() as f64 / self.nodes.len() as f64
        }
    }

    /// The role of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the network.
    #[must_use]
    pub fn role_of(&self, node: NodeId) -> Role {
        self.nodes[node.index()].role
    }

    /// Total messages currently carried by brokers (diagnostics).
    #[must_use]
    pub fn carried_copies(&self) -> usize {
        self.nodes.iter().map(|n| n.store.len()).sum()
    }

    /// The largest counter value across all relay filters — the
    /// quantity Fig. 6 is about: bounded by reinforcement under
    /// M-merge, runaway under A-merge between brokers.
    #[must_use]
    pub fn max_relay_counter(&self) -> u32 {
        self.nodes
            .iter()
            .filter_map(|n| n.relay.as_ref())
            .map(|r| r.filter.max_counter_value())
            .max()
            .unwrap_or(0)
    }

    /// Test seam for the snapshot codec: direct access to node states.
    #[cfg(test)]
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<NodeState> {
        &mut self.nodes
    }

    /// One [`TraceEvent::Snapshot`] of network-wide gauges: broker
    /// population, buffered copies, mean relay fill / estimated FPR,
    /// and the largest relay counter (the Fig. 6 quantity).
    fn snapshot(&self, at: SimTime) -> TraceEvent {
        let brokers = self.broker_count() as u64;
        let buffered = self
            .nodes
            .iter()
            .map(|n| (n.store.len() + n.published.len()) as u64)
            .sum();
        let relays: Vec<f64> = self
            .nodes
            .iter()
            .filter_map(|n| n.relay.as_ref())
            .map(|r| r.filter.fill_ratio())
            .collect();
        let relay_fill = if relays.is_empty() {
            0.0
        } else {
            relays.iter().sum::<f64>() / relays.len() as f64
        };
        TraceEvent::Snapshot {
            at,
            brokers,
            buffered,
            relay_fill,
            relay_fpr: relay_fill.powi(self.config.hashes as i32),
            max_counter: self.max_relay_counter(),
        }
    }

    /// Current buffer occupancy across all nodes: resident messages
    /// (relayed copies plus unretired publications) and their payload
    /// bytes. Only walked when profiling is active.
    fn buffer_occupancy(&self) -> (u64, u64) {
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        for n in &self.nodes {
            for c in &n.store {
                msgs = msgs.saturating_add(1);
                bytes = bytes.saturating_add(u64::from(c.msg.size));
            }
            for p in &n.published {
                msgs = msgs.saturating_add(1);
                bytes = bytes.saturating_add(u64::from(p.msg.size));
            }
        }
        (msgs, bytes)
    }

    fn housekeeping(&mut self, ctx: &mut SimCtx<'_>, node: NodeId, now: SimTime) {
        let state = &mut self.nodes[node.index()];
        let dropped = state.prune(now);
        state.election.prune(now, self.config.window);
        let mut decayed = 0;
        if let Some(relay) = &mut state.relay {
            decayed = relay.decay_to(now);
        }
        if dropped > 0 {
            ctx.emit(|| TraceEvent::Expired {
                at: now,
                node,
                count: dropped,
            });
        }
        if decayed > 0 {
            // The fill ratio is an O(m) filter walk; with lazy epoch
            // decay it would be the only per-decay walk left, so it is
            // computed inside the closure — recording runs pay it,
            // plain runs decay in O(1).
            let relay = self.nodes[node.index()].relay.as_ref().expect("decayed");
            ctx.emit(|| TraceEvent::FilterDecay {
                at: now,
                node,
                amount: decayed,
                fill: relay.filter.fill_ratio(),
            });
        }
    }

    /// Step 3: sequential election, lower-id side first. A no-op under
    /// the static broker ablation.
    fn election(&mut self, ctx: &mut SimCtx<'_>, now: SimTime, a: NodeId, b: NodeId) {
        if matches!(
            self.config.broker_policy,
            crate::config::BrokerPolicy::Static(_)
        ) {
            return;
        }
        for (me, peer) in [(a, b), (b, a)] {
            let peer_role = self.nodes[peer.index()].role;
            let peer_degree = self.nodes[peer.index()].election.degree();
            let my_state = &mut self.nodes[me.index()];
            let action = if my_state.role == Role::User {
                my_state.election.decide(
                    peer_role == Role::Broker,
                    peer_degree,
                    self.config.lower,
                    self.config.upper,
                )
            } else {
                ElectionAction::Keep
            };
            match action {
                ElectionAction::Promote => {
                    obs::count(Counter::ElectionPromote, 1);
                    self.nodes[peer.index()].promote(&self.config, now);
                    ctx.emit(|| TraceEvent::Promoted {
                        at: now,
                        node: peer,
                        peer: me,
                    });
                }
                ElectionAction::Demote => {
                    obs::count(Counter::ElectionDemote, 1);
                    self.nodes[peer.index()].demote();
                    ctx.emit(|| TraceEvent::Demoted {
                        at: now,
                        node: peer,
                        peer: me,
                    });
                }
                ElectionAction::Keep => {}
            }
            // Record the peer's post-action role: a user that just
            // promoted its peer has, from its own perspective, met a
            // broker — otherwise the L bound never engages and the
            // user keeps promoting everyone it meets.
            let peer_is_broker_now = self.nodes[peer.index()].is_broker();
            self.nodes[me.index()]
                .election
                .record(now, peer, peer_is_broker_now, peer_degree);
        }
    }

    /// Wire cost of a genuine filter: ripped for plain consumers,
    /// shared-counter TCBF when a broker will A-merge it.
    fn genuine_wire_bytes(&self, node: NodeId, with_counters: bool) -> u64 {
        let mode = if with_counters {
            CounterMode::Shared
        } else {
            CounterMode::Ripped
        };
        wire::encoded_len(
            self.nodes[node.index()].genuine.set_bits(),
            self.config.bits,
            mode,
        ) as u64
    }

    /// Step 4 (consumer → broker direction): A-merge `consumer`'s
    /// genuine filter into `broker`'s relay. Charges the wire cost.
    ///
    /// Returns `(continue, arrived)`: whether the contact may proceed
    /// (false only on link-budget exhaustion) and whether the filter
    /// actually arrived intact at a broker peer (false for non-broker
    /// peers and for transmissions corrupted in flight — the bytes were
    /// spent either way).
    fn propagate_interests(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        consumer: NodeId,
        broker: NodeId,
    ) -> (bool, bool) {
        if !self.nodes[broker.index()].is_broker() {
            return (true, false);
        }
        let bytes = self.genuine_wire_bytes(consumer, true);
        if !ctx.send_control(link, bytes) {
            return (false, false);
        }
        if corrupted_in_flight(
            ctx,
            broker,
            &self.nodes[consumer.index()].genuine,
            CounterMode::Shared,
            bytes,
        ) {
            return (true, false);
        }
        let interests = ctx.subscriptions().interests_of(consumer).to_vec();
        let now = ctx.now();
        let (consumer_state, broker_state) = two(&mut self.nodes, consumer.index(), broker.index());
        let relay = broker_state.relay.as_mut().expect("broker has relay");
        relay.absorb_genuine(
            &consumer_state.genuine_sparse,
            &interests,
            self.config.initial_counter,
        );
        relay.on_consumer_contact(now, &self.config);
        // The fill ratio is an O(m) walk per merge; compute it inside
        // the closure so only recording runs pay it (same pattern as
        // FilterDecay in `housekeeping`).
        let relay = &*relay;
        ctx.emit(|| TraceEvent::FilterMerge {
            at: now,
            node: broker,
            kind: MergeKind::Reinforce,
            fill: relay.filter.fill_ratio(),
        });
        (true, true)
    }

    /// Steps 5a + 5c: `src` serves `dst` as a consumer — direct
    /// deliveries from `src`'s own publications, plus handing over any
    /// relayed copies `src` carries. The consumer's genuine filter
    /// (ripped) is what `src` matches against; how it reaches `src` is
    /// the [`FilterChannel`]: paid for here for plain consumers,
    /// already delivered during interest propagation for brokers — or
    /// corrupted in flight, in which case `src` has nothing to match
    /// against and this contact serves nothing (but continues).
    fn serve_consumer(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        probes: &mut ProbeCache,
        src: NodeId,
        dst: NodeId,
        channel: FilterChannel,
    ) -> bool {
        let has_content = !self.nodes[src.index()].published.is_empty()
            || !self.nodes[src.index()].store.is_empty();
        if !has_content {
            return true;
        }
        match channel {
            FilterChannel::Arrived => {}
            FilterChannel::Corrupted => return true,
            FilterChannel::Pay => {
                let bytes = self.genuine_wire_bytes(dst, false);
                if !ctx.send_control(link, bytes) {
                    return false;
                }
                if corrupted_in_flight(
                    ctx,
                    src,
                    &self.nodes[dst.index()].genuine,
                    CounterMode::Ripped,
                    bytes,
                ) {
                    return true;
                }
            }
        }
        let dst_bloom = self.nodes[dst.index()].genuine.to_bloom();
        let now = ctx.now();

        // 5a: direct producer → consumer (not counted as copies).
        let src_state = &mut self.nodes[src.index()];
        for produced in &mut src_state.published {
            obs::count(Counter::MatchChecked, 1);
            if produced.msg.is_expired(now)
                || produced.delivered_to.contains(&dst)
                || produced.msg.producer == dst
                || !probes.contains(
                    produced.msg.id.raw(),
                    produced.msg.key.as_bytes(),
                    &dst_bloom,
                )
            {
                continue;
            }
            if !ctx.transfer_message(link, &produced.msg) {
                return false;
            }
            obs::count(Counter::MatchHit, 1);
            produced.delivered_to.insert(dst);
            let _ = ctx.deliver(dst, &produced.msg);
        }

        // 5c: relayed copies → consumer.
        for carried in &mut src_state.store {
            obs::count(Counter::MatchChecked, 1);
            if carried.msg.is_expired(now)
                || carried.delivered_to.contains(&dst)
                || carried.msg.producer == dst
                || !probes.contains(carried.msg.id.raw(), carried.msg.key.as_bytes(), &dst_bloom)
            {
                continue;
            }
            if !ctx.transfer_message(link, &carried.msg) {
                return false;
            }
            obs::count(Counter::MatchHit, 1);
            carried.delivered_to.insert(dst);
            let _ = ctx.deliver(dst, &carried.msg);
        }
        true
    }

    /// Step 5b: `producer` replicates matching publications to
    /// `broker`, bounded by the per-message copy limit ℂ. The broker's
    /// relay filter travels counter-less ("we reduce the communication
    /// overhead by ripping the counters from the TCBFs").
    fn replicate_to_broker(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        probes: &mut ProbeCache,
        producer: NodeId,
        broker: NodeId,
    ) -> bool {
        if !self.nodes[broker.index()].is_broker() {
            return true;
        }
        if self.nodes[producer.index()].published.is_empty() {
            return true;
        }
        let relay_bits = self.nodes[broker.index()]
            .relay
            .as_ref()
            .expect("broker has relay")
            .filter
            .set_bits();
        let bytes = wire::encoded_len(relay_bits, self.config.bits, CounterMode::Ripped) as u64;
        if !ctx.send_control(link, bytes) {
            return false;
        }
        {
            let relay_filter = &self.nodes[broker.index()]
                .relay
                .as_ref()
                .expect("broker has relay")
                .filter;
            if corrupted_in_flight(ctx, producer, relay_filter, CounterMode::Ripped, bytes) {
                // The producer can't see the broker's interests this
                // contact; no replication, but the contact continues.
                return true;
            }
        }
        let now = ctx.now();
        let (producer_state, broker_state) = two(&mut self.nodes, producer.index(), broker.index());
        let relay_bloom = broker_state
            .relay
            .as_ref()
            .expect("broker has relay")
            .filter
            .to_bloom();
        let mut budget_hit = false;
        for produced in &mut producer_state.published {
            obs::count(Counter::MatchChecked, 1);
            if produced.copies_left == 0
                || produced.msg.is_expired(now)
                || broker_state.seen.contains(&produced.msg.id)
                || !probes.contains(
                    produced.msg.id.raw(),
                    produced.msg.key.as_bytes(),
                    &relay_bloom,
                )
            {
                continue;
            }
            if !ctx.transfer_message(link, &produced.msg) {
                budget_hit = true;
                break;
            }
            obs::count(Counter::MatchHit, 1);
            // Ground truth: was this acceptance a pure Bloom FP?
            let fp = !broker_state
                .relay
                .as_ref()
                .expect("broker")
                .truly_holds(&produced.msg.key);
            produced.copies_left -= 1;
            broker_state.seen.insert(produced.msg.id);
            broker_state.store.push(Carried {
                msg: Arc::clone(&produced.msg),
                delivered_to: HashSet::new(),
            });
            ctx.record_injection(broker, &produced.msg, fp);
        }
        // "The message is removed from the producer's memory after its
        // copy number reaches the limit."
        producer_state.published.retain(|p| p.copies_left > 0);
        !budget_hit
    }

    /// Step 5d: preferential broker ↔ broker handoff, then M-merge.
    fn broker_exchange(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        a: NodeId,
        b: NodeId,
    ) -> bool {
        if !(self.nodes[a.index()].is_broker() && self.nodes[b.index()].is_broker()) {
            return true;
        }
        // Exchange relay filters (full counters — the preferential
        // query needs them).
        let cost = |node: &NodeState| {
            wire::encoded_len(
                node.relay.as_ref().expect("broker").filter.set_bits(),
                self.config.bits,
                CounterMode::Full,
            ) as u64
        };
        let cost_a = cost(&self.nodes[a.index()]);
        let cost_b = cost(&self.nodes[b.index()]);
        if !ctx.send_control(link, cost_a + cost_b) {
            return false;
        }

        // Snapshot the pre-merge filters (and shadows): forwarding
        // decisions use them, and both directions must see the same
        // state.
        let relay_a = self.nodes[a.index()].relay.as_ref().expect("broker");
        let relay_b = self.nodes[b.index()].relay.as_ref().expect("broker");
        let filter_a = relay_a.filter.clone();
        let filter_b = relay_b.filter.clone();
        let shadow_a = relay_a.shadow.clone();
        let shadow_b = relay_b.shadow.clone();

        // Each direction's filter transmission can be corrupted
        // independently; a side that received a damaged filter neither
        // hands off (it can't score preferences) nor merges.
        let a_received_b = !corrupted_in_flight(ctx, a, &filter_b, CounterMode::Full, cost_b);
        let b_received_a = !corrupted_in_flight(ctx, b, &filter_a, CounterMode::Full, cost_a);

        let mut ok = true;
        for (src, dst, src_filter, dst_filter, received) in [
            (a, b, &filter_a, &filter_b, a_received_b),
            (b, a, &filter_b, &filter_a, b_received_a),
        ] {
            // `src` needs `dst`'s filter to score the handoff.
            if !received {
                continue;
            }
            if !self.handoff(ctx, link, src, dst, src_filter, dst_filter) {
                ok = false;
                break;
            }
        }

        // Merge after forwarding ("make message forwarding decisions
        // before merging their relay filters"). M-merge per the paper;
        // the Additive rule exists to reproduce Fig. 6's pathology.
        let rule = self.config.merge_rule;
        let kind = match rule {
            crate::config::MergeRule::Maximum => MergeKind::RelayMax,
            crate::config::MergeRule::Additive => MergeKind::RelayAdditive,
        };
        let now = ctx.now();
        let (state_a, state_b) = two(&mut self.nodes, a.index(), b.index());
        if a_received_b {
            let relay_a = state_a.relay.as_mut().expect("broker");
            relay_a.absorb_relay(&filter_b, &shadow_b, rule);
        }
        if b_received_a {
            let relay_b = state_b.relay.as_mut().expect("broker");
            if a_received_b {
                // Both directions succeeded: each side merges the
                // other's pre-contact snapshot, and the merge rules
                // are commutative, so side a (which merged first)
                // already holds exactly the array side b would
                // compute. Adopt it by copy instead of re-running the
                // O(m) combining pass. Nothing mutates either relay
                // filter between the snapshots and this point — the
                // handoff only moves messages.
                let relay_a = state_a.relay.as_ref().expect("broker");
                relay_b.absorb_relay_adopted(&relay_a.filter, &shadow_a, rule);
            } else {
                relay_b.absorb_relay(&filter_a, &shadow_a, rule);
            }
        }
        // Fill ratios are O(m) walks; compute them inside the closures
        // so only recording runs pay them.
        if a_received_b {
            let relay_a = state_a.relay.as_ref().expect("broker");
            ctx.emit(|| TraceEvent::FilterMerge {
                at: now,
                node: a,
                kind,
                fill: relay_a.filter.fill_ratio(),
            });
        }
        if b_received_a {
            let relay_b = state_b.relay.as_ref().expect("broker");
            ctx.emit(|| TraceEvent::FilterMerge {
                at: now,
                node: b,
                kind,
                fill: relay_b.filter.fill_ratio(),
            });
        }
        ok
    }

    /// Moves the positive-preference messages of `src` to `dst`,
    /// best-preference first.
    fn handoff(
        &mut self,
        ctx: &mut SimCtx<'_>,
        link: &mut Link,
        src: NodeId,
        dst: NodeId,
        src_filter: &bsub_bloom::Tcbf,
        dst_filter: &bsub_bloom::Tcbf,
    ) -> bool {
        let now = ctx.now();
        let mut candidates: Vec<(usize, bsub_bloom::Preference)> = Vec::new();
        {
            let src_state = &self.nodes[src.index()];
            let dst_state = &self.nodes[dst.index()];
            for (i, carried) in src_state.store.iter().enumerate() {
                if carried.msg.is_expired(now) || dst_state.seen.contains(&carried.msg.id) {
                    continue;
                }
                match self.config.forwarding {
                    crate::config::ForwardingPolicy::Preferential => {
                        let pref = dst_filter
                            .preference(src_filter, carried.msg.key.as_bytes())
                            .expect("parameters match");
                        if pref.is_positive() {
                            candidates.push((i, pref));
                        }
                    }
                    crate::config::ForwardingPolicy::AnyMatch => {
                        if dst_filter.contains(carried.msg.key.as_bytes()) {
                            candidates.push((i, bsub_bloom::Preference::Relative(0)));
                        }
                    }
                }
            }
        }
        // "Those messages that have the largest positive preference are
        // forwarded first."
        candidates.sort_by_key(|&(_, pref)| std::cmp::Reverse(pref));

        let preferential = matches!(
            self.config.forwarding,
            crate::config::ForwardingPolicy::Preferential
        );
        let mut moved: Vec<usize> = Vec::new();
        let mut ok = true;
        for (idx, pref) in candidates {
            let msg = Arc::clone(&self.nodes[src.index()].store[idx].msg);
            if !ctx.transfer_message(link, &msg) {
                ok = false;
                break;
            }
            ctx.emit(|| TraceEvent::ForwardingDecision {
                at: now,
                from: src,
                to: dst,
                msg: msg.id,
                preference: preferential.then_some(match pref {
                    bsub_bloom::Preference::Relative(v) => PreferenceValue {
                        absolute: false,
                        value: v,
                    },
                    bsub_bloom::Preference::Absolute(v) => PreferenceValue {
                        absolute: true,
                        value: v,
                    },
                }),
            });
            moved.push(idx);
        }
        // "Messages are removed from brokers' memory after being
        // forwarded" — move, don't copy.
        moved.sort_unstable_by(|x, y| y.cmp(x)); // remove from the back
        for idx in moved {
            let carried = self.nodes[src.index()].store.swap_remove(idx);
            let dst_state = &mut self.nodes[dst.index()];
            dst_state.seen.insert(carried.msg.id);
            dst_state.store.push(carried);
        }
        ok
    }
}

impl Protocol for BsubProtocol {
    fn name(&self) -> &str {
        "B-SUB"
    }

    fn on_message(&mut self, _ctx: &mut SimCtx<'_>, msg: &Arc<Message>) {
        let state = &mut self.nodes[msg.producer.index()];
        state.seen.insert(msg.id);
        state.published.push(Produced {
            msg: Arc::clone(msg),
            copies_left: self.config.copies,
            delivered_to: HashSet::new(),
        });
    }

    fn on_node_reset(&mut self, ctx: &mut SimCtx<'_>, node: NodeId) {
        let now = ctx.now();
        let Self { config, nodes, .. } = self;
        nodes[node.index()].reset_volatile(config, now);
    }

    /// B-SUB satisfies the partitioned-ownership contract: all mutable
    /// state lives in per-node [`NodeState`]s and every hook touches
    /// only the nodes it is handed. (The whole-network snapshot and
    /// occupancy walks are observer-gated and never run on the sharded
    /// path, which requires an inactive recorder and profiler.)
    fn shard_fork(&self) -> Option<Box<dyn Protocol>> {
        Some(Box::new(Self {
            config: self.config.clone(),
            nodes: Vec::new(),
            occupancy_probe: 0,
        }))
    }

    fn take_node(&mut self, node: NodeId) -> Option<Box<dyn std::any::Any + Send>> {
        let slot = self.nodes.get_mut(node.index())?;
        let placeholder = NodeState::new(&self.config, &[]);
        Some(Box::new(std::mem::replace(slot, placeholder)))
    }

    fn put_node(&mut self, node: NodeId, state: Box<dyn std::any::Any + Send>) {
        let state = *state
            .downcast::<NodeState>()
            .expect("a checked-out B-SUB node state");
        if self.nodes.len() <= node.index() {
            let config = &self.config;
            self.nodes
                .resize_with(node.index() + 1, || NodeState::new(config, &[]));
        }
        self.nodes[node.index()] = state;
    }

    /// Serializes `node`'s full state for cross-process shipping (the
    /// networked runtime's analogue of [`Protocol::take_node`]); see
    /// the `snapshot` module for the format and exactness contract.
    fn export_node(&self, node: NodeId) -> Option<Vec<u8>> {
        let state = self.nodes.get(node.index())?;
        Some(crate::snapshot::encode_node(state))
    }

    fn import_node(&mut self, node: NodeId, bytes: &[u8]) -> bool {
        let Self { config, nodes, .. } = self;
        let Some(state) = nodes.get_mut(node.index()) else {
            return false;
        };
        crate::snapshot::decode_node_into(state, config, bytes)
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: &ContactEvent, link: &mut Link) {
        let (a, b) = (contact.a, contact.b);
        let now = ctx.now();

        // 1. Housekeeping.
        self.housekeeping(ctx, a, now);
        self.housekeeping(ctx, b, now);

        // Profiling: refresh the buffer-occupancy gauges on a sampled
        // schedule (first contact, then every
        // `OCCUPANCY_SAMPLE_PERIOD`-th) — the walk is
        // O(nodes × buffered messages), too heavy for every contact.
        // Guarded like the snapshot emission below, so unprofiled runs
        // never pay for it.
        if obs::is_active() {
            if self
                .occupancy_probe
                .is_multiple_of(obs::OCCUPANCY_SAMPLE_PERIOD)
            {
                let (msgs, bytes) = self.buffer_occupancy();
                obs::gauge_set(Gauge::BufferMsgs, msgs);
                obs::gauge_set(Gauge::BufferBytes, bytes);
            }
            self.occupancy_probe = self.occupancy_probe.wrapping_add(1);
        }

        // 2. Identity beacons.
        if !ctx.send_control(link, 2 * IDENTITY_BYTES) {
            return;
        }

        // 3. Election (may change roles for the rest of the contact).
        self.election(ctx, now, a, b);

        // 4. Interest propagation (consumer → broker, both directions).
        let a_is_broker = self.nodes[a.index()].is_broker();
        let b_is_broker = self.nodes[b.index()].is_broker();
        // `propagate_interests(x, y)` sends x's filter to broker y, so
        // its `arrived` flag tells whether *y* can later serve x.
        let (go, b_got_a) = self.propagate_interests(ctx, link, a, b);
        if !go {
            return;
        }
        let (go, a_got_b) = self.propagate_interests(ctx, link, b, a);
        if !go {
            return;
        }

        // 5a + 5c: serve each side as a consumer. The genuine filter
        // already traveled (with counters) if the serving side is a
        // broker — unless it was corrupted in flight.
        //
        // A contact probes the same message against up to two filters
        // (a genuine bloom in 5a/5c, a relay bloom in 5b); the probe
        // cache hashes each message key once per contact and replays
        // the digest pair — the decisions are bit-identical to direct
        // `contains` calls.
        let mut probes = ProbeCache::new(self.nodes[a.index()].genuine.hasher());
        let channel = |server_is_broker: bool, arrived: bool| {
            if !server_is_broker {
                FilterChannel::Pay
            } else if arrived {
                FilterChannel::Arrived
            } else {
                FilterChannel::Corrupted
            }
        };
        if !self.serve_consumer(ctx, link, &mut probes, a, b, channel(a_is_broker, a_got_b)) {
            return;
        }
        if !self.serve_consumer(ctx, link, &mut probes, b, a, channel(b_is_broker, b_got_a)) {
            return;
        }

        // 5b: producers replicate to brokers.
        if !self.replicate_to_broker(ctx, link, &mut probes, a, b) {
            return;
        }
        if !self.replicate_to_broker(ctx, link, &mut probes, b, a) {
            return;
        }

        // 5d: broker ↔ broker preferential handoff + M-merge.
        let _ = self.broker_exchange(ctx, link, a, b);

        // Observability: one network-wide gauge sample per contact. The
        // O(n) walk happens inside the closure, so a NullRecorder run
        // never pays for it.
        ctx.emit(|| self.snapshot(now));
    }
}

/// Mutably borrows two distinct elements of a slice.
fn two<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "need two distinct nodes");
    if i < j {
        let (lo, hi) = slice.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DfMode;
    use bsub_sim::{GeneratedMessage, SimConfig, Simulation};
    use bsub_traces::{ContactTrace, SimDuration};

    fn contact(a: u32, b: u32, start_s: u64, end_s: u64) -> ContactEvent {
        ContactEvent::new(
            NodeId::new(a),
            NodeId::new(b),
            SimTime::from_secs(start_s),
            SimTime::from_secs(end_s),
        )
    }

    fn message(at_s: u64, producer: u32, key: &str) -> GeneratedMessage {
        GeneratedMessage {
            at: SimTime::from_secs(at_s),
            producer: NodeId::new(producer),
            key: key.into(),
            size: 100,
        }
    }

    fn config() -> BsubConfig {
        BsubConfig::builder().df(DfMode::Fixed(0.01)).build()
    }

    #[test]
    fn first_contact_promotes_one_side() {
        // Two users meet: the lower-id side elects first and promotes
        // the peer; the peer, now a broker, does not elect.
        let trace = ContactTrace::new("p", 2, vec![contact(0, 1, 10, 100)]).unwrap();
        let subs = SubscriptionTable::new(2);
        let sched = Vec::new();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let _ = sim.run(&mut bsub);
        assert_eq!(bsub.role_of(NodeId::new(0)), Role::User);
        assert_eq!(bsub.role_of(NodeId::new(1)), Role::Broker);
        assert_eq!(bsub.broker_count(), 1);
    }

    #[test]
    fn direct_producer_consumer_delivery() {
        let trace = ContactTrace::new("d", 2, vec![contact(0, 1, 100, 400)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 1, "direct delivery on first meeting");
        assert!(report.control_bytes > 0, "filters cost control bytes");
    }

    #[test]
    fn three_hop_relay_through_broker() {
        // 3 = broker candidate. Schedule:
        //   t=100  consumer(2) meets 3   (3 promoted; learns interest)
        //   t=500  producer(0) meets 3   (copy pushed to broker)
        //   t=900  3 meets consumer(2)   (delivery)
        // 0 and 2 never meet.
        let trace = ContactTrace::new(
            "relay",
            4,
            vec![
                contact(2, 3, 100, 300),
                contact(0, 3, 500, 700),
                contact(2, 3, 900, 1100),
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 1, "broker-relayed delivery");
        assert_eq!(report.forwardings, 2, "producer→broker and broker→consumer");
    }

    /// Replication shares the payload: the broker's carried copy and
    /// the producer's published entry point at the same allocation.
    #[test]
    fn replication_shares_payload_allocation() {
        let trace = ContactTrace::new(
            "share",
            4,
            vec![contact(2, 3, 100, 300), contact(0, 3, 500, 700)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs.clone(), sched, SimConfig::default());
        let mut bsub = BsubProtocol::new(config(), &subs);
        let _ = sim.run(&mut bsub);
        let produced = &bsub.nodes[0].published[0];
        let carried = &bsub.nodes[3].store[0];
        assert!(
            Arc::ptr_eq(&produced.msg, &carried.msg),
            "producer and broker share one payload allocation"
        );
    }

    #[test]
    fn copy_limit_respected() {
        // One producer meets four brokers whose relay filters all match;
        // with ℂ = 3 only three replications may happen. Consumer 0
        // promotes nodes 2..=5 on first meeting (L = 4 here so all four
        // get promoted) and teaches them its interest.
        let mut events = Vec::new();
        for (i, broker) in (2..=5).enumerate() {
            events.push(contact(
                0,
                broker,
                50 + i as u64 * 100,
                100 + i as u64 * 100,
            ));
        }
        // Producer 1 then meets each broker.
        for (i, broker) in (2..=5).enumerate() {
            events.push(contact(
                1,
                broker,
                1000 + i as u64 * 100,
                1050 + i as u64 * 100,
            ));
        }
        let trace = ContactTrace::new("copies", 6, events).unwrap();
        let mut subs = SubscriptionTable::new(6);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];
        let cfg = BsubConfig::builder()
            .df(DfMode::Fixed(0.01))
            .lower(4)
            .upper(6)
            .build();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(cfg, &subs);
        let report = sim.run(&mut bsub);
        // All four brokers exist and match, but ℂ = 3 caps replication.
        assert_eq!(bsub.broker_count(), 4);
        assert_eq!(
            report.forwardings, 3,
            "exactly ℂ broker replications, producer never meets the consumer"
        );
        assert_eq!(bsub.carried_copies(), 3);
    }

    #[test]
    fn decay_forgets_stale_interests() {
        // Broker learns an interest, then a very long gap passes before
        // the producer arrives: with a fast DF the interest is gone and
        // no replication happens. (The lower-id side of a first
        // user-user contact promotes the higher id, so node 2 becomes
        // the broker when consumer 0 meets it.)
        let trace = ContactTrace::new(
            "decay",
            3,
            vec![
                contact(0, 2, 100, 200),         // consumer 0 → broker 2
                contact(1, 2, 100_000, 100_100), // producer 1 meets 2 much later
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];
        let fast_decay = BsubConfig::builder().df(DfMode::Fixed(2.0)).build();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(fast_decay, &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.forwardings, 0, "decayed interest stops replication");
    }

    #[test]
    fn no_decay_keeps_interests_forever() {
        let trace = ContactTrace::new(
            "nodecay",
            3,
            vec![
                contact(0, 2, 100, 200),         // consumer 0 promotes/teaches 2
                contact(1, 2, 100_000, 100_100), // producer 1 pushes a copy
                contact(0, 2, 150_000, 150_100), // broker 2 delivers
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(3);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];
        let cfg = BsubConfig::builder().df(DfMode::Disabled).build();
        let sim_cfg = SimConfig {
            ttl: SimDuration::from_days(30),
            ..SimConfig::default()
        };
        let sim = Simulation::new(trace.clone(), subs.clone(), sched.clone(), sim_cfg);
        let mut bsub = BsubProtocol::new(cfg, &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 1, "without decay the relay remembers");
    }

    #[test]
    fn broker_to_broker_preferential_handoff() {
        // Broker 2 gets the message but never meets the consumer again;
        // broker 3 meets the consumer often (reinforced interest) and
        // then meets broker 2, which should hand the message over.
        // Consumer is node 0 (lowest id: it elects, it never gets
        // promoted itself once it has met enough brokers).
        let trace = ContactTrace::new(
            "handoff",
            4,
            vec![
                contact(0, 3, 100, 200),   // consumer 0 promotes+teaches broker 3
                contact(0, 3, 300, 400),   // reinforcement
                contact(0, 2, 500, 600),   // consumer 0 promotes+teaches broker 2 once
                contact(1, 2, 700, 800),   // producer 1 → broker 2 (copy)
                contact(2, 3, 900, 1000),  // brokers meet: prefer 3
                contact(0, 3, 1200, 1300), // broker 3 delivers
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 1);
        // producer→2, 2→3 handoff, 3→consumer: 3 forwardings. (The
        // first 0↔3 contacts predate the message.)
        assert_eq!(report.forwardings, 3);
    }

    #[test]
    fn handoff_removes_from_sender() {
        // After a broker hands a message off, its store is empty —
        // Section V-D: "Messages are removed from brokers' memory
        // after being forwarded."
        let trace = ContactTrace::new(
            "move",
            4,
            vec![
                contact(0, 3, 100, 200), // consumer 0 teaches broker 3 (twice)
                contact(0, 3, 250, 350),
                contact(0, 2, 400, 500), // consumer 0 teaches broker 2 once
                contact(1, 2, 600, 700), // producer 1 → broker 2
                contact(2, 3, 800, 900), // handoff 2 → 3
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let _ = sim.run(&mut bsub);
        assert_eq!(
            bsub.carried_copies(),
            1,
            "exactly one copy lives on (moved, not duplicated)"
        );
    }

    #[test]
    fn bandwidth_exhaustion_stops_gracefully() {
        let trace = ContactTrace::new("bw", 2, vec![contact(0, 1, 100, 101)]).unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim_cfg = SimConfig {
            bytes_per_sec: 10, // 10-byte budget: identity beacons fail
            ..SimConfig::default()
        };
        let sim = Simulation::new(trace.clone(), subs.clone(), sched.clone(), sim_cfg);
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.forwardings, 0);
        assert!(report.total_bytes() <= 10);
    }

    #[test]
    fn no_duplicate_direct_delivery_across_contacts() {
        let trace = ContactTrace::new(
            "dup",
            2,
            vec![contact(0, 1, 100, 200), contact(0, 1, 500, 600)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(2);
        subs.subscribe(NodeId::new(1), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.forwardings, 1, "delivered_to suppresses resend");
    }

    #[test]
    fn broker_fraction_stays_partial_on_dense_trace() {
        use bsub_traces::synthetic::SyntheticTrace;
        let trace = SyntheticTrace::new("frac", 40, SimDuration::from_hours(24), 8000)
            .seed(3)
            .build();
        let subs = SubscriptionTable::new(40);
        let sched = Vec::new();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let mut bsub = BsubProtocol::new(config(), &subs);
        let _ = sim.run(&mut bsub);
        let frac = bsub.broker_fraction();
        assert!(
            frac > 0.05 && frac < 0.95,
            "election should stabilize between extremes, got {frac}"
        );
    }

    #[test]
    fn two_helper() {
        let mut v = vec![10, 20, 30];
        let (a, b) = two(&mut v, 2, 1);
        assert_eq!((*a, *b), (30, 20));
    }

    #[test]
    fn election_demotes_low_degree_broker() {
        // With L = U = 1: node 0 promotes node 5, later learns of the
        // better-connected broker 6, and on the next meeting demotes 5
        // (degree 1, below the average of the brokers 0 knows).
        let trace = ContactTrace::new(
            "demote",
            8,
            vec![
                contact(1, 6, 100, 150), // 1 promotes 6
                contact(2, 6, 200, 250), // 6's degree grows to 2
                contact(3, 6, 300, 350), // ... and 3
                contact(0, 5, 500, 550), // 0 promotes 5 (degree 0 at beacon time)
                contact(0, 6, 600, 650), // 0 now knows two brokers
                contact(0, 5, 700, 750), // brokers_met > U: demote low-degree 5
            ],
        )
        .unwrap();
        let subs = SubscriptionTable::new(8);
        let cfg = BsubConfig::builder()
            .df(DfMode::Fixed(0.01))
            .lower(1)
            .upper(1)
            .build();
        let mut bsub = BsubProtocol::new(cfg, &subs);
        let sched = Vec::new();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let _ = sim.run(&mut bsub);
        assert_eq!(bsub.role_of(NodeId::new(5)), Role::User, "demoted");
        assert_eq!(bsub.role_of(NodeId::new(6)), Role::Broker, "kept");
    }

    #[test]
    fn demoted_broker_still_delivers_cargo() {
        // Node 5 collects a copy as a broker, is demoted, and still
        // hands the message to the consumer it later meets — carried
        // messages survive demotion (only the relay filter is
        // dropped).
        let trace = ContactTrace::new(
            "cargo",
            8,
            vec![
                contact(4, 5, 50, 100),  // consumer 4 promotes+teaches 5
                contact(7, 5, 200, 250), // producer 7 pushes the copy
                // Build up broker 6 (degree 5, above 5's degree of 2)
                // and demote 5, seen from node 4: L = U = 1.
                contact(1, 6, 300, 350),
                contact(2, 6, 400, 450),
                contact(3, 6, 500, 550),
                contact(0, 6, 560, 570),
                contact(6, 7, 580, 590),
                contact(4, 6, 600, 650),
                contact(4, 5, 700, 750), // demotion contact — and delivery
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(8);
        subs.subscribe(NodeId::new(4), "news");
        let cfg = BsubConfig::builder()
            .df(DfMode::Fixed(0.001))
            .lower(1)
            .upper(1)
            .build();
        let mut bsub = BsubProtocol::new(cfg, &subs);
        let sched = vec![message(10, 7, "news")];
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let report = sim.run(&mut bsub);
        assert_eq!(bsub.role_of(NodeId::new(5)), Role::User, "5 was demoted");
        assert_eq!(report.delivered, 1, "cargo outlives the brokership");
    }

    #[test]
    fn static_broker_policy_skips_election() {
        use crate::config::BrokerPolicy;
        let trace = ContactTrace::new(
            "static",
            10,
            vec![contact(0, 1, 10, 100), contact(2, 3, 200, 300)],
        )
        .unwrap();
        let subs = SubscriptionTable::new(10);
        let cfg = BsubConfig::builder()
            .df(DfMode::Fixed(0.01))
            .broker_policy(BrokerPolicy::Static(0.3))
            .build();
        let mut bsub = BsubProtocol::new(cfg, &subs);
        assert_eq!(bsub.broker_count(), 3, "ceil(0.3 * 10)");
        let before: Vec<Role> = (0..10).map(|i| bsub.role_of(NodeId::new(i))).collect();
        let sched = Vec::new();
        let sim = Simulation::new(
            trace.clone(),
            subs.clone(),
            sched.clone(),
            SimConfig::default(),
        );
        let _ = sim.run(&mut bsub);
        let after: Vec<Role> = (0..10).map(|i| bsub.role_of(NodeId::new(i))).collect();
        assert_eq!(before, after, "roles frozen under the static policy");
    }

    #[test]
    fn static_policy_always_has_a_broker() {
        use crate::config::BrokerPolicy;
        let subs = SubscriptionTable::new(5);
        let cfg = BsubConfig::builder()
            .broker_policy(BrokerPolicy::Static(0.0))
            .build();
        let bsub = BsubProtocol::new(cfg, &subs);
        assert_eq!(bsub.broker_count(), 1);
    }

    #[test]
    fn additive_merge_rule_inflates_counters() {
        use crate::config::MergeRule;
        // Fig. 6's pathology, end to end: two brokers meet repeatedly;
        // under A-merge their counters for a once-seen interest blow
        // up, under M-merge they stay bounded by the reinforcement.
        let mut events = vec![contact(0, 3, 10, 50)]; // consumer 0 teaches broker 3 once
        events.push(contact(0, 2, 60, 90)); // consumer 0 teaches broker 2 once
        for i in 0..20 {
            events.push(contact(2, 3, 200 + i * 100, 250 + i * 100)); // brokers churn
        }
        let trace = ContactTrace::new("fig6", 4, events).unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(0), "news");
        let sched = Vec::new();

        let run = |rule: MergeRule| {
            let cfg = BsubConfig::builder()
                .df(DfMode::Disabled)
                .merge_rule(rule)
                .build();
            let mut bsub = BsubProtocol::new(cfg, &subs);
            let sim = Simulation::new(
                trace.clone(),
                subs.clone(),
                sched.clone(),
                SimConfig::default(),
            );
            let _ = sim.run(&mut bsub);
            bsub.max_relay_counter()
        };
        let bounded = run(MergeRule::Maximum);
        let inflated = run(MergeRule::Additive);
        assert_eq!(bounded, 50, "M-merge: one insertion stays at C");
        assert!(
            inflated >= 50 * 20,
            "A-merge between brokers compounds: {inflated}"
        );
    }

    #[test]
    fn total_corruption_never_poisons_state() {
        use bsub_sim::fault::PPM;
        use bsub_sim::FaultSpec;
        // Same schedule as `three_hop_relay_through_broker`, but every
        // filter transmission is corrupted in flight. The codec rejects
        // each damaged encoding: nothing merges, nothing is forwarded
        // or delivered — and nothing panics or poisons receiver state.
        let trace = ContactTrace::new(
            "corrupt",
            4,
            vec![
                contact(2, 3, 100, 300),
                contact(0, 3, 500, 700),
                contact(2, 3, 900, 1100),
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs.clone(), sched, SimConfig::default())
            .with_faults(FaultSpec::none().with_corruption(PPM));
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.delivered, 0, "no filter ever arrives intact");
        assert_eq!(report.forwardings, 0);
        assert!(report.control_bytes > 0, "the wire bytes were still spent");
        // Election ran (beacons carry no filters), so a broker exists —
        // but its relay never absorbed a corrupted transmission.
        assert!(bsub.broker_count() > 0);
        let absorbed = bsub
            .nodes
            .iter()
            .filter_map(|n| n.relay.as_ref())
            .any(|r| r.filter.fill_ratio() > 0.0);
        assert!(!absorbed, "corrupted filters must never merge");
    }

    #[test]
    fn churn_reset_drops_brokered_cargo() {
        use bsub_sim::FaultSpec;
        // The three-hop relay schedule, with churn tuned (by seed
        // search) so broker 3 goes down after receiving the copy at
        // t=500s and is back up for the t=900s consumer contact: the
        // rejoin reset dropped the copy, so nothing is delivered even
        // though every contact still happens.
        let period = SimDuration::from_secs(100);
        let n = NodeId::new;
        let spec = (0..10_000u64)
            .map(|seed| {
                FaultSpec::none()
                    .with_seed(seed)
                    .with_churn(300_000, period)
            })
            .find(|s| {
                // Producer 0 must keep its publication (no reset before
                // its only contact in cell 5); consumer 2 must show up
                // at cells 1 and 9; broker 3 must be up for all three
                // contacts and keep its learned relay until the copy
                // arrives, then go down at least once before cell 9.
                (0..=5).all(|c| !s.node_down(n(0), c))
                    && !s.node_down(n(2), 1)
                    && !s.node_down(n(2), 9)
                    && (1..=5).all(|c| !s.node_down(n(3), c))
                    && !s.node_down(n(3), 9)
                    && (6..=8).any(|c| s.node_down(n(3), c))
            })
            .expect("some seed yields the up/down/up pattern");
        let trace = ContactTrace::new(
            "churn",
            4,
            vec![
                contact(2, 3, 100, 300),
                contact(0, 3, 500, 700),
                contact(2, 3, 900, 1100),
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim =
            Simulation::new(trace, subs.clone(), sched, SimConfig::default()).with_faults(spec);
        let mut bsub = BsubProtocol::new(config(), &subs);
        let report = sim.run(&mut bsub);
        assert_eq!(report.forwardings, 1, "the replication itself happened");
        assert_eq!(report.delivered, 0, "the rejoin reset dropped the copy");
        assert_eq!(bsub.carried_copies(), 0);
        assert_eq!(
            bsub.role_of(NodeId::new(3)),
            Role::Broker,
            "the role survives the restart"
        );
    }

    /// Node state survives a fork → take → put round trip, including
    /// roles and carried cargo.
    #[test]
    fn shard_checkout_round_trip_preserves_state() {
        use bsub_sim::Protocol as _;
        let trace = ContactTrace::new(
            "rt",
            4,
            vec![contact(2, 3, 100, 300), contact(0, 3, 500, 700)],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(2), "news");
        let sched = vec![message(10, 0, "news")];
        let sim = Simulation::new(trace, subs.clone(), sched, SimConfig::default());
        let mut bsub = BsubProtocol::new(config(), &subs);
        let _ = sim.run(&mut bsub);
        assert_eq!(bsub.carried_copies(), 1, "broker 3 holds the copy");
        let role_before = bsub.role_of(NodeId::new(3));

        let mut fork = bsub.shard_fork().expect("B-SUB shards");
        let state = bsub.take_node(NodeId::new(3)).expect("take");
        fork.put_node(NodeId::new(3), state);
        assert_eq!(bsub.carried_copies(), 0, "placeholder left behind");
        let state = fork.take_node(NodeId::new(3)).expect("take back");
        bsub.put_node(NodeId::new(3), state);
        assert_eq!(bsub.carried_copies(), 1);
        assert_eq!(bsub.role_of(NodeId::new(3)), role_before);
    }

    /// The sharded runner reproduces the serial report exactly, on a
    /// dense trace with elections, relays, and handoffs — and for a
    /// prime shard count that splits components unevenly.
    #[test]
    fn sharded_run_matches_serial_report() {
        use bsub_traces::synthetic::SyntheticTrace;
        let trace = SyntheticTrace::new("shardeq", 40, SimDuration::from_hours(24), 4000)
            .seed(9)
            .build();
        let mut subs = SubscriptionTable::new(40);
        for i in 0..40 {
            if i % 3 == 0 {
                subs.subscribe(NodeId::new(i), "news");
            }
        }
        let sched: Vec<GeneratedMessage> = (0..20)
            .map(|k| message(100 + k * 900, (k % 5) as u32, "news"))
            .collect();
        let sim = Simulation::new(trace, subs.clone(), sched, SimConfig::default());
        let mut serial = BsubProtocol::new(config(), &subs);
        let expected = sim.run(&mut serial);
        for shards in [2usize, 3, 7] {
            let mut bsub = BsubProtocol::new(config(), &subs);
            let got = sim.clone().with_shards(shards).run(&mut bsub);
            assert_eq!(got, expected, "S={shards} must match serial");
            assert_eq!(bsub.broker_count(), serial.broker_count());
            assert_eq!(bsub.carried_copies(), serial.carried_copies());
            assert_eq!(bsub.max_relay_counter(), serial.max_relay_counter());
        }
    }

    /// Fault draws are shard-placement-independent: churn cells travel
    /// with their node, loss/truncation/corruption draws are pure
    /// functions of the contact index — so a fully faulted run is also
    /// identical for every shard count.
    #[test]
    fn sharded_run_matches_serial_under_faults() {
        use bsub_sim::fault::PPM;
        use bsub_sim::FaultSpec;
        use bsub_traces::synthetic::SyntheticTrace;
        let trace = SyntheticTrace::new("shardfault", 30, SimDuration::from_hours(24), 3000)
            .seed(4)
            .build();
        let mut subs = SubscriptionTable::new(30);
        for i in 0..30 {
            if i % 4 == 1 {
                subs.subscribe(NodeId::new(i), "news");
            }
        }
        let sched: Vec<GeneratedMessage> = (0..15)
            .map(|k| message(100 + k * 1200, (k % 7) as u32, "news"))
            .collect();
        let spec = FaultSpec::none()
            .with_seed(21)
            .with_churn(PPM / 5, SimDuration::from_hours(2))
            .with_contact_loss(PPM / 10)
            .with_truncation(PPM / 10)
            .with_corruption(PPM / 10);
        let sim =
            Simulation::new(trace, subs.clone(), sched, SimConfig::default()).with_faults(spec);
        let mut serial = BsubProtocol::new(config(), &subs);
        let expected = sim.run(&mut serial);
        assert!(expected.contacts > 0);
        for shards in [2usize, 5, 7] {
            let mut bsub = BsubProtocol::new(config(), &subs);
            let got = sim.clone().with_shards(shards).run(&mut bsub);
            assert_eq!(got, expected, "faulted S={shards} must match serial");
        }
    }

    #[test]
    fn any_match_forwarding_ping_pongs_less_selectively() {
        use crate::config::ForwardingPolicy;
        // Broker 3 has the stronger (reinforced) interest; broker 2
        // carries the message. Under AnyMatch the hand-off happens even
        // when 2's own counters are at least as strong — i.e. strictly
        // more messages move than under Preferential.
        let trace = ContactTrace::new(
            "policy",
            4,
            vec![
                contact(0, 2, 100, 200), // consumer teaches broker 2
                contact(0, 3, 300, 400), // consumer teaches broker 3 (equal strength)
                contact(1, 2, 500, 600), // producer 1 → broker 2
                contact(2, 3, 700, 800), // brokers meet
            ],
        )
        .unwrap();
        let mut subs = SubscriptionTable::new(4);
        subs.subscribe(NodeId::new(0), "news");
        let sched = vec![message(10, 1, "news")];

        let carried_by = |policy: ForwardingPolicy| {
            let cfg = BsubConfig::builder()
                .df(DfMode::Fixed(0.001))
                .forwarding(policy)
                .build();
            let mut bsub = BsubProtocol::new(cfg, &subs);
            let sim = Simulation::new(
                trace.clone(),
                subs.clone(),
                sched.clone(),
                SimConfig::default(),
            );
            let _ = sim.run(&mut bsub);
            (bsub.nodes[2].store.len(), bsub.nodes[3].store.len())
        };
        // Equal counters ⇒ preference 0 ⇒ no move under Preferential.
        assert_eq!(carried_by(ForwardingPolicy::Preferential), (1, 0));
        // AnyMatch moves it regardless.
        assert_eq!(carried_by(ForwardingPolicy::AnyMatch), (0, 1));
    }
}
