//! Cross-process serialization of one node's complete B-SUB state.
//!
//! The networked runtime (`bsub-net`) checks node state out to the
//! worker process that executes a contact and back afterwards, exactly
//! like the sharded runner does in-process with `take_node`/`put_node`
//! — except that across a socket the state must travel as
//! self-contained bytes. This module implements that codec on top of
//! the shared primitives in [`bsub_sim::snapshot`].
//!
//! Exactness is the contract: importing an exported snapshot must make
//! the receiving node behave *identically* to the original — every
//! future filter bit, counter, election decision, and forwarding
//! choice. Consequences for the format:
//!
//! - The relay filter travels in the wire codec's lossless
//!   [`CounterMode::Wide`] form (full `u32` counters, CRC-checked) —
//!   the radio-facing modes saturate counters at 255, which would
//!   silently corrupt a heavily reinforced relay. The real insertion
//!   value `C` and merged flag are carried alongside, because decoded
//!   filters are otherwise marked as generic merge sources.
//! - The decayer's fractional residual and the adaptive DF's
//!   `(ℕ, DF)` cache travel as exact IEEE-754 bit patterns.
//! - The genuine filter is *not* shipped: it is a pure function of the
//!   node's subscriptions (which every process knows) and never
//!   changes, so the importer keeps its own copy.
//! - Hash-ordered collections are canonically sorted on export, so
//!   equal states encode to equal bytes.

use crate::broker::ElectionLog;
use crate::config::{BsubConfig, DfMode};
use crate::node::{Carried, NodeState, Produced, RelayState, Role};
use bsub_bloom::wire::{self, CounterMode};
use bsub_bloom::{Decayer, KeyHasher, Tcbf};
use bsub_match::{IndexState, MatchIndex, MatchParams, SubscriberState};
use bsub_sim::snapshot::{SnapReader, SnapWriter};
use bsub_sim::MessageId;
use bsub_traces::NodeId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Snapshot format version; bump on any layout change.
const VERSION: u8 = 1;

/// Match-index snapshot format version; bump on any layout change.
const INDEX_VERSION: u8 = 1;

/// Encodes a live [`MatchIndex`]'s state — parameters, decay epoch,
/// and every subscriber in tier-member order — into a self-contained
/// byte snapshot a restarted broker can [`decode_match_index`] from.
///
/// Exactness follows the [`bsub_match::IndexState`] contract: the
/// decoded index produces identical match results (members, positions,
/// strengths, deadlines, tier layout all preserved; tier pools come
/// back compacted).
#[must_use]
pub fn encode_match_index(index: &MatchIndex) -> Vec<u8> {
    let state = index.export_state();
    let mut w = SnapWriter::new();
    w.u8(INDEX_VERSION);
    w.u64(state.params.member_bits as u64);
    w.u64(state.params.member_hashes as u64);
    w.u32(state.params.initial);
    w.u64(state.params.tier_size as u64);
    w.u64(state.params.tier_budget_bytes as u64);
    w.u64(state.params.keys_per_subscriber_hint as u64);
    w.f64(state.params.compact_ratio);
    w.u64(state.epoch);
    w.u32(state.subs.len() as u32);
    for sub in &state.subs {
        w.u64(sub.id);
        w.u64(sub.tier as u64);
        w.u64(sub.born);
        match sub.deadline {
            None => w.flag(false),
            Some(d) => {
                w.flag(true);
                w.u64(d);
            }
        }
        w.u32(sub.digests.len() as u32);
        for &(a, b) in &sub.digests {
            w.u64(a);
            w.u64(b);
        }
    }
    w.into_bytes()
}

/// Rebuilds a [`MatchIndex`] from an [`encode_match_index`] snapshot.
/// Returns `None` on any malformed input: truncation, trailing bytes,
/// version mismatch, degenerate parameters, duplicate subscriber ids,
/// or a tier over `tier_size`.
#[must_use]
pub fn decode_match_index(bytes: &[u8]) -> Option<MatchIndex> {
    let mut r = SnapReader::new(bytes);
    if r.u8()? != INDEX_VERSION {
        return None;
    }
    let params = MatchParams {
        member_bits: usize::try_from(r.u64()?).ok()?,
        member_hashes: usize::try_from(r.u64()?).ok()?,
        initial: r.u32()?,
        tier_size: usize::try_from(r.u64()?).ok()?,
        tier_budget_bytes: usize::try_from(r.u64()?).ok()?,
        keys_per_subscriber_hint: usize::try_from(r.u64()?).ok()?,
        compact_ratio: r.f64()?,
    };
    if params.member_bits == 0
        || params.member_hashes == 0
        || params.initial == 0
        || params.tier_size == 0
        || !params.compact_ratio.is_finite()
        || params.compact_ratio <= 0.0
    {
        return None;
    }
    let epoch = r.u64()?;
    let count = r.u32()?;
    let mut subs = Vec::with_capacity(count as usize);
    let mut seen = HashSet::new();
    let mut tier_fill: HashMap<usize, usize> = HashMap::new();
    for _ in 0..count {
        let id = r.u64()?;
        if !seen.insert(id) {
            return None;
        }
        let tier = usize::try_from(r.u64()?).ok()?;
        let fill = tier_fill.entry(tier).or_insert(0);
        *fill += 1;
        if *fill > params.tier_size {
            return None;
        }
        let born = r.u64()?;
        if born > epoch {
            return None;
        }
        let deadline = if r.flag()? { Some(r.u64()?) } else { None };
        let digest_count = r.u32()?;
        let mut digests = Vec::with_capacity(digest_count as usize);
        for _ in 0..digest_count {
            digests.push((r.u64()?, r.u64()?));
        }
        subs.push(SubscriberState {
            id,
            digests,
            born,
            deadline,
            tier,
        });
    }
    if !r.is_empty() {
        return None; // trailing garbage
    }
    Some(MatchIndex::from_state(&IndexState {
        params,
        epoch,
        subs,
    }))
}

/// Encodes `state` into a self-contained byte snapshot.
pub(crate) fn encode_node(state: &NodeState) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u8(VERSION);
    w.u8(match state.role {
        Role::User => 0,
        Role::Broker => 1,
    });

    // Election log, oldest meeting first (replay order).
    w.u32(state.election.len() as u32);
    for (at, peer, was_broker, degree) in state.election.meetings() {
        w.time(at);
        w.u32(peer.index() as u32);
        w.flag(was_broker);
        w.u64(degree as u64);
    }

    // Relay state (brokers, and demoted brokers keep none).
    match &state.relay {
        None => w.flag(false),
        Some(relay) => {
            w.flag(true);
            let encoded = wire::encode(&relay.filter, CounterMode::Wide)
                .expect("relay filter fits the wire envelope");
            w.bytes(&encoded);
            w.u32(relay.filter.initial_counter());
            w.flag(relay.filter.is_merged());
            w.f64(relay.decayer.rate_per_min());
            w.f64(relay.decayer.residual());
            w.time(relay.last_decay);
            w.u32(relay.contact_log.len() as u32);
            for &t in &relay.contact_log {
                w.time(t);
            }
            match &relay.adaptive {
                None => w.flag(false),
                Some(a) => {
                    w.flag(true);
                    w.u64(a.last_ncol());
                    w.f64(a.current());
                }
            }
            let mut shadow: Vec<(&Arc<str>, u32)> =
                relay.shadow.iter().map(|(k, &c)| (k, c)).collect();
            shadow.sort_by(|a, b| a.0.cmp(b.0));
            w.u32(shadow.len() as u32);
            for (key, c) in shadow {
                w.str(key);
                w.u32(c);
            }
        }
    }

    // Carried copies (Vec order is behavioral — preserved as-is).
    w.u32(state.store.len() as u32);
    for carried in &state.store {
        w.message(&carried.msg);
        write_node_set(&mut w, &carried.delivered_to);
    }

    // Own publications.
    w.u32(state.published.len() as u32);
    for produced in &state.published {
        w.message(&produced.msg);
        w.u32(produced.copies_left);
        write_node_set(&mut w, &produced.delivered_to);
    }

    // Seen message ids.
    let mut seen: Vec<u64> = state.seen.iter().map(|id| id.raw()).collect();
    seen.sort_unstable();
    w.u32(seen.len() as u32);
    for id in seen {
        w.u64(id);
    }

    w.into_bytes()
}

/// Overwrites everything in `state` except the genuine filter (and its
/// sparse view) from a snapshot produced by [`encode_node`] under the
/// same `config`. Returns `false` — leaving `state` untouched — on any
/// malformed or config-incompatible input.
pub(crate) fn decode_node_into(state: &mut NodeState, config: &BsubConfig, bytes: &[u8]) -> bool {
    let Some(parsed) = parse(config, bytes) else {
        return false;
    };
    state.role = parsed.role;
    state.election = parsed.election;
    state.relay = parsed.relay;
    state.store = parsed.store;
    state.published = parsed.published;
    state.seen = parsed.seen;
    true
}

/// Everything [`decode_node_into`] replaces, parsed up-front so a
/// malformed snapshot rejects without half-mutating the node.
struct Parsed {
    role: Role,
    election: ElectionLog,
    relay: Option<RelayState>,
    store: Vec<Carried>,
    published: Vec<Produced>,
    seen: HashSet<MessageId>,
}

fn parse(config: &BsubConfig, bytes: &[u8]) -> Option<Parsed> {
    let mut r = SnapReader::new(bytes);
    if r.u8()? != VERSION {
        return None;
    }
    let role = match r.u8()? {
        0 => Role::User,
        1 => Role::Broker,
        _ => return None,
    };

    let mut election = ElectionLog::new();
    for _ in 0..r.u32()? {
        let at = r.time()?;
        let peer = NodeId::new(r.u32()?);
        let was_broker = r.flag()?;
        let degree = usize::try_from(r.u64()?).ok()?;
        election.record(at, peer, was_broker, degree);
    }

    let relay = if r.flag()? {
        let decoded = wire::decode(r.bytes()?).ok()?.into_tcbf()?;
        let initial = r.u32()?;
        let merged = r.flag()?;
        if decoded.bit_len() != config.bits || decoded.hash_count() != config.hashes {
            return None;
        }
        let filter = Tcbf::from_parts(
            decoded.counter_values(),
            config.hashes,
            initial,
            KeyHasher::default(),
            merged,
        );
        let rate = r.f64()?;
        let residual = r.f64()?;
        if !(0.0..1.0).contains(&residual) {
            return None;
        }
        let decayer = Decayer::restore(rate, residual);
        let last_decay = r.time()?;
        let mut contact_log = VecDeque::new();
        for _ in 0..r.u32()? {
            contact_log.push_back(r.time()?);
        }
        let adaptive = if r.flag()? {
            let last_ncol = r.u64()?;
            let current = r.f64()?;
            let DfMode::Auto { delta } = config.df else {
                return None; // snapshot/config DF-mode mismatch
            };
            let mut a = crate::df::AdaptiveDf::new(
                config.initial_counter,
                config.bits,
                config.hashes,
                config.delay_limit.as_mins(),
                delta,
            );
            a.restore_cache(last_ncol, current);
            Some(a)
        } else {
            None
        };
        let mut shadow = HashMap::new();
        for _ in 0..r.u32()? {
            let key: Arc<str> = Arc::from(r.str()?);
            let c = r.u32()?;
            shadow.insert(key, c);
        }
        Some(RelayState {
            filter,
            decayer,
            last_decay,
            contact_log,
            adaptive,
            shadow,
        })
    } else {
        None
    };

    let mut store = Vec::new();
    for _ in 0..r.u32()? {
        let msg = Arc::new(r.message()?);
        let delivered_to = read_node_set(&mut r)?;
        store.push(Carried { msg, delivered_to });
    }

    let mut published = Vec::new();
    for _ in 0..r.u32()? {
        let msg = Arc::new(r.message()?);
        let copies_left = r.u32()?;
        let delivered_to = read_node_set(&mut r)?;
        published.push(Produced {
            msg,
            copies_left,
            delivered_to,
        });
    }

    let mut seen = HashSet::new();
    for _ in 0..r.u32()? {
        seen.insert(MessageId::new(r.u64()?));
    }

    if !r.is_empty() {
        return None; // trailing garbage
    }
    Some(Parsed {
        role,
        election,
        relay,
        store,
        published,
        seen,
    })
}

fn write_node_set(w: &mut SnapWriter, set: &HashSet<NodeId>) {
    let mut ids: Vec<u32> = set.iter().map(|n| n.index() as u32).collect();
    ids.sort_unstable();
    w.u32(ids.len() as u32);
    for id in ids {
        w.u32(id);
    }
}

fn read_node_set(r: &mut SnapReader<'_>) -> Option<HashSet<NodeId>> {
    let mut set = HashSet::new();
    for _ in 0..r.u32()? {
        set.insert(NodeId::new(r.u32()?));
    }
    Some(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BsubProtocol;
    use bsub_sim::{GeneratedMessage, Protocol as _, SimConfig, Simulation, SubscriptionTable};
    use bsub_traces::synthetic::SyntheticTrace;
    use bsub_traces::SimDuration;

    /// Runs a dense little network long enough to exercise every state
    /// component: elections, relays with decay + adaptation, carried
    /// cargo, publications, and seen sets.
    fn worked_protocol() -> (BsubProtocol, SubscriptionTable) {
        let trace = SyntheticTrace::new("snap", 16, SimDuration::from_hours(12), 2500)
            .seed(11)
            .build();
        let mut subs = SubscriptionTable::new(16);
        for i in 0..16 {
            subs.subscribe(NodeId::new(i), if i % 2 == 0 { "news" } else { "sports" });
        }
        let sched: Vec<GeneratedMessage> = (0..12)
            .map(|k| GeneratedMessage {
                at: bsub_traces::SimTime::from_secs(100 + k * 600),
                producer: NodeId::new((k % 5) as u32),
                key: if k % 2 == 0 { "sports" } else { "news" }.into(),
                size: 120,
            })
            .collect();
        let sim = Simulation::new(trace, subs.clone(), sched, SimConfig::default());
        let mut bsub = BsubProtocol::new(BsubConfig::default(), &subs);
        let report = sim.run(&mut bsub);
        assert!(report.delivered > 0, "the run must do real work");
        assert!(bsub.broker_count() > 0);
        (bsub, subs)
    }

    /// export → import into a *fresh* sibling → re-export must be
    /// byte-identical, for every node — the canonical-ordering and
    /// exactness guarantees in one test.
    #[test]
    fn export_import_reexport_is_byte_identical() {
        let (bsub, subs) = worked_protocol();
        let mut sibling = BsubProtocol::new(bsub.config().clone(), &subs);
        for i in 0..16 {
            let node = NodeId::new(i);
            let snap = bsub.export_node(node).expect("B-SUB exports");
            assert!(sibling.import_node(node, &snap), "import accepts");
            let again = sibling.export_node(node).expect("re-export");
            assert_eq!(snap, again, "node {i} snapshot must round-trip exactly");
        }
        assert_eq!(sibling.broker_count(), bsub.broker_count());
        assert_eq!(sibling.carried_copies(), bsub.carried_copies());
        assert_eq!(sibling.max_relay_counter(), bsub.max_relay_counter());
    }

    /// The relay filter round-trips losslessly even when counters
    /// exceed the radio wire format's 255 saturation point.
    #[test]
    fn relay_counters_above_255_survive() {
        let subs = SubscriptionTable::new(2);
        let config = BsubConfig::default();
        let mut a = BsubProtocol::new(config.clone(), &subs);
        // Promote node 0 and reinforce one key far past 255.
        let strong = Tcbf::from_keys(config.bits, config.hashes, 300, ["hot"]);
        {
            let state = &mut a.nodes_mut()[0];
            state.promote(&config, bsub_traces::SimTime::ZERO);
            let relay = state.relay.as_mut().unwrap();
            relay.filter.a_merge(&strong).unwrap();
            relay.filter.a_merge(&strong).unwrap();
        }
        let before = a.max_relay_counter();
        assert!(before > 255, "test needs a saturating-range counter");

        let snap = a.export_node(NodeId::new(0)).unwrap();
        let mut b = BsubProtocol::new(config, &subs);
        assert!(b.import_node(NodeId::new(0), &snap));
        assert_eq!(b.max_relay_counter(), before, "no 255 saturation");
    }

    #[test]
    fn malformed_snapshots_reject_without_mutation() {
        let (bsub, subs) = worked_protocol();
        let node = NodeId::new(3);
        let good = bsub.export_node(node).unwrap();

        let mut sibling = BsubProtocol::new(bsub.config().clone(), &subs);
        assert!(sibling.import_node(node, &good));
        let baseline = sibling.export_node(node).unwrap();

        // Truncations and version/role corruption must all reject.
        assert!(!sibling.import_node(node, &good[..good.len() - 1]));
        assert!(!sibling.import_node(node, &[]));
        let mut bad = good.clone();
        bad[0] = VERSION + 1;
        assert!(!sibling.import_node(node, &bad));
        let mut bad = good.clone();
        bad[1] = 9; // invalid role
        assert!(!sibling.import_node(node, &bad));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(!sibling.import_node(node, &trailing));

        // And none of the rejects touched the node.
        assert_eq!(sibling.export_node(node).unwrap(), baseline);
    }

    /// Builds a worked match index: several tiers, deadline and
    /// plain subscriptions, decay in flight, and churn-driven
    /// compactions.
    fn worked_index() -> MatchIndex {
        let mut idx = MatchIndex::new(bsub_match::MatchParams {
            member_bits: 512,
            member_hashes: 4,
            initial: 8,
            tier_size: 4,
            tier_budget_bytes: 4 * 1024,
            keys_per_subscriber_hint: 2,
            compact_ratio: 0.5,
        });
        for id in 0..20u64 {
            let keys = vec![format!("topic-{}", id % 6), format!("extra-{id}")];
            if id % 3 == 0 {
                idx.subscribe_until(id, &keys, 50 + id);
            } else {
                idx.subscribe(id, &keys);
            }
            if id % 4 == 0 {
                idx.decay(1);
            }
        }
        for id in (0..20u64).step_by(5) {
            idx.unsubscribe(id);
        }
        idx
    }

    /// Snapshot → decode → re-snapshot must be byte-identical, and the
    /// decoded index must match events exactly like the original.
    #[test]
    fn match_index_snapshot_round_trips() {
        let idx = worked_index();
        let snap = encode_match_index(&idx);
        let back = decode_match_index(&snap).expect("decodes");
        assert_eq!(encode_match_index(&back), snap, "re-export byte-identical");
        assert_eq!(back.live_count(), idx.live_count());
        assert_eq!(back.epoch(), idx.epoch());
        let events: Vec<bsub_match::Event> = (0..8)
            .map(|t| bsub_match::Event::new(format!("topic-{t}")))
            .collect();
        assert_eq!(
            back.match_events(&events).matches,
            idx.match_events(&events).matches,
            "decoded index must match identically"
        );
        for id in 0..20u64 {
            assert_eq!(back.strength(id), idx.strength(id), "strength of {id}");
            assert_eq!(back.deadline(id), idx.deadline(id), "deadline of {id}");
        }
    }

    #[test]
    fn malformed_match_index_snapshots_reject() {
        let snap = encode_match_index(&worked_index());
        assert!(decode_match_index(&snap).is_some());
        assert!(decode_match_index(&[]).is_none());
        assert!(decode_match_index(&snap[..snap.len() - 1]).is_none());
        let mut trailing = snap.clone();
        trailing.push(0);
        assert!(decode_match_index(&trailing).is_none());
        let mut bad_version = snap.clone();
        bad_version[0] = INDEX_VERSION + 1;
        assert!(decode_match_index(&bad_version).is_none());
    }

    #[test]
    fn import_out_of_range_node_rejects() {
        let (bsub, subs) = worked_protocol();
        let snap = bsub.export_node(NodeId::new(0)).unwrap();
        let mut sibling = BsubProtocol::new(bsub.config().clone(), &subs);
        assert!(!sibling.import_node(NodeId::new(999), &snap));
        assert_eq!(bsub.export_node(NodeId::new(999)), None);
    }
}
