//! Property tests for the Section V-B election log: randomized meeting
//! histories are replayed into [`ElectionLog`] and into a naive mirror
//! model (a plain `Vec` of meetings re-scanned per query), and every
//! derived statistic and decision must agree. The deterministic cases
//! pin the boundaries the simulator leans on: window-pruning cutoffs,
//! the empty window, a single known broker, and stale degree reports.

use bsub_bloom::SplitMix64;
use bsub_core::broker::{ElectionAction, ElectionLog};
use bsub_traces::{NodeId, SimDuration, SimTime};

const WINDOW: SimDuration = SimDuration::from_hours(4);

fn t(mins: u64) -> SimTime {
    SimTime::from_mins(mins)
}

/// The mirror model: the same sliding log, kept as a flat list and
/// re-derived from scratch on every query.
#[derive(Default)]
struct Naive {
    meetings: Vec<(SimTime, NodeId, bool, usize)>,
}

impl Naive {
    fn prune(&mut self, now: SimTime, window: SimDuration) {
        let cutoff = now.saturating_since(SimTime::ZERO + window);
        let cutoff = SimTime::from_secs(cutoff.as_secs());
        self.meetings.retain(|&(at, _, _, _)| at >= cutoff);
    }

    fn brokers_met(&self) -> usize {
        let mut seen: Vec<NodeId> = Vec::new();
        for &(_, peer, was_broker, _) in &self.meetings {
            if was_broker && !seen.contains(&peer) {
                seen.push(peer);
            }
        }
        seen.len()
    }

    fn degree(&self) -> usize {
        let mut seen: Vec<NodeId> = Vec::new();
        for &(_, peer, _, _) in &self.meetings {
            if !seen.contains(&peer) {
                seen.push(peer);
            }
        }
        seen.len()
    }

    fn average_broker_degree(&self) -> Option<f64> {
        let mut latest: Vec<(NodeId, usize)> = Vec::new();
        for &(_, peer, was_broker, deg) in &self.meetings {
            if !was_broker {
                continue;
            }
            if let Some(e) = latest.iter_mut().find(|(p, _)| *p == peer) {
                e.1 = deg;
            } else {
                latest.push((peer, deg));
            }
        }
        if latest.is_empty() {
            return None;
        }
        Some(latest.iter().map(|&(_, d)| d as f64).sum::<f64>() / latest.len() as f64)
    }
}

/// Replays one random interleaving of record / prune / decide steps
/// into both models and checks agreement throughout.
fn drive(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut log = ElectionLog::new();
    let mut naive = Naive::default();
    let mut now_mins = 0u64;

    for _ in 0..120 {
        match rng.next_u64() % 10 {
            0..=5 => {
                now_mins += rng.next_u64() % 45;
                let peer = NodeId::new((rng.next_u64() % 12) as u32);
                let was_broker = rng.next_u64().is_multiple_of(3);
                let degree = (rng.next_u64() % 15) as usize;
                log.record(t(now_mins), peer, was_broker, degree);
                naive.meetings.push((t(now_mins), peer, was_broker, degree));
            }
            6..=7 => {
                log.prune(t(now_mins), WINDOW);
                naive.prune(t(now_mins), WINDOW);
            }
            _ => {
                let peer_is_broker = rng.next_u64().is_multiple_of(2);
                let peer_degree = (rng.next_u64() % 15) as usize;
                let lower = (rng.next_u64() % 4) as usize;
                let upper = lower + (rng.next_u64() % 4) as usize;
                let action = log.decide(peer_is_broker, peer_degree, lower, upper);

                // Re-derive the rule from the mirror model.
                let brokers = naive.brokers_met();
                let expected = if brokers < lower && !peer_is_broker {
                    ElectionAction::Promote
                } else if brokers > upper
                    && peer_is_broker
                    && naive
                        .average_broker_degree()
                        .is_some_and(|avg| (peer_degree as f64) < avg)
                {
                    ElectionAction::Demote
                } else {
                    ElectionAction::Keep
                };
                assert_eq!(action, expected, "seed {seed}: decide disagreed");

                // Role-direction invariants of the hysteresis band.
                if peer_is_broker {
                    assert_ne!(
                        action,
                        ElectionAction::Promote,
                        "brokers are never promoted"
                    );
                } else {
                    assert_ne!(action, ElectionAction::Demote, "users are never demoted");
                }
                if (lower..=upper).contains(&brokers) {
                    assert_eq!(
                        action,
                        ElectionAction::Keep,
                        "inside the hysteresis band nothing changes"
                    );
                }
            }
        }
        assert_eq!(log.len(), naive.meetings.len(), "seed {seed}: window sizes");
        assert_eq!(log.brokers_met(), naive.brokers_met(), "seed {seed}");
        assert_eq!(log.degree(), naive.degree(), "seed {seed}");
        assert_eq!(
            log.average_broker_degree(),
            naive.average_broker_degree(),
            "seed {seed}"
        );
    }
}

#[test]
fn election_log_agrees_with_naive_model() {
    for seed in 0..60 {
        drive(SplitMix64::mix(0xE1EC, seed));
    }
}

#[test]
fn replayed_snapshot_round_trips() {
    for seed in 0..20 {
        let mut rng = SplitMix64::new(SplitMix64::mix(0x5AFE, seed));
        let mut log = ElectionLog::new();
        for i in 0..40 {
            log.record(
                t(i * 7),
                NodeId::new((rng.next_u64() % 9) as u32),
                rng.next_u64().is_multiple_of(3),
                (rng.next_u64() % 12) as usize,
            );
        }
        log.prune(t(150), WINDOW);
        let mut replayed = ElectionLog::new();
        for (at, peer, was_broker, degree) in log.meetings() {
            replayed.record(at, peer, was_broker, degree);
        }
        assert_eq!(replayed.len(), log.len());
        assert_eq!(replayed.brokers_met(), log.brokers_met());
        assert_eq!(replayed.degree(), log.degree());
        assert_eq!(
            replayed.average_broker_degree(),
            log.average_broker_degree()
        );
    }
}

#[test]
fn prune_boundary_is_inclusive_at_cutoff() {
    // Window 240 min, now = 300 min ⇒ cutoff = 60 min. A meeting at
    // exactly the cutoff survives; one a minute earlier is dropped.
    let mut log = ElectionLog::new();
    log.record(t(59), NodeId::new(1), true, 3);
    log.record(t(60), NodeId::new(2), true, 3);
    log.record(t(61), NodeId::new(3), true, 3);
    log.prune(t(300), WINDOW);
    assert_eq!(log.len(), 2);
    assert_eq!(log.brokers_met(), 2);
}

#[test]
fn prune_before_window_fills_keeps_everything() {
    let mut log = ElectionLog::new();
    log.record(t(0), NodeId::new(1), false, 1);
    log.record(t(10), NodeId::new(2), true, 2);
    log.prune(t(30), WINDOW); // now < window: no cutoff yet
    assert_eq!(log.len(), 2);
}

#[test]
fn prune_is_idempotent_and_monotone() {
    let mut rng = SplitMix64::new(0xD0D0);
    let mut log = ElectionLog::new();
    for i in 0..50 {
        log.record(
            t(i * 11),
            NodeId::new((rng.next_u64() % 7) as u32),
            rng.next_u64().is_multiple_of(2),
            (rng.next_u64() % 9) as usize,
        );
    }
    let mut prev = log.len();
    for now in [200u64, 300, 300, 450, 700] {
        log.prune(t(now), WINDOW);
        assert!(log.len() <= prev, "pruning never grows the window");
        prev = log.len();
        let before = log.len();
        log.prune(t(now), WINDOW);
        assert_eq!(
            log.len(),
            before,
            "pruning twice at the same now is a no-op"
        );
    }
}

#[test]
fn empty_window_edge_cases() {
    let log = ElectionLog::new();
    assert_eq!(log.brokers_met(), 0);
    assert_eq!(log.degree(), 0);
    assert_eq!(log.average_broker_degree(), None);
    // No average ⇒ demotion is impossible even above the band.
    assert_eq!(log.decide(true, 0, 0, 0), ElectionAction::Keep);
    // lower == 0 ⇒ 0 brokers met is not "fewer than lower".
    assert_eq!(log.decide(false, 0, 0, 0), ElectionAction::Keep);
    assert_eq!(log.decide(false, 0, 1, 1), ElectionAction::Promote);
}

#[test]
fn single_broker_window() {
    let mut log = ElectionLog::new();
    log.record(t(0), NodeId::new(7), true, 6);
    assert_eq!(log.average_broker_degree(), Some(6.0));
    // One broker met, band (0, 0): above upper. Strictly-below wins…
    assert_eq!(log.decide(true, 5, 0, 0), ElectionAction::Demote);
    // …and a peer at exactly the average survives.
    assert_eq!(log.decide(true, 6, 0, 0), ElectionAction::Keep);
}

#[test]
fn stale_degree_reports_latest_wins() {
    let mut log = ElectionLog::new();
    // The same broker reports a shrinking degree across the window;
    // only the newest report counts toward the average.
    log.record(t(0), NodeId::new(1), true, 12);
    log.record(t(30), NodeId::new(1), true, 8);
    log.record(t(60), NodeId::new(1), true, 2);
    log.record(t(90), NodeId::new(2), true, 4);
    assert_eq!(log.average_broker_degree(), Some(3.0));
    // Pruning with the whole history still inside the window changes
    // nothing (now = 240 ⇒ cutoff = 0)…
    log.prune(t(240), WINDOW);
    assert_eq!(log.len(), 4);
    assert_eq!(log.average_broker_degree(), Some(3.0));
    // …pruning away the two oldest reports leaves broker 1's newest
    // report as its degree (now = 300 ⇒ cutoff = 60, inclusive)…
    log.prune(t(300), WINDOW);
    assert_eq!(log.len(), 2);
    assert_eq!(log.average_broker_degree(), Some(3.0));
    // …and once broker 1's last report expires, it leaves the set.
    log.prune(t(330), WINDOW);
    assert_eq!(log.len(), 1, "only the t=90 meeting survives");
    assert_eq!(log.average_broker_degree(), Some(4.0));
}
