//! The tiered subscription-aggregation and batch-matching index.
//!
//! # Model
//!
//! A broker aggregates per-subscriber interest filters into **tiers**
//! of at most [`MatchParams::tier_size`] subscribers. Each tier owns a
//! [`TcbfPool`] (the Section VI-D dynamic allocator) holding the
//! max-merge union of its members' keys **in the member geometry** —
//! the paper's M-merge is only defined over identical geometries, and
//! sharing the geometry is also what makes pruning exact (see below).
//! Each subscriber is stored as a compact filter: the sorted union of
//! its keys' bit positions plus a birth epoch. A subscriber's
//! materialized counter is uniform — `C ∸ (E − born)` — because
//! per-subscriber filters are never merged after construction, so the
//! sparse form is *exactly* the dense TCBF a consumer would have built
//! (the property suite pins this against [`bsub_bloom::Tcbf`]
//! directly).
//!
//! # Batch matching
//!
//! [`MatchIndex::match_events`] hashes each event key **once** (two
//! 64-bit digests), derives one position set per event, and walks the
//! tier hierarchy: an event only reaches a tier's members when the
//! tier pool reports its key present. The final, exact confirmation
//! probes the individual subscriber filter — the same predicate the
//! naive reference scan evaluates — so the index returns *identical*
//! matches to the reference, Bloom false positives included.
//!
//! # The no-false-negative invariant
//!
//! Tier pruning is sound because every tier pool is a counterwise
//! superset of its live members *in the same geometry*:
//!
//! 1. Tier pools share the member geometry `(m, k)`, so a key's pool
//!    positions equal its member positions. Subscribing reinforces
//!    every member key into the tier pool at the member's full counter
//!    `C` ([`TcbfPool::reinforce`] guarantees `min_counter ≥ C`
//!    afterwards) — covering the member's entire position set.
//! 2. Decay is applied to tiers and members in lock-step, and uniform
//!    saturating decay commutes with the counterwise maximum, so the
//!    superset relation survives every epoch.
//! 3. Unsubscribe and expiry only *remove* members (tombstones); the
//!    pool temporarily over-approximates, which costs candidate
//!    probes, never misses. Compaction rebuilds the pool from live
//!    members at their current strengths.
//!
//! Two details are load-bearing, both forced by member-level *false
//! positives* (which the reference scan reports as matches and the
//! index must therefore report too):
//!
//! - **Shared geometry.** A member accepts a key — even a phantom key
//!   it never subscribed to — exactly when all `k` of the key's
//!   positions lie inside the member's position set, and (1)
//!   guarantees every one of those positions carries a tier counter ≥
//!   the member's strength. With an independent tier geometry, a
//!   phantom key would hash to unrelated tier positions and be wrongly
//!   pruned.
//! - **Union probing.** The tier probe asks, per position, whether
//!   *any* pool filter covers it — the counterwise-max (M-merge) view
//!   of the pool. The pool's own existential query (all positions in
//!   *one* filter, the joint-FPR query of Eq. 7) would be unsound: a
//!   phantom key borrows its positions from several different real
//!   keys, and spill allocation can scatter those keys across pool
//!   filters.
//!
//! Hence `member.contains(key) ⇒ tier.contains(key)` for phantom keys
//! too, and the pruned batch path equals the exhaustive scan — the
//! equivalence the differential suite in `tests/differential.rs`
//! exercises over randomized interleavings.

use crate::probe::Probe;
use bsub_bloom::{math, KeyHasher, TcbfPool};
use bsub_obs::{self as obs, Counter, SizeHist, TimeHist};
use std::collections::BTreeMap;

/// One published event, identified by its content key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The content key producers attach and subscribers register.
    pub key: String,
}

impl Event {
    /// Wraps a content key.
    #[must_use]
    pub fn new(key: impl Into<String>) -> Self {
        Self { key: key.into() }
    }
}

/// Geometry and policy parameters of a [`MatchIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchParams {
    /// Bits `m` of the filter geometry, shared by per-subscriber
    /// filters and tier pools (the shared geometry is what makes tier
    /// pruning exact — see the module docs).
    pub member_bits: usize,
    /// Hash count `k`, shared by member and tier geometries.
    pub member_hashes: usize,
    /// Initial counter `C` a subscription starts at; decay expires a
    /// subscription after `C` epochs.
    pub initial: u32,
    /// Maximum live subscribers per tier.
    pub tier_size: usize,
    /// Resident-memory bound per tier pool: caps how many **dense**
    /// filters (`member_bits` × 4-byte counters each) a pool may
    /// spill into, and thereby derives its spill threshold θ.
    pub tier_budget_bytes: usize,
    /// Expected keys per subscriber, used only to size the allocation
    /// plan (`tier_size × hint` keys per tier).
    pub keys_per_subscriber_hint: usize,
    /// A tier is rebuilt when `tombstones > compact_ratio × live`.
    pub compact_ratio: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            member_bits: 8192,
            member_hashes: 4,
            initial: 16,
            tier_size: 512,
            tier_budget_bytes: 64 * 1024,
            keys_per_subscriber_hint: 4,
            compact_ratio: 0.5,
        }
    }
}

/// Deterministic work counts of one [`MatchIndex::match_events`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Events in the batch.
    pub events: u64,
    /// Tier-pool probes taken (tiers × events reaching them).
    pub tier_probes: u64,
    /// Tier probes that reported the key present.
    pub tier_hits: u64,
    /// Exact member confirmations attempted after pruning.
    pub candidates: u64,
    /// Confirmed (subscriber, event) matches.
    pub matched: u64,
}

/// The result of a batched match: per-event subscriber lists plus the
/// work counters pruning is judged by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchSet {
    /// For each event (batch order), the matching subscriber ids in
    /// ascending order.
    pub matches: Vec<Vec<u64>>,
    /// Deterministic work counts of the call.
    pub stats: MatchStats,
}

impl MatchSet {
    /// Total (subscriber, event) matches across the batch.
    #[must_use]
    pub fn total(&self) -> usize {
        self.matches.iter().map(Vec::len).sum()
    }
}

/// One subscriber's portable state, as exported by
/// [`MatchIndex::export_state`]: everything needed to rebuild the
/// member exactly — positions are rederived from the digests, and the
/// uniform counter from `born` against the index epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriberState {
    /// The subscriber id.
    pub id: u64,
    /// The Kirsch–Mitzenmacher digest pair of each subscribed key, in
    /// subscription order.
    pub digests: Vec<(u64, u64)>,
    /// Birth epoch (uniform counter is `C ∸ (epoch − born)`).
    pub born: u64,
    /// Optional expiry deadline ([`MatchIndex::expire`] semantics).
    pub deadline: Option<u64>,
    /// Tier the member lives in.
    pub tier: usize,
}

/// A portable snapshot of a whole [`MatchIndex`]: parameters, the
/// decay epoch, and every live subscriber in tier-member order.
///
/// [`MatchIndex::from_state`] rebuilds an index whose *matching
/// behavior* is identical to the exported one — same members, same
/// positions, same strengths, same deadlines, same tier layout. Tier
/// pools come back compacted (reinforced from live members at current
/// strength), so tombstone over-approximation is not carried across a
/// snapshot; match *results* are unaffected because the final
/// member-level confirmation is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexState {
    /// Geometry and policy parameters.
    pub params: MatchParams,
    /// Accumulated decay epochs at export time.
    pub epoch: u64,
    /// Live subscribers, grouped by tier in member order.
    pub subs: Vec<SubscriberState>,
}

/// A subscriber's aggregated state: its keys' digests (for tier
/// rebuilds), the sorted position union of its member-geometry filter,
/// and its birth epoch. Counters are uniform `C ∸ (E − born)`.
#[derive(Debug, Clone)]
struct Subscriber {
    digests: Vec<(u64, u64)>,
    positions: Vec<u32>,
    born: u64,
    deadline: Option<u64>,
    tier: usize,
}

#[derive(Debug)]
struct Tier {
    pool: TcbfPool,
    members: Vec<u64>,
    tombstones: usize,
}

/// The broker-level subscription index: tiers of aggregated TCBF pools
/// over per-subscriber filters, with bulk maintenance and a batched
/// matching path. See the module docs for the model and invariants.
#[derive(Debug)]
pub struct MatchIndex {
    params: MatchParams,
    hasher: KeyHasher,
    /// Accumulated decay epochs.
    epoch: u64,
    /// Tier-pool spill threshold θ, from the allocation plan.
    theta: f64,
    subs: BTreeMap<u64, Subscriber>,
    tiers: Vec<Tier>,
    /// Index of the first tier that may have room (first-fit hint).
    open: usize,
    compactions: u64,
}

impl MatchIndex {
    /// An empty index. The tier-pool spill threshold θ is derived
    /// from the tier's **resident** budget: a pool may hold at most
    /// `tier_budget_bytes / (member_bits × 4)` dense filters, the
    /// expected per-tier key load (`tier_size ×
    /// keys_per_subscriber_hint`) is split across them, and θ is the
    /// expected fill ratio (Eq. 3) of one such share.
    ///
    /// This deliberately inverts the Section VI-D plan
    /// ([`bsub_bloom::AllocationPlan::solve`]): the paper's phones
    /// *maximize* the filter count under a wire-size budget to
    /// minimize the joint FPR of per-filter existential queries
    /// (Eq. 7). A broker's tier pool is the opposite regime — filters
    /// are resident dense counters, and the tier probe is the
    /// counterwise-max *union* view, whose discriminative power
    /// depends only on the union fill, not on how keys are split. So
    /// extra filters buy nothing here and cost 4 bits×`member_bits`
    /// of RAM plus one probe per position each; the budget wants the
    /// *fewest* filters that hold the load.
    ///
    /// # Panics
    ///
    /// Panics if geometry parameters are zero or `compact_ratio` is
    /// not positive.
    #[must_use]
    pub fn new(params: MatchParams) -> Self {
        assert!(params.member_bits > 0, "member bits must be positive");
        assert!(params.member_hashes > 0, "hash count must be positive");
        assert!(params.initial > 0, "initial counter must be positive");
        assert!(params.tier_size > 0, "tier size must be positive");
        assert!(params.compact_ratio > 0.0, "compact ratio must be positive");
        let expected_keys = params.tier_size * params.keys_per_subscriber_hint.max(1);
        let dense_filter_bytes = params.member_bits * 4;
        let pool_filters = (params.tier_budget_bytes / dense_filter_bytes).max(1);
        let keys_per_filter = expected_keys as f64 / pool_filters as f64;
        let theta = math::fill_ratio(params.member_bits, params.member_hashes, keys_per_filter);
        Self {
            params,
            hasher: KeyHasher::default(),
            epoch: 0,
            theta,
            subs: BTreeMap::new(),
            tiers: Vec::new(),
            open: 0,
            compactions: 0,
        }
    }

    /// The index parameters.
    #[must_use]
    pub fn params(&self) -> &MatchParams {
        &self.params
    }

    /// Accumulated decay epochs.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The tier-pool spill threshold θ in effect.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Live subscriber count.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.subs.len()
    }

    /// Number of tiers allocated (never shrinks; emptied tiers are
    /// skipped during matching and refilled by later subscribes).
    #[must_use]
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// Total TCBF filters across every tier pool.
    #[must_use]
    pub fn pool_filter_count(&self) -> usize {
        self.tiers.iter().map(|t| t.pool.filter_count()).sum()
    }

    /// Tier rebuilds performed so far.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether `id` is currently subscribed.
    #[must_use]
    pub fn is_subscribed(&self, id: u64) -> bool {
        self.subs.contains_key(&id)
    }

    /// A subscriber's current uniform counter value (`C ∸ (E − born)`),
    /// or `None` if not subscribed.
    #[must_use]
    pub fn strength(&self, id: u64) -> Option<u32> {
        self.subs.get(&id).map(|s| self.strength_of(s))
    }

    fn strength_of(&self, sub: &Subscriber) -> u32 {
        let decayed = self.epoch - sub.born;
        if decayed >= u64::from(self.params.initial) {
            0
        } else {
            self.params.initial - decayed as u32
        }
    }

    /// Subscribes `id` to `keys` with no deadline. An existing
    /// subscription under the same id is replaced (its counters reset
    /// to `C`, possibly in a different tier).
    pub fn subscribe<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K]) {
        self.subscribe_inner(id, keys, None);
    }

    /// Subscribes `id` to `keys` until `deadline`:
    /// [`MatchIndex::expire`] removes it once `now >= deadline`.
    pub fn subscribe_until<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K], deadline: u64) {
        self.subscribe_inner(id, keys, Some(deadline));
    }

    /// Bulk subscribe: one call per `(id, keys)` pair.
    pub fn subscribe_bulk<K: AsRef<[u8]>>(&mut self, batch: &[(u64, Vec<K>)]) {
        for (id, keys) in batch {
            self.subscribe_inner(*id, keys, None);
        }
    }

    fn subscribe_inner<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K], deadline: Option<u64>) {
        obs::count(Counter::MatchSubscribe, 1);
        if self.subs.contains_key(&id) {
            self.remove(id);
        }
        let k = self.params.member_hashes;
        let mut digests = Vec::with_capacity(keys.len());
        let mut positions: Vec<u32> = Vec::with_capacity(keys.len() * k);
        for key in keys {
            let probe = Probe::new(&self.hasher, key.as_ref());
            digests.push(probe.digests());
            positions.extend(
                probe
                    .positions(k, self.params.member_bits)
                    .map(|p| p as u32),
            );
        }
        positions.sort_unstable();
        positions.dedup();

        let tier = self.open_tier();
        self.tiers[tier].members.push(id);
        for &digest in &digests {
            self.tiers[tier].pool.reinforce(digest, self.params.initial);
        }
        self.subs.insert(
            id,
            Subscriber {
                digests,
                positions,
                born: self.epoch,
                deadline,
                tier,
            },
        );
    }

    /// First tier with room, allocating a fresh one when all are full.
    fn open_tier(&mut self) -> usize {
        let mut t = self.open;
        while t < self.tiers.len() && self.tiers[t].members.len() >= self.params.tier_size {
            t += 1;
        }
        if t == self.tiers.len() {
            self.tiers.push(Tier {
                pool: TcbfPool::new(
                    self.params.member_bits,
                    self.params.member_hashes,
                    self.params.initial,
                    self.theta,
                ),
                members: Vec::new(),
                tombstones: 0,
            });
        }
        self.open = t;
        t
    }

    /// Unsubscribes `id`. Returns whether it was subscribed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        if !self.subs.contains_key(&id) {
            return false;
        }
        obs::count(Counter::MatchUnsubscribe, 1);
        self.remove(id);
        true
    }

    /// Bulk unsubscribe; returns how many were subscribed.
    pub fn unsubscribe_bulk(&mut self, ids: &[u64]) -> usize {
        ids.iter().filter(|&&id| self.unsubscribe(id)).count()
    }

    /// Unsubscribes `id` and immediately rebuilds its tier pool, so the
    /// member's keys stop contributing to the tier aggregate *now*
    /// rather than after enough tombstones accumulate. Returns whether
    /// it was subscribed.
    ///
    /// The lazy path ([`MatchIndex::unsubscribe`]) leaves the pool
    /// over-approximating until the compaction threshold trips — sound
    /// (extra candidate probes, never missed matches) but wrong for a
    /// live broker honoring an explicit unsubscribe: the departed
    /// member must not keep inflating tier hits for its former keys.
    pub fn purge(&mut self, id: u64) -> bool {
        let Some(tier) = self.subs.get(&id).map(|s| s.tier) else {
            return false;
        };
        obs::count(Counter::MatchUnsubscribe, 1);
        self.remove(id);
        // `remove` may already have compacted; only rebuild when
        // tombstones (this one included) are still in the pool.
        if self.tiers[tier].tombstones > 0 {
            self.compact(tier);
        }
        true
    }

    /// A subscriber's deadline, or `None` when not subscribed or
    /// subscribed without one.
    #[must_use]
    pub fn deadline(&self, id: u64) -> Option<u64> {
        self.subs.get(&id).and_then(|s| s.deadline)
    }

    /// Targeted expiry for deadline-wheel callers: re-checks each
    /// candidate's *current* deadline against `now` and removes only
    /// those actually due (or fully decayed). Returns how many were
    /// removed.
    ///
    /// Unlike [`MatchIndex::expire`], this never scans the whole
    /// subscriber map — a broker's clock wheel hands over exactly the
    /// ids whose bucket came due. The re-check makes stale wheel
    /// entries harmless: a resubscribe under the same id moved the
    /// deadline forward, and the old bucket entry must not evict it.
    pub fn expire_candidates(&mut self, ids: &[u64], now: u64) -> usize {
        let mut removed = 0;
        for &id in ids {
            let due = self
                .subs
                .get(&id)
                .is_some_and(|s| s.deadline.is_some_and(|d| now >= d) || self.strength_of(s) == 0);
            if due {
                obs::count(Counter::MatchExpire, 1);
                self.remove(id);
                removed += 1;
            }
        }
        removed
    }

    /// Removes every subscription whose deadline has passed
    /// (`now >= deadline`) or whose counters have fully decayed.
    /// Returns how many were removed.
    pub fn expire(&mut self, now: u64) -> usize {
        let doomed: Vec<u64> = self
            .subs
            .iter()
            .filter(|(_, s)| s.deadline.is_some_and(|d| now >= d) || self.strength_of(s) == 0)
            .map(|(&id, _)| id)
            .collect();
        obs::count(Counter::MatchExpire, doomed.len() as u64);
        for id in &doomed {
            self.remove(*id);
        }
        doomed.len()
    }

    /// Shared removal path: tombstones the member and compacts the
    /// tier when tombstones outweigh `compact_ratio × live`.
    fn remove(&mut self, id: u64) {
        let sub = self.subs.remove(&id).expect("caller checked presence");
        let tier = &mut self.tiers[sub.tier];
        tier.members.retain(|&m| m != id);
        tier.tombstones += 1;
        self.open = self.open.min(sub.tier);
        let live = tier.members.len();
        if tier.tombstones as f64 > self.params.compact_ratio * live.max(1) as f64 {
            self.compact(sub.tier);
        }
    }

    /// Rebuilds a tier pool from its live members at their *current*
    /// strengths, dropping every tombstoned key (and any pool filter
    /// the spill history left behind).
    fn compact(&mut self, tier: usize) {
        obs::count(Counter::MatchCompact, 1);
        self.compactions += 1;
        let mut pool = TcbfPool::new(
            self.params.member_bits,
            self.params.member_hashes,
            self.params.initial,
            self.theta,
        );
        for &id in &self.tiers[tier].members {
            let sub = &self.subs[&id];
            let strength = self.strength_of(sub);
            if strength == 0 {
                continue;
            }
            for &digest in &sub.digests {
                pool.reinforce(digest, strength);
            }
        }
        self.tiers[tier].pool = pool;
        self.tiers[tier].tombstones = 0;
    }

    /// Decays every subscription and every tier pool by `amount`
    /// epochs, in lock-step — the commutation that keeps tier pools
    /// supersets of their members.
    pub fn decay(&mut self, amount: u32) {
        if amount == 0 {
            return;
        }
        self.epoch += u64::from(amount);
        for tier in &mut self.tiers {
            tier.pool.decay(amount);
        }
    }

    /// Matches a batch of events against every live subscription.
    ///
    /// Each event key is hashed once; candidate tiers are pruned via
    /// their aggregate pools before members are confirmed exactly.
    /// Returns per-event subscriber lists identical to what the naive
    /// per-filter scan ([`crate::ReferenceMatcher`]) produces.
    #[must_use]
    pub fn match_events(&self, events: &[Event]) -> MatchSet {
        let _span = obs::span(TimeHist::MatchBatchNs);
        let k = self.params.member_hashes;
        let mut stats = MatchStats {
            events: events.len() as u64,
            ..MatchStats::default()
        };

        // One position set per event: tier pools share the member
        // geometry, so a single probe serves both levels.
        let mut positions: Vec<u32> = Vec::with_capacity(events.len() * k);
        for event in events {
            let probe = Probe::new(&self.hasher, event.key.as_bytes());
            positions.extend(
                probe
                    .positions(k, self.params.member_bits)
                    .map(|p| p as u32),
            );
        }

        let mut matches: Vec<Vec<u64>> = vec![Vec::new(); events.len()];
        for tier in &self.tiers {
            if tier.members.is_empty() {
                continue;
            }
            for ei in 0..events.len() {
                let mp = &positions[ei * k..(ei + 1) * k];
                stats.tier_probes += 1;
                // Counterwise-max (M-merge) union view of the pool: a
                // position counts as covered when ANY filter holds it.
                // The per-filter existential query (Eq. 7) would be
                // unsound here — a member-level false positive borrows
                // its positions from several different keys, and spill
                // can scatter those keys across pool filters.
                let filters = tier.pool.filters();
                let tier_holds = mp
                    .iter()
                    .all(|&p| filters.iter().any(|f| f.counter_at(p as usize) > 0));
                if !tier_holds {
                    continue;
                }
                stats.tier_hits += 1;
                for &id in &tier.members {
                    stats.candidates += 1;
                    let sub = &self.subs[&id];
                    if self.strength_of(sub) > 0
                        && mp.iter().all(|p| sub.positions.binary_search(p).is_ok())
                    {
                        stats.matched += 1;
                        matches[ei].push(id);
                    }
                }
            }
        }
        for per_event in &mut matches {
            per_event.sort_unstable();
        }
        obs::count(Counter::MatchEvents, stats.events);
        obs::count(Counter::MatchTierProbes, stats.tier_probes);
        obs::count(Counter::MatchCandidates, stats.candidates);
        obs::count(Counter::MatchMatched, stats.matched);
        obs::observe(SizeHist::MatchBatchEvents, stats.events);
        obs::observe(SizeHist::MatchBatchCandidates, stats.candidates);
        MatchSet { matches, stats }
    }

    /// Exports the index's live state for checkpointing or transfer
    /// (see [`IndexState`] for the rebuild contract).
    #[must_use]
    pub fn export_state(&self) -> IndexState {
        let mut subs = Vec::with_capacity(self.subs.len());
        for (tier, t) in self.tiers.iter().enumerate() {
            for &id in &t.members {
                let sub = &self.subs[&id];
                subs.push(SubscriberState {
                    id,
                    digests: sub.digests.clone(),
                    born: sub.born,
                    deadline: sub.deadline,
                    tier,
                });
            }
        }
        IndexState {
            params: self.params,
            epoch: self.epoch,
            subs,
        }
    }

    /// Rebuilds an index from exported state. Tier membership and
    /// member order are restored verbatim; each tier pool is rebuilt by
    /// reinforcing live members at their current strength (exactly the
    /// compaction rebuild), so the no-false-negative superset invariant
    /// holds from the first probe.
    ///
    /// # Panics
    ///
    /// Panics if the state is inconsistent: duplicate subscriber ids,
    /// or a tier holding more members than `params.tier_size`.
    #[must_use]
    pub fn from_state(state: &IndexState) -> Self {
        let mut idx = Self::new(state.params);
        idx.epoch = state.epoch;
        let tiers = state.subs.iter().map(|s| s.tier + 1).max().unwrap_or(0);
        for _ in 0..tiers {
            idx.tiers.push(Tier {
                pool: TcbfPool::new(
                    state.params.member_bits,
                    state.params.member_hashes,
                    state.params.initial,
                    idx.theta,
                ),
                members: Vec::new(),
                tombstones: 0,
            });
        }
        let k = state.params.member_hashes;
        for sub in &state.subs {
            let mut positions: Vec<u32> = Vec::with_capacity(sub.digests.len() * k);
            for &digest in &sub.digests {
                positions.extend(
                    KeyHasher::positions_from_digests(digest, k, state.params.member_bits)
                        .map(|p| p as u32),
                );
            }
            positions.sort_unstable();
            positions.dedup();
            let tier = &mut idx.tiers[sub.tier];
            tier.members.push(sub.id);
            assert!(
                tier.members.len() <= state.params.tier_size,
                "tier {} overflows tier_size",
                sub.tier
            );
            let previous = idx.subs.insert(
                sub.id,
                Subscriber {
                    digests: sub.digests.clone(),
                    positions,
                    born: sub.born,
                    deadline: sub.deadline,
                    tier: sub.tier,
                },
            );
            assert!(previous.is_none(), "duplicate subscriber id {}", sub.id);
        }
        for tier in 0..idx.tiers.len() {
            let members = idx.tiers[tier].members.clone();
            for id in members {
                let strength = idx.strength_of(&idx.subs[&id]);
                if strength == 0 {
                    continue;
                }
                let digests = idx.subs[&id].digests.clone();
                for digest in digests {
                    idx.tiers[tier].pool.reinforce(digest, strength);
                }
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MatchParams {
        MatchParams {
            member_bits: 512,
            member_hashes: 4,
            initial: 8,
            tier_size: 4,
            tier_budget_bytes: 4 * 1024,
            keys_per_subscriber_hint: 2,
            compact_ratio: 0.5,
        }
    }

    fn keys_of(id: u64) -> Vec<String> {
        vec![format!("topic-{}", id % 5), format!("extra-{id}")]
    }

    #[test]
    fn subscribe_then_match() {
        let mut idx = MatchIndex::new(small());
        idx.subscribe(1, &["apples", "pears"]);
        idx.subscribe(2, &["pears"]);
        let set = idx.match_events(&[Event::new("pears"), Event::new("plums")]);
        assert_eq!(set.matches[0], vec![1, 2]);
        assert!(set.matches[1].is_empty());
        assert_eq!(set.stats.matched, 2);
    }

    #[test]
    fn unsubscribe_stops_matching() {
        let mut idx = MatchIndex::new(small());
        idx.subscribe(1, &["apples"]);
        idx.subscribe(2, &["apples"]);
        assert!(idx.unsubscribe(1));
        assert!(!idx.unsubscribe(1), "second unsubscribe is a no-op");
        let set = idx.match_events(&[Event::new("apples")]);
        assert_eq!(set.matches[0], vec![2]);
    }

    #[test]
    fn decay_expires_subscriptions() {
        let mut idx = MatchIndex::new(small());
        idx.subscribe(1, &["apples"]);
        idx.decay(7);
        assert_eq!(idx.strength(1), Some(1));
        assert_eq!(idx.match_events(&[Event::new("apples")]).total(), 1);
        idx.decay(1);
        assert_eq!(idx.strength(1), Some(0));
        assert_eq!(idx.match_events(&[Event::new("apples")]).total(), 0);
        assert_eq!(idx.expire(0), 1, "fully decayed subscription expires");
        assert_eq!(idx.live_count(), 0);
    }

    #[test]
    fn deadline_expiry() {
        let mut idx = MatchIndex::new(small());
        idx.subscribe_until(1, &["apples"], 10);
        idx.subscribe(2, &["apples"]);
        assert_eq!(idx.expire(9), 0);
        assert_eq!(idx.expire(10), 1);
        assert!(!idx.is_subscribed(1));
        assert!(idx.is_subscribed(2));
    }

    #[test]
    fn tiers_spill_and_refill() {
        let mut idx = MatchIndex::new(small());
        for id in 0..10 {
            idx.subscribe(id, &keys_of(id));
        }
        assert_eq!(idx.tier_count(), 3, "tier_size=4 ⇒ 10 subs need 3 tiers");
        idx.unsubscribe(0);
        idx.subscribe(100, &keys_of(100));
        assert_eq!(idx.tier_count(), 3, "freed slot is reused first-fit");
    }

    #[test]
    fn resubscribe_refreshes_strength() {
        let mut idx = MatchIndex::new(small());
        idx.subscribe(1, &["apples"]);
        idx.decay(6);
        assert_eq!(idx.strength(1), Some(2));
        idx.subscribe(1, &["apples"]);
        assert_eq!(idx.strength(1), Some(8));
        assert_eq!(idx.live_count(), 1);
    }

    #[test]
    fn compaction_preserves_matching() {
        let mut idx = MatchIndex::new(small());
        for id in 0..16 {
            idx.subscribe(id, &keys_of(id));
        }
        // Heavy churn forces tombstone-driven rebuilds.
        for id in 0..12 {
            idx.unsubscribe(id);
        }
        assert!(idx.compactions() > 0, "churn must have compacted");
        let events: Vec<Event> = (0..5).map(|t| Event::new(format!("topic-{t}"))).collect();
        let set = idx.match_events(&events);
        for (t, per_event) in set.matches.iter().enumerate() {
            let expected: Vec<u64> = (12..16).filter(|id| id % 5 == t as u64).collect();
            assert_eq!(per_event, &expected, "topic-{t}");
        }
    }

    #[test]
    fn empty_key_set_never_matches() {
        let mut idx = MatchIndex::new(small());
        let no_keys: &[&str] = &[];
        idx.subscribe(1, no_keys);
        idx.subscribe(2, &["apples"]);
        let set = idx.match_events(&[Event::new("apples")]);
        assert_eq!(set.matches[0], vec![2]);
    }

    #[test]
    fn empty_batch_and_empty_index() {
        let idx = MatchIndex::new(small());
        let set = idx.match_events(&[Event::new("anything")]);
        assert_eq!(set.matches, vec![Vec::<u64>::new()]);
        let mut idx = MatchIndex::new(small());
        idx.subscribe(1, &["k"]);
        let set = idx.match_events(&[]);
        assert!(set.matches.is_empty());
        assert_eq!(set.total(), 0);
    }

    #[test]
    fn bulk_helpers() {
        let mut idx = MatchIndex::new(small());
        let batch: Vec<(u64, Vec<String>)> = (0..6).map(|id| (id, keys_of(id))).collect();
        idx.subscribe_bulk(&batch);
        assert_eq!(idx.live_count(), 6);
        assert_eq!(idx.unsubscribe_bulk(&[0, 1, 99]), 2);
        assert_eq!(idx.live_count(), 4);
    }

    #[test]
    fn stats_account_for_pruning() {
        let mut idx = MatchIndex::new(small());
        for id in 0..12 {
            idx.subscribe(id, &[format!("only-{id}")]);
        }
        let set = idx.match_events(&[Event::new("only-3")]);
        assert_eq!(set.matches[0], vec![3]);
        assert!(
            set.stats.candidates < 12,
            "tier pruning must cut the exhaustive scan: {:?}",
            set.stats
        );
        assert!(set.stats.tier_probes >= set.stats.tier_hits);
    }
}
