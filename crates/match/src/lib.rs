//! Broker-side subscription aggregation and batched event matching.
//!
//! B-SUB's brokers (PAPER.md §IV–VI) hold one relay TCBF and match
//! messages per-key, per-filter — fine for pocket-switched contact
//! rates, but the ROADMAP north star is the "millions of users" regime
//! where a broker aggregates millions of subscriptions and matches
//! high event rates against them. This crate is that subsystem:
//!
//! - [`MatchIndex`] — per-subscriber filters aggregated into tiers of
//!   [`bsub_bloom::TcbfPool`]s (the Section VI-D allocator), with bulk
//!   subscribe/unsubscribe/expire, lock-step decay, tombstone-driven
//!   compaction, and a batched [`MatchIndex::match_events`] path that
//!   hashes each event once and prunes candidates through the tier
//!   hierarchy before exact per-subscriber confirmation.
//! - [`ReferenceMatcher`] — the naive per-filter scan kept in-tree as
//!   the differential oracle: `tests/differential.rs` drives both
//!   implementations through 100+ seeded interleavings and demands
//!   identical [`MatchSet`]s, Bloom false positives included.
//! - [`Probe`] / [`ProbeCache`] — hash-once probes shared with the
//!   `bsub-core` broker contact pipeline, so the simulator, the scale
//!   harness, and the `bsub-net` cluster all match through one
//!   implementation without perturbing any committed artifact.
//!
//! Instrumented with `bsub-obs` (`match_*` counters, the
//! `match_batch_ns` timing histogram, and batch-size/candidate size
//! histograms); all probe reads are uninstrumented so batch probing is
//! metrics-invisible, exactly like `BloomFilter::contains`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod index;
mod probe;
mod reference;

pub use crate::index::{
    Event, IndexState, MatchIndex, MatchParams, MatchSet, MatchStats, SubscriberState,
};
pub use crate::probe::{Probe, ProbeCache};
pub use crate::reference::ReferenceMatcher;
