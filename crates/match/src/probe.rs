//! Precomputed probes: hash a key once, test many filters.
//!
//! Every filter geometry in a B-SUB broker shares one network-wide
//! [`KeyHasher`] (Section IV-A), and the Kirsch–Mitzenmacher
//! construction derives all `k` bit positions from two 64-bit digests.
//! A [`Probe`] caches those digests, so batch matching pays the
//! variable-length key hash **once per key** and then derives
//! positions for any `(k, m)` with two integer ops per probe — the
//! amortization the `MatchIndex` batch path and the broker contact
//! pipeline in `bsub-core` both lean on.
//!
//! All checks here are *uninstrumented*, mirroring
//! [`BloomFilter::contains`]: swapping a per-key query for a
//! precomputed probe must not perturb any `bsub-obs` counter, which is
//! what keeps the refactored broker path byte-identical to the
//! committed figure artifacts.

use bsub_bloom::hash::Positions;
use bsub_bloom::{BloomFilter, KeyHasher, Tcbf, TcbfPool};
use std::collections::HashMap;

/// The two Kirsch–Mitzenmacher digests of one key, ready to probe any
/// filter geometry without re-hashing the key bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    digests: (u64, u64),
}

impl Probe {
    /// Hashes `key` once with `hasher`. The probe is only valid
    /// against filters built with an equal hasher.
    #[must_use]
    pub fn new(hasher: &KeyHasher, key: &[u8]) -> Self {
        Self {
            digests: hasher.digests(key),
        }
    }

    /// The raw digest pair (for [`TcbfPool::reinforce`] and friends).
    #[must_use]
    pub fn digests(&self) -> (u64, u64) {
        self.digests
    }

    /// The key's `k` bit positions in a filter of `m` bits — identical
    /// to [`KeyHasher::positions`] for the same key.
    #[must_use]
    pub fn positions(&self, k: usize, m: usize) -> Positions {
        KeyHasher::positions_from_digests(self.digests, k, m)
    }

    /// Exactly [`BloomFilter::contains`] for the probed key, without
    /// re-hashing it.
    #[must_use]
    pub fn hits_bloom(&self, bloom: &BloomFilter) -> bool {
        self.positions(bloom.hash_count(), bloom.bit_len())
            .all(|pos| bloom.bits().get(pos))
    }

    /// Exactly [`Tcbf::min_counter`] for the probed key, without
    /// re-hashing it — and without the `TcbfQuery` counter bump, so
    /// batch probing stays invisible to the metrics layer.
    #[must_use]
    pub fn min_counter(&self, filter: &Tcbf) -> u32 {
        self.positions(filter.hash_count(), filter.bit_len())
            .map(|pos| filter.counter_at(pos))
            .min()
            .unwrap_or(0)
    }

    /// Exactly [`Tcbf::contains`] for the probed key.
    #[must_use]
    pub fn hits_tcbf(&self, filter: &Tcbf) -> bool {
        self.min_counter(filter) > 0
    }

    /// Exactly [`TcbfPool::contains`] for the probed key: the
    /// existential query across every filter of the pool (the joint
    /// FPR of Eq. 7).
    #[must_use]
    pub fn hits_pool(&self, pool: &TcbfPool) -> bool {
        pool.filters().iter().any(|f| self.hits_tcbf(f))
    }
}

/// A per-batch probe memo: hash each distinct item once, reuse the
/// probe across every filter it is tested against.
///
/// The broker contact pipeline keys the memo by message id (one
/// message's key may be probed against the consumer's genuine bloom
/// in step 5a/5c *and* the broker's relay bloom in step 5b), so a
/// contact hashes each carried message at most once.
#[derive(Debug)]
pub struct ProbeCache {
    hasher: KeyHasher,
    probes: HashMap<u64, Probe>,
}

impl ProbeCache {
    /// An empty cache whose probes are computed with `hasher`.
    #[must_use]
    pub fn new(hasher: KeyHasher) -> Self {
        Self {
            hasher,
            probes: HashMap::new(),
        }
    }

    /// The probe for `key`, memoized under `id`. The caller guarantees
    /// the id↔key association is stable within the cache's lifetime.
    pub fn probe(&mut self, id: u64, key: &[u8]) -> Probe {
        let hasher = self.hasher;
        *self
            .probes
            .entry(id)
            .or_insert_with(|| Probe::new(&hasher, key))
    }

    /// [`BloomFilter::contains`] via the memoized probe: identical
    /// decision, at most one key hash per id.
    pub fn contains(&mut self, id: u64, key: &[u8], bloom: &BloomFilter) -> bool {
        debug_assert_eq!(bloom.hasher(), self.hasher);
        self.probe(id, key).hits_bloom(bloom)
    }

    /// Number of distinct ids hashed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether no probe has been computed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_matches_bloom_contains() {
        let hasher = KeyHasher::default();
        let filter = Tcbf::from_keys(256, 4, 10, ["a", "b", "c"]);
        let bloom = filter.to_bloom();
        for key in ["a", "b", "c", "d", "absent", ""] {
            let probe = Probe::new(&hasher, key.as_bytes());
            assert_eq!(probe.hits_bloom(&bloom), bloom.contains(key), "key={key}");
        }
    }

    #[test]
    fn probe_matches_tcbf_min_counter_under_decay() {
        let hasher = KeyHasher::default();
        let mut filter = Tcbf::from_keys(64, 4, 10, ["x", "y"]);
        filter.decay(4);
        for key in ["x", "y", "z"] {
            let probe = Probe::new(&hasher, key.as_bytes());
            assert_eq!(probe.min_counter(&filter), filter.min_counter(key));
            assert_eq!(probe.hits_tcbf(&filter), filter.contains(key));
        }
    }

    #[test]
    fn probe_matches_pool_contains() {
        let hasher = KeyHasher::default();
        let mut pool = TcbfPool::new(256, 4, 10, 0.2);
        for i in 0..40 {
            pool.insert(format!("k-{i}"));
        }
        for i in 0..60 {
            let key = format!("k-{i}");
            let probe = Probe::new(&hasher, key.as_bytes());
            assert_eq!(probe.hits_pool(&pool), pool.contains(&key), "key={key}");
        }
    }

    #[test]
    fn cache_memoizes_by_id() {
        let mut cache = ProbeCache::new(KeyHasher::default());
        let bloom = Tcbf::from_keys(256, 4, 10, ["hit"]).to_bloom();
        assert!(cache.contains(7, b"hit", &bloom));
        assert!(cache.contains(7, b"hit", &bloom));
        assert_eq!(cache.len(), 1, "same id hashed once");
        assert!(!cache.contains(8, b"miss", &bloom) || bloom.contains("miss"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn probe_positions_match_hasher_positions() {
        let hasher = KeyHasher::default();
        let probe = Probe::new(&hasher, b"NewMoon");
        for &(k, m) in &[(4usize, 256usize), (3, 64), (8, 4096)] {
            let direct: Vec<_> = hasher.positions(b"NewMoon", k, m).collect();
            let derived: Vec<_> = probe.positions(k, m).collect();
            assert_eq!(direct, derived);
        }
    }
}
