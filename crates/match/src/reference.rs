//! The scalar reference matcher: a naive per-filter scan.
//!
//! One dense [`Tcbf`] per subscriber, built exactly as the paper's
//! consumer would build its genuine filter, and a match loop that
//! probes **every** subscriber's filter for **every** event — no
//! aggregation, no pruning, no probe reuse. This is deliberately the
//! simplest correct implementation: it is the oracle the differential
//! suite holds [`MatchIndex`](crate::MatchIndex) to, and the baseline
//! the `matching` bench binary measures the index's speedup against.
//!
//! Kept in-tree on purpose (test-archetype centerpiece): any future
//! change to the index must keep `match_events` equivalence against
//! this scan, Bloom false positives included.

use crate::index::{Event, MatchParams, MatchSet, MatchStats};
use bsub_bloom::Tcbf;
use std::collections::BTreeMap;

struct RefSub {
    filter: Tcbf,
    deadline: Option<u64>,
}

impl std::fmt::Debug for RefSub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefSub")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

/// The naive matcher: dense per-subscriber TCBFs, exhaustive scans.
#[derive(Debug)]
pub struct ReferenceMatcher {
    bits: usize,
    hashes: usize,
    initial: u32,
    subs: BTreeMap<u64, RefSub>,
}

impl ReferenceMatcher {
    /// An empty matcher over the given member-filter geometry.
    #[must_use]
    pub fn new(bits: usize, hashes: usize, initial: u32) -> Self {
        Self {
            bits,
            hashes,
            initial,
            subs: BTreeMap::new(),
        }
    }

    /// An empty matcher sharing a [`MatchParams`]' member geometry.
    #[must_use]
    pub fn from_params(params: &MatchParams) -> Self {
        Self::new(params.member_bits, params.member_hashes, params.initial)
    }

    /// Live subscriber count.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.subs.len()
    }

    /// Subscribes `id` to `keys`, replacing any existing subscription.
    pub fn subscribe<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K]) {
        self.subscribe_inner(id, keys, None);
    }

    /// Subscribes `id` to `keys` until `deadline`.
    pub fn subscribe_until<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K], deadline: u64) {
        self.subscribe_inner(id, keys, Some(deadline));
    }

    fn subscribe_inner<K: AsRef<[u8]>>(&mut self, id: u64, keys: &[K], deadline: Option<u64>) {
        let filter = Tcbf::from_keys(self.bits, self.hashes, self.initial, keys.iter());
        self.subs.insert(id, RefSub { filter, deadline });
    }

    /// Unsubscribes `id`. Returns whether it was subscribed.
    pub fn unsubscribe(&mut self, id: u64) -> bool {
        self.subs.remove(&id).is_some()
    }

    /// Removes subscriptions past their deadline (`now >= deadline`)
    /// or fully decayed. Returns how many were removed.
    pub fn expire(&mut self, now: u64) -> usize {
        let before = self.subs.len();
        self.subs
            .retain(|_, s| !(s.deadline.is_some_and(|d| now >= d) || s.filter.is_empty()));
        before - self.subs.len()
    }

    /// Decays every subscriber filter by `amount` epochs.
    pub fn decay(&mut self, amount: u32) {
        for sub in self.subs.values_mut() {
            sub.filter.decay(amount);
        }
    }

    /// The naive batch match: for every event, probe every
    /// subscriber's filter with a fresh per-pair query.
    #[must_use]
    pub fn match_events(&self, events: &[Event]) -> MatchSet {
        let mut stats = MatchStats {
            events: events.len() as u64,
            ..MatchStats::default()
        };
        let matches: Vec<Vec<u64>> = events
            .iter()
            .map(|event| {
                self.subs
                    .iter()
                    .filter(|(_, sub)| {
                        stats.candidates += 1;
                        sub.filter.contains(&event.key)
                    })
                    .map(|(&id, _)| id)
                    .collect()
            })
            .collect();
        stats.matched = matches.iter().map(|m| m.len() as u64).sum();
        MatchSet { matches, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_scan_matches_and_expires() {
        let mut reference = ReferenceMatcher::new(256, 4, 8);
        reference.subscribe(1, &["apples", "pears"]);
        reference.subscribe_until(2, &["pears"], 5);
        let set = reference.match_events(&[Event::new("pears")]);
        assert_eq!(set.matches[0], vec![1, 2]);
        assert_eq!(set.stats.candidates, 2);

        assert_eq!(reference.expire(5), 1, "deadline passed");
        reference.decay(8);
        let set = reference.match_events(&[Event::new("pears")]);
        assert!(set.matches[0].is_empty(), "fully decayed");
        assert_eq!(reference.expire(0), 1, "decayed-out subscriber expires");
        assert_eq!(reference.live_count(), 0);
    }
}
