//! The differential proof harness: `MatchIndex` ≡ `ReferenceMatcher`.
//!
//! Both implementations are driven through identical randomized
//! interleavings of subscribe / unsubscribe / expire / decay / match
//! operations — including deadline churn, decay past full expiry, and
//! enough unsubscription pressure to force tier-pool compactions — and
//! every `match_events` call must return byte-identical per-event
//! subscriber lists. Because the reference stores a *dense*
//! [`bsub_bloom::Tcbf`] per subscriber (built exactly as a consumer's
//! genuine filter), equality here simultaneously pins the index's
//! sparse member representation to the dense TCBF semantics, Bloom
//! false positives included.
//!
//! Geometries are chosen adversarially: tiny filters force hash
//! collisions and tier-pool false positives, tiny tiers force spills
//! and compactions, small initial counters force expiry boundaries.
//! Four geometries × ≥30 seeds each = 130 seeded interleavings.

use bsub_bloom::SplitMix64;
use bsub_match::{Event, MatchIndex, MatchParams, ReferenceMatcher};

const KEY_POOL: usize = 40;
const STEPS: usize = 70;

fn key(i: u64) -> String {
    format!("key-{}", i % KEY_POOL as u64)
}

/// Draw 1–4 keys from the shared pool (never zero: the index keeps a
/// keyless subscription alive until its uniform counter decays while
/// the reference's empty filter expires immediately — both match
/// nothing either way, but `expire` *counts* would diverge and this
/// harness asserts those too).
fn draw_keys(rng: &mut SplitMix64) -> Vec<String> {
    let n = 1 + (rng.next_u64() % 4) as usize;
    (0..n).map(|_| key(rng.next_u64())).collect()
}

fn draw_batch(rng: &mut SplitMix64) -> Vec<Event> {
    let n = 1 + (rng.next_u64() % 12) as usize;
    (0..n)
        .map(|_| {
            if rng.next_u64().is_multiple_of(5) {
                Event::new(format!("absent-{}", rng.next_u64() % 64))
            } else {
                Event::new(key(rng.next_u64()))
            }
        })
        .collect()
}

/// Runs one seeded interleaving; returns compactions performed.
fn drive(seed: u64, params: MatchParams) -> u64 {
    let mut rng = SplitMix64::new(seed);
    let mut index = MatchIndex::new(params);
    let mut reference = ReferenceMatcher::from_params(&params);
    let mut ids: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut now = 0u64;

    for step in 0..STEPS {
        match rng.next_u64() % 100 {
            // Subscribe: fresh id, or re-subscribe an existing one.
            0..=34 => {
                let id = if !ids.is_empty() && rng.next_u64().is_multiple_of(4) {
                    ids[(rng.next_u64() % ids.len() as u64) as usize]
                } else {
                    next_id += 1;
                    ids.push(next_id);
                    next_id
                };
                let keys = draw_keys(&mut rng);
                if rng.next_u64() % 10 < 3 {
                    let deadline = now + 1 + rng.next_u64() % 12;
                    index.subscribe_until(id, &keys, deadline);
                    reference.subscribe_until(id, &keys, deadline);
                } else {
                    index.subscribe(id, &keys);
                    reference.subscribe(id, &keys);
                }
            }
            // Unsubscribe: a known id (often live) or a bogus one.
            35..=54 => {
                let id = if ids.is_empty() || rng.next_u64().is_multiple_of(8) {
                    u64::MAX - rng.next_u64() % 3
                } else {
                    ids[(rng.next_u64() % ids.len() as u64) as usize]
                };
                assert_eq!(
                    index.unsubscribe(id),
                    reference.unsubscribe(id),
                    "seed {seed} step {step}: unsubscribe({id}) disagreed"
                );
            }
            // Decay, occasionally past full expiry.
            55..=69 => {
                let amount = 1 + (rng.next_u64() % u64::from(params.initial + 2)) as u32;
                index.decay(amount);
                reference.decay(amount);
            }
            // Advance time and expire deadline-passed / decayed-out.
            70..=79 => {
                now += 1 + rng.next_u64() % 4;
                assert_eq!(
                    index.expire(now),
                    reference.expire(now),
                    "seed {seed} step {step}: expire({now}) counts disagreed"
                );
                assert_eq!(index.live_count(), reference.live_count());
            }
            // Match a batch and demand identical MatchSets.
            _ => {
                let batch = draw_batch(&mut rng);
                let ours = index.match_events(&batch);
                let oracle = reference.match_events(&batch);
                assert_eq!(
                    ours.matches, oracle.matches,
                    "seed {seed} step {step}: match diverged on {batch:?}"
                );
                assert_eq!(ours.stats.matched, oracle.stats.matched);
                assert_eq!(ours.total(), oracle.total());
            }
        }
    }

    // Closing sweep: every pool key plus some absent ones, after all
    // the churn above.
    let closing: Vec<Event> = (0..KEY_POOL as u64)
        .map(key)
        .chain((0..8).map(|i| format!("closing-absent-{i}")))
        .map(Event::new)
        .collect();
    let ours = index.match_events(&closing);
    let oracle = reference.match_events(&closing);
    assert_eq!(ours.matches, oracle.matches, "seed {seed}: closing sweep");
    index.compactions()
}

fn run_geometry(name: &str, params: MatchParams, seeds: std::ops::Range<u64>) {
    let mut compactions = 0;
    for seed in seeds {
        compactions += drive(SplitMix64::mix(0xB50B, seed), params);
    }
    assert!(
        compactions > 0,
        "{name}: churn never compacted a tier — the suite lost coverage"
    );
}

#[test]
fn differential_default_like_geometry() {
    run_geometry(
        "default-like",
        MatchParams {
            member_bits: 1024,
            member_hashes: 4,
            initial: 8,
            tier_size: 6,
            tier_budget_bytes: 8 * 1024,
            keys_per_subscriber_hint: 3,
            compact_ratio: 0.5,
        },
        0..40,
    );
}

#[test]
fn differential_collision_heavy_geometry() {
    // 16-bit filters: false positives everywhere, in members, tiers,
    // and pools alike — the reference scan reports phantom matches and
    // the index must report the very same ones. Equivalence must hold
    // *through* the false positives, not despite them.
    run_geometry(
        "collision-heavy",
        MatchParams {
            member_bits: 16,
            member_hashes: 2,
            initial: 4,
            tier_size: 3,
            tier_budget_bytes: 1024,
            keys_per_subscriber_hint: 2,
            compact_ratio: 0.3,
        },
        0..30,
    );
}

#[test]
fn differential_tiny_tiers_geometry() {
    // tier_size = 1: every subscriber is its own tier; maximum
    // tombstone pressure, compaction on nearly every removal.
    run_geometry(
        "tiny-tiers",
        MatchParams {
            member_bits: 64,
            member_hashes: 3,
            initial: 3,
            tier_size: 1,
            tier_budget_bytes: 2048,
            keys_per_subscriber_hint: 2,
            compact_ratio: 0.4,
        },
        0..30,
    );
}

#[test]
fn differential_wide_geometry() {
    // Production-shaped: big tiers, big pools, slow decay.
    run_geometry(
        "wide",
        MatchParams {
            member_bits: 4096,
            member_hashes: 4,
            initial: 16,
            tier_size: 64,
            tier_budget_bytes: 64 * 1024,
            keys_per_subscriber_hint: 4,
            compact_ratio: 0.5,
        },
        0..30,
    );
}

/// The pruning layer must never hide a match: with aggressive decay
/// and churn, drive long interleavings on the collision-heavy
/// geometry and cross-check every single event against the oracle
/// (already covered per-batch above; this pins the count at 100+
/// interleavings total across the suite).
#[test]
fn suite_runs_at_least_100_interleavings() {
    // 40 + 30 + 30 + 30 seeded drives run in the four tests above.
    let total = 40 + 30 + 30 + 30;
    assert!(total >= 100);
}
