//! Property suite for deadline-driven expiry — the broker-facing
//! index surface added with the live serving plane (PR 10).
//!
//! Four claims:
//!
//! 1. **Deadline ≡ decay on aligned clocks.** A subscription given the
//!    deadline `born + C` and *never decayed* expires on exactly the
//!    step a decay-driven twin's uniform counter reaches zero, and the
//!    two indexes produce identical match sets (false positives
//!    included) on every step in between.
//! 2. **`purge` fully evicts a member from its tier aggregate** — its
//!    keys stop producing tier hits immediately, where the lazy
//!    `unsubscribe` path keeps over-approximating until compaction.
//! 3. **`expire_candidates` is resubscribe-safe**: a stale wheel entry
//!    (the old deadline of a replaced subscription) never evicts the
//!    replacement.
//! 4. **`expire_candidates` over all ids ≡ `expire`** under random
//!    interleavings, and the whole deadline surface stays differential
//!    against [`ReferenceMatcher`].

use bsub_bloom::SplitMix64;
use bsub_match::{Event, MatchIndex, MatchParams, ReferenceMatcher};

const KEY_POOL: u64 = 24;

fn key(i: u64) -> String {
    format!("key-{}", i % KEY_POOL)
}

fn probe_batch() -> Vec<Event> {
    (0..KEY_POOL).map(|i| Event::new(key(i))).collect()
}

fn params() -> MatchParams {
    MatchParams {
        member_bits: 512,
        member_hashes: 3,
        initial: 6,
        tier_size: 3,
        tier_budget_bytes: 4096,
        keys_per_subscriber_hint: 2,
        compact_ratio: 0.4,
    }
}

fn random_keys(rng: &mut SplitMix64) -> Vec<String> {
    let n = 1 + rng.below_usize(3);
    (0..n).map(|_| key(rng.next_u64())).collect()
}

/// Claim 1. Clock alignment: step `t` means the decay twin has seen
/// `t` decay epochs and the deadline twin's wall clock reads `t`. A
/// subscription born at step `b` gets deadline `b + C` on the deadline
/// side and plain `subscribe` on the decay side; both must vanish on
/// step `b + C` and match identically on every earlier step.
#[test]
fn deadline_expiry_equals_epoch_decay_on_aligned_clocks() {
    let p = params();
    let horizon = 3 * u64::from(p.initial) + 4;
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(SplitMix64::mix(0xDEAD, seed));
        let mut by_deadline = MatchIndex::new(p);
        let mut by_decay = MatchIndex::new(p);
        let probes = probe_batch();

        for t in 0..horizon {
            if t > 0 {
                // Advance the aligned clocks: one decay epoch on one
                // side, one wall-clock unit on the other.
                by_decay.decay(1);
                by_decay.expire(0);
                by_deadline.expire(t);
            }

            // A couple of arrivals (and the odd departure) per step,
            // mirrored into both indexes.
            for _ in 0..rng.below_usize(3) {
                let id = rng.below(12);
                if rng.below(5) == 0 {
                    by_deadline.unsubscribe(id);
                    by_decay.unsubscribe(id);
                } else {
                    let keys = random_keys(&mut rng);
                    by_deadline.subscribe_until(id, &keys, t + u64::from(p.initial));
                    by_decay.subscribe(id, &keys);
                }
            }

            assert_eq!(
                by_deadline.live_count(),
                by_decay.live_count(),
                "seed {seed} step {t}: live sets diverged"
            );
            for id in 0..12u64 {
                assert_eq!(
                    by_deadline.is_subscribed(id),
                    by_decay.is_subscribed(id),
                    "seed {seed} step {t}: membership of {id} diverged"
                );
            }
            assert_eq!(
                by_deadline.match_events(&probes).matches,
                by_decay.match_events(&probes).matches,
                "seed {seed} step {t}: match sets diverged"
            );
        }

        // Quiescence: once the clocks pass every deadline, both drain.
        by_decay.decay(p.initial);
        by_decay.expire(0);
        by_deadline.expire(horizon + u64::from(p.initial));
        assert_eq!(by_deadline.live_count(), 0, "seed {seed}");
        assert_eq!(by_decay.live_count(), 0, "seed {seed}");
    }
}

/// Claim 2. Wide geometry so the four members' disjoint keys cannot
/// collide in the tier pool; `compact_ratio` high enough that a single
/// lazy unsubscribe does *not* trip auto-compaction — isolating the
/// difference purge makes.
#[test]
fn purge_evicts_member_from_tier_aggregate_immediately() {
    let p = MatchParams {
        member_bits: 8192,
        member_hashes: 4,
        initial: 8,
        tier_size: 4,
        tier_budget_bytes: 1 << 16,
        keys_per_subscriber_hint: 1,
        compact_ratio: 1.0,
    };

    let build = || {
        let mut idx = MatchIndex::new(p);
        for id in 1..=4u64 {
            idx.subscribe(id, &[format!("unique-topic-{id}")]);
        }
        idx
    };

    // Lazy path: the departed member's key keeps hitting the tier
    // aggregate (sound over-approximation, zero matches).
    let mut lazy = build();
    let set = lazy.match_events(&[Event::new("unique-topic-2")]);
    assert_eq!(set.matches[0], vec![2]);
    assert_eq!(set.stats.tier_hits, 1);
    assert!(lazy.unsubscribe(2));
    let set = lazy.match_events(&[Event::new("unique-topic-2")]);
    assert!(set.matches[0].is_empty());
    assert_eq!(
        set.stats.tier_hits, 1,
        "lazy unsubscribe leaves the key in the aggregate"
    );

    // Purge path: the tier pool is rebuilt at once; the key stops
    // producing tier hits (and therefore candidate confirmations).
    let mut purged = build();
    assert!(purged.purge(2));
    let set = purged.match_events(&[Event::new("unique-topic-2")]);
    assert!(set.matches[0].is_empty());
    assert_eq!(set.stats.tier_hits, 0, "purge evicts from the aggregate");
    assert_eq!(set.stats.candidates, 0);

    // Survivors are untouched.
    for id in [1u64, 3, 4] {
        let set = purged.match_events(&[Event::new(format!("unique-topic-{id}"))]);
        assert_eq!(set.matches[0], vec![id], "survivor {id}");
    }
    assert!(!purged.purge(99), "purging a stranger is a no-op");
}

/// Claim 3. The wheel hands over ids from buckets that came due; a
/// resubscribe moved the deadline, so the stale entry must not evict.
#[test]
fn expire_candidates_is_resubscribe_safe() {
    let mut idx = MatchIndex::new(params());
    idx.subscribe_until(7, &["alpha"], 10);
    assert_eq!(idx.expire_candidates(&[7], 5), 0, "not yet due");
    assert!(idx.is_subscribed(7));

    // Replace the subscription: deadline moves to 100.
    idx.subscribe_until(7, &["alpha", "beta"], 100);
    assert_eq!(
        idx.expire_candidates(&[7], 10),
        0,
        "stale wheel entry for the old deadline must not evict"
    );
    assert!(idx.is_subscribed(7));
    assert_eq!(idx.deadline(7), Some(100));

    // A replacement *without* a deadline is immortal to the wheel.
    idx.subscribe(7, &["alpha"]);
    assert_eq!(idx.expire_candidates(&[7], u64::MAX), 0);
    assert!(idx.is_subscribed(7));

    idx.subscribe_until(7, &["alpha"], 40);
    assert_eq!(idx.expire_candidates(&[7], 40), 1, "due at the deadline");
    assert!(!idx.is_subscribed(7));
    assert_eq!(idx.expire_candidates(&[7], 40), 0, "already gone");
    assert_eq!(idx.expire_candidates(&[99], u64::MAX), 0, "unknown id");
}

/// Claim 4a. Feeding *every* live id to `expire_candidates` removes
/// exactly what a full `expire` scan removes, at every point of a
/// random interleaving.
#[test]
fn expire_candidates_over_all_ids_equals_full_expire() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(SplitMix64::mix(0xFEED, seed));
        let p = params();
        let mut scanned = MatchIndex::new(p);
        let mut targeted = MatchIndex::new(p);
        let probes = probe_batch();
        let ids: Vec<u64> = (0..16).collect();

        for step in 0..120u64 {
            match rng.below(10) {
                0..=4 => {
                    let id = rng.below(16);
                    let keys = random_keys(&mut rng);
                    let deadline = step + 1 + rng.below(20);
                    if rng.below(3) == 0 {
                        scanned.subscribe(id, &keys);
                        targeted.subscribe(id, &keys);
                    } else {
                        scanned.subscribe_until(id, &keys, deadline);
                        targeted.subscribe_until(id, &keys, deadline);
                    }
                }
                5 => {
                    let id = rng.below(16);
                    assert_eq!(scanned.unsubscribe(id), targeted.purge(id));
                }
                6 => {
                    let amount = 1 + rng.below(2) as u32;
                    scanned.decay(amount);
                    targeted.decay(amount);
                }
                _ => {
                    let removed_scan = scanned.expire(step);
                    let removed_targeted = targeted.expire_candidates(&ids, step);
                    assert_eq!(
                        removed_scan, removed_targeted,
                        "seed {seed} step {step}: removal counts diverged"
                    );
                }
            }
            assert_eq!(
                scanned.match_events(&probes).matches,
                targeted.match_events(&probes).matches,
                "seed {seed} step {step}: match sets diverged"
            );
        }
    }
}

/// Claim 4b. The broker-facing surface (`subscribe_until` + `purge` +
/// `expire_candidates`) stays differential against the naive scan
/// under random interleavings — false positives and all. The geometry
/// is collision-heavy on purpose so FP agreement is actually tested.
#[test]
fn broker_surface_stays_differential_against_reference() {
    let p = MatchParams {
        member_bits: 96,
        member_hashes: 2,
        initial: 5,
        tier_size: 3,
        tier_budget_bytes: 1024,
        keys_per_subscriber_hint: 2,
        compact_ratio: 0.3,
    };
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(SplitMix64::mix(0xB10C, seed));
        let mut idx = MatchIndex::new(p);
        let mut reference = ReferenceMatcher::from_params(&p);
        let mut now = 0u64;
        let probes = probe_batch();

        for step in 0..150u64 {
            match rng.below(10) {
                0..=3 => {
                    let id = rng.below(10);
                    let keys = random_keys(&mut rng);
                    if rng.below(2) == 0 {
                        let deadline = now + 1 + rng.below(8);
                        idx.subscribe_until(id, &keys, deadline);
                        reference.subscribe_until(id, &keys, deadline);
                    } else {
                        idx.subscribe(id, &keys);
                        reference.subscribe(id, &keys);
                    }
                }
                4..=5 => {
                    let id = rng.below(12);
                    assert_eq!(
                        idx.purge(id),
                        reference.unsubscribe(id),
                        "seed {seed} step {step}: membership diverged on purge({id})"
                    );
                }
                6 => {
                    now += 1 + rng.below(3);
                    let ids: Vec<u64> = (0..10).collect();
                    assert_eq!(
                        idx.expire_candidates(&ids, now),
                        reference.expire(now),
                        "seed {seed} step {step}: expiry at now={now} diverged"
                    );
                }
                _ => {
                    assert_eq!(
                        idx.match_events(&probes).matches,
                        reference.match_events(&probes).matches,
                        "seed {seed} step {step}: match sets diverged"
                    );
                }
            }
        }
        assert_eq!(idx.live_count(), reference.live_count(), "seed {seed}");
    }
}
