//! Deterministic jittered exponential backoff for dial retries.
//!
//! Retry timing must be jittered (so a fleet of workers dialing one
//! coordinator doesn't thunder in lockstep) yet deterministic (so a
//! failing cluster run replays identically under a fixed seed). Both
//! at once: the jitter stream is a [`SplitMix64`] seeded from the
//! cluster seed and the (local, remote) peer pair, so every process
//! derives its own schedule from shared constants and nothing else.

use bsub_bloom::SplitMix64;
use std::time::Duration;

/// A deterministic exponential backoff schedule with full jitter.
///
/// Attempt `n` sleeps between `base · 2ⁿ / 2` and `base · 2ⁿ`
/// (capped), the point in that range chosen by the seeded stream.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: SplitMix64,
    attempt: u32,
}

impl Backoff {
    /// Default first-retry delay.
    pub const DEFAULT_BASE: Duration = Duration::from_millis(10);
    /// Default ceiling on a single delay.
    pub const DEFAULT_CAP: Duration = Duration::from_millis(500);

    /// A schedule for retries from `local` toward `remote` under the
    /// cluster-wide `seed`, with the default base and cap.
    #[must_use]
    pub fn new(seed: u64, local: u64, remote: u64) -> Self {
        Self::with_bounds(seed, local, remote, Self::DEFAULT_BASE, Self::DEFAULT_CAP)
    }

    /// A schedule with explicit base delay and cap.
    #[must_use]
    pub fn with_bounds(seed: u64, local: u64, remote: u64, base: Duration, cap: Duration) -> Self {
        // Golden-ratio mixing keeps distinct (local, remote) pairs on
        // distinct streams even under small consecutive ids.
        let stream = seed
            ^ local.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ remote.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        Self {
            base: base.max(Duration::from_millis(1)),
            cap: cap.max(base),
            rng: SplitMix64::new(stream),
            attempt: 0,
        }
    }

    /// The number of delays handed out so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(16);
        self.attempt = self.attempt.saturating_add(1);
        let ceiling = self
            .base
            .saturating_mul(1u32 << shift.min(31))
            .min(self.cap)
            .as_millis() as u64;
        let floor = ceiling / 2;
        let jittered = floor + self.rng.below(ceiling - floor + 1);
        Duration::from_millis(jittered)
    }

    /// Restarts the schedule after a successful connection (the
    /// jitter stream keeps advancing; only the exponent resets).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, local: u64, remote: u64, n: usize) -> Vec<Duration> {
        let mut b = Backoff::new(seed, local, remote);
        (0..n).map(|_| b.next_delay()).collect()
    }

    #[test]
    fn same_inputs_same_schedule() {
        assert_eq!(schedule(7, 1, 0, 12), schedule(7, 1, 0, 12));
    }

    #[test]
    fn distinct_peers_get_distinct_jitter() {
        assert_ne!(schedule(7, 1, 0, 12), schedule(7, 2, 0, 12));
        assert_ne!(schedule(7, 1, 0, 12), schedule(8, 1, 0, 12));
    }

    #[test]
    fn delays_grow_toward_cap_and_respect_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut b = Backoff::with_bounds(3, 1, 2, base, cap);
        let mut last_ceiling = Duration::ZERO;
        for attempt in 0..12u32 {
            let ceiling = base.saturating_mul(1 << attempt.min(16)).min(cap);
            let d = b.next_delay();
            assert!(d <= ceiling, "attempt {attempt}: {d:?} over {ceiling:?}");
            assert!(
                d >= Duration::from_millis(ceiling.as_millis() as u64 / 2),
                "attempt {attempt}: {d:?} below half-ceiling jitter floor"
            );
            assert!(ceiling >= last_ceiling, "ceiling is monotone");
            last_ceiling = ceiling;
        }
        assert_eq!(b.attempts(), 12);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= base, "reset returns to the base delay");
    }
}
