//! The live broker service: a `bsub_match::MatchIndex` served over
//! the peer state machine (DESIGN.md §16).
//!
//! PR 8's matching index answers batch queries in-process; this module
//! puts it behind real sockets. A [`BrokerNode`] binds a
//! [`PeerManager`], and a single **service thread** owns the index and
//! runs the drain → expire → apply cycle:
//!
//! 1. **Drain.** Inbound `SUBSCRIBE` / `UNSUBSCRIBE` / `PUBLISH`
//!    frames are pulled from the per-peer inbound queues into one
//!    batch (first frame blocking up to the poll slice, the rest
//!    opportunistically, capped at [`BrokerConfig::batch_max`]).
//! 2. **Expire.** Subscriptions carry *real-clock* deadlines — the
//!    sim's epoch decay replaced by wall time. A coarse monotonic
//!    [`ClockWheel`] buckets deadlines at [`BrokerConfig::tick`]
//!    granularity; each cycle pops only the buckets strictly below the
//!    current tick (so popped entries are definitely due — expiry lags
//!    a deadline by at most one tick) and hands the ids to
//!    [`MatchIndex::expire_candidates`], which re-checks the *current*
//!    deadline so a stale bucket entry left behind by a resubscribe
//!    never evicts the fresh subscription.
//! 3. **Apply.** Ops are applied in arrival order. Consecutive
//!    publishes accumulate into a run and are matched through **one**
//!    [`MatchIndex::match_events`] call — the batch path the index was
//!    built for — flushed whenever a subscribe/unsubscribe arrives (so
//!    ordering semantics stay exactly sequential) and at batch end.
//!    Matched publications fan out as `DELIVER` frames on the
//!    existing bounded outbound queues: a slow subscriber exerts
//!    backpressure on the service loop, never an unbounded buffer.
//!
//! Exactness is anchored by the **op journal**: when
//! [`BrokerConfig::journal`] is set, the broker records the exact
//! order in which it applied subscribes, unsubscribes, publishes, and
//! wheel expiries. Replaying that journal through the in-process
//! [`bsub_match::ReferenceMatcher`] must reproduce the broker's
//! deliveries *exactly* — Bloom false positives included — which is
//! what `tests/broker.rs` asserts over seeded concurrent clients.
//!
//! Everything here is `std`-only: blocking sockets, one service
//! thread, no async runtime.

use crate::frame::{Frame, FrameKind};
use crate::peer::{PeerConfig, PeerId, PeerManager};
use crate::transport::EndpointAddr;
use bsub_match::{Event, IndexState, MatchIndex, MatchParams};
use bsub_obs::{self as obs, Counter, SizeHist, TimeHist};
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// `SUBSCRIBE` body: a TTL and the key set (DESIGN.md §16.2).
///
/// ```text
/// offset  size  field
///      0     8  ttl_ms   — u64 LE; 0 = no deadline
///      8     4  keys     — key count, u32 LE
///     12     …  per key: len u32 LE, then len bytes (UTF-8)
/// ```
///
/// A client's new `SUBSCRIBE` *replaces* its previous one (same
/// semantics as [`MatchIndex::subscribe`] under one id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeBody {
    /// Time-to-live in milliseconds on the broker's clock; 0 keeps the
    /// subscription until unsubscribe or disconnect.
    pub ttl_ms: u64,
    /// The subscribed content keys.
    pub keys: Vec<String>,
}

impl SubscribeBody {
    /// Encodes the body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.keys.iter().map(|k| 4 + k.len()).sum::<usize>());
        out.extend_from_slice(&self.ttl_ms.to_le_bytes());
        out.extend_from_slice(&(self.keys.len() as u32).to_le_bytes());
        for key in &self.keys {
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key.as_bytes());
        }
        out
    }

    /// Decodes a body; `None` on truncation, trailing bytes, or
    /// non-UTF-8 keys.
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<Self> {
        let mut r = Cursor::new(body);
        let ttl_ms = r.u64()?;
        let count = r.u32()?;
        let mut keys = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            keys.push(r.string()?);
        }
        r.done()?;
        Some(Self { ttl_ms, keys })
    }
}

/// `PUBLISH` body: one keyed event (DESIGN.md §16.2).
///
/// ```text
/// offset  size  field
///      0     8  seq      — publisher-chosen sequence id, u64 LE
///      8     8  sent_ns  — publisher's UNIX-epoch send time, u64 LE
///     16     4  len      — key length, u32 LE
///     20   len  key      — UTF-8 bytes
/// ```
///
/// `seq` and `sent_ns` are opaque to the broker and echoed verbatim in
/// every `DELIVER` the publish produces: `seq` lets a test key
/// deliveries to publishes, `sent_ns` lets a same-host subscriber
/// compute publish→deliver latency without clock exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishBody {
    /// Publisher-chosen sequence id, echoed in deliveries.
    pub seq: u64,
    /// Publisher's send timestamp (UNIX nanos), echoed in deliveries.
    pub sent_ns: u64,
    /// The event's content key.
    pub key: String,
}

impl PublishBody {
    /// Encodes the body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.key.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.sent_ns.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out
    }

    /// Decodes a body; `None` on truncation, trailing bytes, or a
    /// non-UTF-8 key.
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<Self> {
        let mut r = Cursor::new(body);
        let seq = r.u64()?;
        let sent_ns = r.u64()?;
        let key = r.string()?;
        r.done()?;
        Some(Self { seq, sent_ns, key })
    }
}

/// `DELIVER` body: one matched publication (DESIGN.md §16.2).
///
/// ```text
/// offset  size  field
///      0     8  seq        — echoed from the PUBLISH, u64 LE
///      8     8  sent_ns    — echoed from the PUBLISH, u64 LE
///     16     4  publisher  — publishing peer id, u32 LE
///     20     4  len        — key length, u32 LE
///     24   len  key        — UTF-8 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliverBody {
    /// The publisher's sequence id.
    pub seq: u64,
    /// The publisher's send timestamp (UNIX nanos).
    pub sent_ns: u64,
    /// The publishing peer.
    pub publisher: u32,
    /// The event's content key.
    pub key: String,
}

impl DeliverBody {
    /// Encodes the body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.key.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.sent_ns.to_le_bytes());
        out.extend_from_slice(&self.publisher.to_le_bytes());
        out.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        out.extend_from_slice(self.key.as_bytes());
        out
    }

    /// Decodes a body; `None` on truncation, trailing bytes, or a
    /// non-UTF-8 key.
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<Self> {
        let mut r = Cursor::new(body);
        let seq = r.u64()?;
        let sent_ns = r.u64()?;
        let publisher = r.u32()?;
        let key = r.string()?;
        r.done()?;
        Some(Self {
            seq,
            sent_ns,
            publisher,
            key,
        })
    }
}

/// Minimal LE field reader shared by the body codecs; rejects
/// truncation and (via [`Cursor::done`]) trailing bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() < n {
            return None;
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> Option<()> {
        self.bytes.is_empty().then_some(())
    }
}

/// A coarse monotonic timer wheel over subscription deadlines.
///
/// Deadlines (broker-monotonic milliseconds) are bucketed at `tick_ms`
/// granularity: bucket `b` holds every deadline in
/// `[b·tick, (b+1)·tick)`. [`ClockWheel::pop_due`] drains only buckets
/// **strictly below** `now / tick`, so every popped entry's deadline
/// is `< ⌊now/tick⌋·tick ≤ now` — definitely due, at the cost of
/// expiry lagging a deadline by at most one tick (that lag is the
/// documented coarseness of the wheel, DESIGN.md §16.3).
///
/// Entries are never *removed* on resubscribe — the wheel is
/// append-only between pops, and stale entries are rendered harmless
/// by [`MatchIndex::expire_candidates`] re-checking live deadlines.
#[derive(Debug)]
pub struct ClockWheel {
    tick_ms: u64,
    buckets: BTreeMap<u64, Vec<u64>>,
}

impl ClockWheel {
    /// An empty wheel with `tick_ms` bucket granularity (minimum 1).
    #[must_use]
    pub fn new(tick_ms: u64) -> Self {
        Self {
            tick_ms: tick_ms.max(1),
            buckets: BTreeMap::new(),
        }
    }

    /// Schedules `id` for expiry at `deadline_ms`.
    pub fn schedule(&mut self, id: u64, deadline_ms: u64) {
        self.buckets
            .entry(deadline_ms / self.tick_ms)
            .or_default()
            .push(id);
    }

    /// Drains every id whose bucket lies strictly below the current
    /// tick — all of them provably at or past their deadline.
    #[must_use]
    pub fn pop_due(&mut self, now_ms: u64) -> Vec<u64> {
        let current = now_ms / self.tick_ms;
        let mut due = Vec::new();
        while let Some((&bucket, _)) = self.buckets.first_key_value() {
            if bucket >= current {
                break;
            }
            let mut ids = self.buckets.remove(&bucket).expect("bucket exists");
            due.append(&mut ids);
        }
        due
    }

    /// Pending (possibly stale) entries across all buckets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether no entry is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// One operation the broker applied, in application order — the
/// journal [`BrokerNode::journal`] exposes for differential replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerOp {
    /// A `SUBSCRIBE` was applied for `client` at `at_ms`.
    Subscribe {
        /// The subscribing peer.
        client: u32,
        /// TTL carried on the frame (0 = none).
        ttl_ms: u64,
        /// The subscribed keys.
        keys: Vec<String>,
        /// Broker-monotonic application time.
        at_ms: u64,
    },
    /// An `UNSUBSCRIBE` was applied for `client`.
    Unsubscribe {
        /// The unsubscribing peer.
        client: u32,
    },
    /// A `PUBLISH` was matched; `delivered` holds the subscriber ids
    /// the broker enqueued `DELIVER` frames toward (ascending).
    Publish {
        /// The publishing peer.
        client: u32,
        /// The publisher's sequence id.
        seq: u64,
        /// The event key.
        key: String,
        /// Matched subscriber ids, ascending.
        delivered: Vec<u64>,
    },
    /// The clock wheel evicted `clients` at `at_ms` (only ids actually
    /// removed by [`MatchIndex::expire_candidates`]).
    Expire {
        /// Evicted subscriber ids, in eviction order.
        clients: Vec<u64>,
        /// Broker-monotonic application time.
        at_ms: u64,
    },
}

/// Configuration of a [`BrokerNode`].
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// The peer-layer configuration (identity, listen address, queue
    /// depth — the broker's `DELIVER` backpressure surface).
    pub peer: PeerConfig,
    /// Geometry and policy of the owned [`MatchIndex`].
    pub params: MatchParams,
    /// Clock-wheel tick: expiry may lag a deadline by at most this.
    pub tick: Duration,
    /// Most ops drained into one service-loop batch.
    pub batch_max: usize,
    /// How long the service loop blocks for the first frame of a batch
    /// (also bounds shutdown latency).
    pub poll: Duration,
    /// Record the op journal for differential replay (tests only —
    /// the journal grows without bound).
    pub journal: bool,
}

impl BrokerConfig {
    /// Defaults: 100 ms wheel tick, 256-op batches, 5 ms poll slice,
    /// no journal, default index geometry.
    #[must_use]
    pub fn new(local: PeerId, addr: EndpointAddr, seed: u64) -> Self {
        Self {
            peer: PeerConfig::new(local, addr, seed),
            params: MatchParams::default(),
            tick: Duration::from_millis(100),
            batch_max: 256,
            poll: Duration::from_millis(5),
            journal: false,
        }
    }
}

/// A live broker: a bound [`PeerManager`] plus the service thread that
/// owns the match index. See the module docs for the service cycle.
#[derive(Debug)]
pub struct BrokerNode {
    peers: Arc<PeerManager>,
    index: Arc<Mutex<MatchIndex>>,
    journal: Arc<Mutex<Vec<BrokerOp>>>,
    stop: Arc<AtomicBool>,
    started: Instant,
    service: Option<JoinHandle<()>>,
}

impl BrokerNode {
    /// Binds the configured address and starts the service thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(config: BrokerConfig) -> io::Result<Self> {
        let peers = PeerManager::bind(config.peer.clone())?;
        let index = Arc::new(Mutex::new(MatchIndex::new(config.params)));
        let journal = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let service = {
            let peers = Arc::clone(&peers);
            let index = Arc::clone(&index);
            let journal = Arc::clone(&journal);
            let stop = Arc::clone(&stop);
            thread::spawn(move || service_loop(&config, &peers, &index, &journal, &stop, started))
        };
        Ok(Self {
            peers,
            index,
            journal,
            stop,
            started,
            service: Some(service),
        })
    }

    /// The broker's peer manager (for metrics, state, shutdown).
    #[must_use]
    pub fn manager(&self) -> &Arc<PeerManager> {
        &self.peers
    }

    /// Milliseconds elapsed on the broker's monotonic clock — the
    /// clock subscription deadlines are measured against.
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Live subscriber count of the owned index.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.index.lock().expect("index lock").live_count()
    }

    /// Exports the live index state (checkpointing — see
    /// `bsub_core::snapshot::encode_match_index` for the byte codec).
    #[must_use]
    pub fn export_index(&self) -> IndexState {
        self.index.lock().expect("index lock").export_state()
    }

    /// The op journal recorded so far (empty unless
    /// [`BrokerConfig::journal`] was set).
    #[must_use]
    pub fn journal(&self) -> Vec<BrokerOp> {
        self.journal.lock().expect("journal lock").clone()
    }

    /// Stops the service thread (after it finishes its current cycle)
    /// and tears down every connection.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.service.take() {
            let _ = handle.join();
        }
        self.peers.shutdown();
    }
}

impl Drop for BrokerNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One drained client op awaiting application.
enum PendingOp {
    Subscribe(u32, SubscribeBody),
    Unsubscribe(u32),
    Publish(u32, PublishBody),
}

fn service_loop(
    config: &BrokerConfig,
    peers: &Arc<PeerManager>,
    index: &Arc<Mutex<MatchIndex>>,
    journal: &Arc<Mutex<Vec<BrokerOp>>>,
    stop: &AtomicBool,
    started: Instant,
) {
    // The index's own `match_*` instrumentation is thread-local; run a
    // profiler on this thread and fold its deltas into the shared
    // NetMetrics sink after every batch, so a stats scrape sees broker
    // and socket metrics in one report.
    obs::start();
    let mut wheel = ClockWheel::new(config.tick.as_millis().max(1) as u64);
    let tick_ms = config.tick.as_millis().max(1) as u64;
    while !stop.load(Ordering::SeqCst) {
        // Drain one batch: block briefly for the first op, then sweep
        // whatever else is already queued.
        let mut ops: Vec<PendingOp> = Vec::new();
        if let Some(op) = next_op(peers, config.poll) {
            ops.push(op);
            while ops.len() < config.batch_max {
                match next_op(peers, Duration::ZERO) {
                    Some(op) => ops.push(op),
                    None => break,
                }
            }
        }

        let now_ms = started.elapsed().as_millis() as u64;
        let due = wheel.pop_due(now_ms);
        if !due.is_empty() || !ops.is_empty() {
            let batch_started = Instant::now();
            let op_count = ops.len() as u64;
            let mut idx = index.lock().expect("index lock");

            if !due.is_empty() {
                let evicted: Vec<u64> = due
                    .iter()
                    .copied()
                    .filter(|&id| idx.expire_candidates(&[id], now_ms) == 1)
                    .collect();
                if !evicted.is_empty() {
                    obs::count(Counter::BrokerExpired, evicted.len() as u64);
                    if config.journal {
                        journal
                            .lock()
                            .expect("journal lock")
                            .push(BrokerOp::Expire {
                                clients: evicted,
                                at_ms: now_ms,
                            });
                    }
                }
            }

            // Apply in arrival order; consecutive publishes accumulate
            // into one match_events run, flushed at every boundary.
            let mut pending: Vec<(u32, PublishBody)> = Vec::new();
            for op in ops {
                match op {
                    PendingOp::Subscribe(client, body) => {
                        flush_publishes(&idx, peers, journal, config.journal, &mut pending);
                        obs::count(Counter::BrokerSubscribes, 1);
                        if body.ttl_ms == 0 {
                            idx.subscribe(u64::from(client), &body.keys);
                        } else {
                            let deadline = now_ms.saturating_add(body.ttl_ms);
                            idx.subscribe_until(u64::from(client), &body.keys, deadline);
                            // Round the deadline *up* to a bucket whose
                            // pop time is past it (pop_due only drains
                            // buckets strictly below the current tick).
                            wheel.schedule(u64::from(client), deadline.saturating_add(tick_ms));
                        }
                        if config.journal {
                            journal
                                .lock()
                                .expect("journal lock")
                                .push(BrokerOp::Subscribe {
                                    client,
                                    ttl_ms: body.ttl_ms,
                                    keys: body.keys,
                                    at_ms: now_ms,
                                });
                        }
                    }
                    PendingOp::Unsubscribe(client) => {
                        flush_publishes(&idx, peers, journal, config.journal, &mut pending);
                        if idx.purge(u64::from(client)) {
                            obs::count(Counter::BrokerUnsubscribes, 1);
                            if config.journal {
                                journal
                                    .lock()
                                    .expect("journal lock")
                                    .push(BrokerOp::Unsubscribe { client });
                            }
                        }
                    }
                    PendingOp::Publish(client, body) => pending.push((client, body)),
                }
            }
            flush_publishes(&idx, peers, journal, config.journal, &mut pending);
            drop(idx);

            obs::count(Counter::BrokerBatches, 1);
            obs::observe(SizeHist::BrokerBatchOps, op_count);
            obs::observe_ns(
                TimeHist::BrokerBatchNs,
                batch_started.elapsed().as_nanos() as u64,
            );
            peers.metrics().absorb(&obs::finish());
            obs::start();
        }
    }
    peers.metrics().absorb(&obs::finish());
}

/// Matches the accumulated publish run through one `match_events` call
/// and fans the results out as `DELIVER` frames.
fn flush_publishes(
    idx: &MatchIndex,
    peers: &Arc<PeerManager>,
    journal: &Arc<Mutex<Vec<BrokerOp>>>,
    record: bool,
    pending: &mut Vec<(u32, PublishBody)>,
) {
    if pending.is_empty() {
        return;
    }
    let events: Vec<Event> = pending.iter().map(|(_, b)| Event::new(&*b.key)).collect();
    let set = idx.match_events(&events);
    obs::count(Counter::BrokerPublishes, pending.len() as u64);
    for ((publisher, body), matched) in pending.drain(..).zip(set.matches) {
        obs::count(Counter::BrokerDeliveries, matched.len() as u64);
        for &subscriber in &matched {
            let deliver = DeliverBody {
                seq: body.seq,
                sent_ns: body.sent_ns,
                publisher,
                key: body.key.clone(),
            };
            // A subscriber that disconnected mid-flight is not an
            // error; its index entry outlives the socket until an
            // unsubscribe or deadline reaps it.
            let _ = peers.send(
                PeerId(subscriber as u32),
                Frame::new(FrameKind::Deliver, deliver.encode()),
            );
        }
        if record {
            journal
                .lock()
                .expect("journal lock")
                .push(BrokerOp::Publish {
                    client: publisher,
                    seq: body.seq,
                    key: body.key,
                    delivered: matched,
                });
        }
    }
}

/// Pulls the next *service-plane* frame; malformed bodies and
/// cluster-plane kinds are dropped (a broker serves clients, not a
/// simulation cluster).
fn next_op(peers: &Arc<PeerManager>, timeout: Duration) -> Option<PendingOp> {
    let (from, frame) = peers.recv_timeout(timeout)?;
    match frame.kind {
        FrameKind::Subscribe => {
            SubscribeBody::decode(&frame.body).map(|body| PendingOp::Subscribe(from.0, body))
        }
        FrameKind::Unsubscribe if frame.body.is_empty() => Some(PendingOp::Unsubscribe(from.0)),
        FrameKind::Publish => {
            PublishBody::decode(&frame.body).map(|body| PendingOp::Publish(from.0, body))
        }
        _ => None,
    }
}

/// A delivery received by a [`BrokerClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The decoded `DELIVER` body.
    pub body: DeliverBody,
    /// Receive time (UNIX nanos) on the client's clock, for
    /// publish→deliver latency against [`DeliverBody::sent_ns`].
    pub received_ns: u64,
}

impl Delivery {
    /// Publish→deliver latency in nanoseconds (same-host clocks), 0 if
    /// the clocks disagree.
    #[must_use]
    pub fn latency_ns(&self) -> u64 {
        self.received_ns.saturating_sub(self.body.sent_ns)
    }
}

/// A client of a [`BrokerNode`]: its own [`PeerManager`] plus the
/// subscribe/publish/receive conveniences the tests and `broker-bench`
/// share.
#[derive(Debug)]
pub struct BrokerClient {
    peers: Arc<PeerManager>,
    broker: PeerId,
}

impl BrokerClient {
    /// Binds `config`'s address and connects to the broker.
    ///
    /// # Errors
    ///
    /// Propagates bind and dial failures.
    pub fn connect(
        config: PeerConfig,
        broker: PeerId,
        broker_addr: &EndpointAddr,
    ) -> io::Result<Self> {
        let peers = PeerManager::bind(config)?;
        peers.connect(broker, broker_addr)?;
        Ok(Self { peers, broker })
    }

    /// This client's peer id (doubles as its subscriber id).
    #[must_use]
    pub fn local(&self) -> PeerId {
        self.peers.local()
    }

    /// The underlying peer manager.
    #[must_use]
    pub fn manager(&self) -> &Arc<PeerManager> {
        &self.peers
    }

    /// Sends a `SUBSCRIBE` for `keys`, expiring after `ttl` if given.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn subscribe<K: AsRef<str>>(&self, keys: &[K], ttl: Option<Duration>) -> io::Result<()> {
        let body = SubscribeBody {
            ttl_ms: ttl.map_or(0, |t| t.as_millis().max(1) as u64),
            keys: keys.iter().map(|k| k.as_ref().to_string()).collect(),
        };
        self.peers
            .send(self.broker, Frame::new(FrameKind::Subscribe, body.encode()))
    }

    /// Sends an `UNSUBSCRIBE` withdrawing every interest.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn unsubscribe(&self) -> io::Result<()> {
        self.peers
            .send(self.broker, Frame::new(FrameKind::Unsubscribe, Vec::new()))
    }

    /// Publishes `key` under sequence id `seq`, stamped with the
    /// current UNIX time.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn publish(&self, seq: u64, key: &str) -> io::Result<()> {
        let body = PublishBody {
            seq,
            sent_ns: unix_ns(),
            key: key.to_string(),
        };
        self.peers
            .send(self.broker, Frame::new(FrameKind::Publish, body.encode()))
    }

    /// Receives the next delivery, waiting at most `timeout`. Frames
    /// of any other kind are discarded.
    #[must_use]
    pub fn recv_delivery(&self, timeout: Duration) -> Option<Delivery> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (_, frame) = self.peers.recv_timeout(deadline - now)?;
            if frame.kind == FrameKind::Deliver {
                if let Some(body) = DeliverBody::decode(&frame.body) {
                    return Some(Delivery {
                        body,
                        received_ns: unix_ns(),
                    });
                }
            }
        }
    }
}

/// Current UNIX time in nanoseconds, saturating.
#[must_use]
pub fn unix_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_round_trip() {
        let sub = SubscribeBody {
            ttl_ms: 1500,
            keys: vec!["news".into(), String::new(), "sports/⚽".into()],
        };
        assert_eq!(SubscribeBody::decode(&sub.encode()), Some(sub.clone()));
        let publ = PublishBody {
            seq: u64::MAX,
            sent_ns: 7,
            key: "news".into(),
        };
        assert_eq!(PublishBody::decode(&publ.encode()), Some(publ.clone()));
        let del = DeliverBody {
            seq: 3,
            sent_ns: 9,
            publisher: 42,
            key: "news".into(),
        };
        assert_eq!(DeliverBody::decode(&del.encode()), Some(del.clone()));
    }

    #[test]
    fn truncated_and_trailing_bodies_reject() {
        let good = SubscribeBody {
            ttl_ms: 10,
            keys: vec!["k".into()],
        }
        .encode();
        assert!(SubscribeBody::decode(&good[..good.len() - 1]).is_none());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(SubscribeBody::decode(&trailing).is_none());
        assert!(PublishBody::decode(&[]).is_none());
        assert!(DeliverBody::decode(&[1, 2, 3]).is_none());
        // A key length pointing past the buffer.
        let mut lying = PublishBody {
            seq: 1,
            sent_ns: 2,
            key: "abc".into(),
        }
        .encode();
        lying[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(PublishBody::decode(&lying).is_none());
    }

    #[test]
    fn wheel_pops_only_past_deadlines() {
        let mut wheel = ClockWheel::new(100);
        wheel.schedule(1, 50); // bucket 0
        wheel.schedule(2, 150); // bucket 1
        wheel.schedule(3, 250); // bucket 2
        assert_eq!(wheel.len(), 3);
        assert!(wheel.pop_due(99).is_empty(), "bucket 0 not strictly past");
        assert_eq!(wheel.pop_due(100), vec![1]);
        // now=210 ⇒ current tick 2 ⇒ buckets 0 and 1 drain, 2 stays.
        assert_eq!(wheel.pop_due(210), vec![2]);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop_due(10_000), vec![3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_popped_entries_are_definitely_due() {
        let mut wheel = ClockWheel::new(64);
        for id in 0..1000u64 {
            wheel.schedule(id, id * 7 % 997);
        }
        let now = 500;
        for id in wheel.pop_due(now) {
            assert!(id * 7 % 997 < now, "popped {id} before its deadline");
        }
    }
}
