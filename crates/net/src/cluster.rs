//! The loopback cluster runtime: the serial simulator's event loop,
//! re-run across OS processes with the state on sockets.
//!
//! One **coordinator** (peer 0) walks the contact trace in order, and
//! `W` **workers** (peers 1..=W) each host a full instance of the
//! protocol under test, built by the same factory and seed. Node `n`
//! is *owned* by worker `1 + (n mod W)`: the owner's copy of `n`'s
//! state is authoritative between contacts.
//!
//! A contact between nodes `a` and `b` is dispatched to the owner of
//! `a` (the *executor*). The executor pulls a snapshot of any
//! endpoint it does not own (`STATE_REQ` → `STATE_GRANT`, via
//! [`Protocol::export_node`]/[`Protocol::import_node`]), runs the
//! protocol's `on_contact` against its own instance, returns the
//! post-exchange snapshots to their owners (`STATE_RET`, acknowledged
//! toward the coordinator as `NODE_FREE`), and reports the exchange's
//! costs and deliveries (`RESULT`). The coordinator keeps per-node
//! busy flags so no node is in two exchanges at once, and replays
//! results **in contact-index order** into one master
//! [`MetricsCollector`] — which is why the final [`SimReport`] is not
//! merely close to the serial simulator's, but equal to it (the
//! `net-cluster` harness and CI diff the CSVs byte for byte).
//!
//! Publications use a **publish barrier**: before the first contact
//! at or after a scheduled publication, the coordinator drains every
//! in-flight exchange, broadcasts `ADVANCE`, and waits for
//! `PUBLISH_OK` from every worker. Every worker applies every
//! publication to its own instance (cheap, and it keeps globally
//! registered state such as PUSH's message registry dense), so a
//! producer's authoritative owner always has the publication applied
//! before the next exchange can touch it. Publication has no metric
//! side effects on the workers; the coordinator accounts generated
//! messages itself, exactly like the serial runner.
//!
//! Lock discipline (the reason the distributed exchange cannot
//! deadlock): a worker's executor thread acquires its protocol
//! instance **only after** all remote snapshots have arrived, and
//! never blocks on the network while holding it; the main thread
//! serves `STATE_REQ` for any node not currently in an exchange
//! (guaranteed by the coordinator's busy flags). Every wait chain
//! therefore ends at an executor that is simply computing.

use crate::frame::{Frame, FrameKind};
use crate::peer::{PeerConfig, PeerId, PeerManager};
use crate::stats::StatsHandle;
use crate::transport::EndpointAddr;
use bsub_obs::{self as obs, Counter, ProfReport, TimeHist};
use bsub_sim::snapshot::{SnapReader, SnapWriter};
use bsub_sim::{
    GeneratedMessage, Link, Message, MessageId, MetricsCollector, NullRecorder, Protocol,
    ProtocolFactory, Recorder, SimConfig, SimCtx, SimReport, Simulation, SubscriptionTable,
    TraceEvent,
};
use bsub_traces::{ContactTrace, NodeId, SimDuration};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The coordinator's peer id. Workers are `1..=workers`.
pub const COORDINATOR: PeerId = PeerId(0);

/// How long either side waits for the next frame before rechecking
/// liveness.
const POLL: Duration = Duration::from_millis(200);

/// How long a run may make no progress before it is declared wedged
/// (a worker died, a socket path is wrong, ...).
const STALL: Duration = Duration::from_secs(120);

/// How long the coordinator waits for all workers to dial in.
const ASSEMBLY: Duration = Duration::from_secs(60);

/// The Unix-socket address of `peer` inside the cluster's rendezvous
/// directory — the only thing processes must agree on besides the
/// [`ClusterSpec`] itself.
#[must_use]
pub fn peer_addr(dir: &Path, peer: PeerId) -> EndpointAddr {
    EndpointAddr::Unix(dir.join(format!("peer-{}.sock", peer.0)))
}

/// Everything a cluster run shares: the same inputs a [`Simulation`]
/// holds, plus the seed and worker count. Every process derives its
/// copy deterministically (same trace generator, same seeds), so
/// nothing but protocol frames crosses the sockets.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The contact trace driving the run.
    pub trace: Arc<ContactTrace>,
    /// Ground-truth subscriptions.
    pub subscriptions: Arc<SubscriptionTable>,
    /// The publication schedule (sorted by time).
    pub schedule: Arc<[GeneratedMessage]>,
    /// Link rate and TTL.
    pub config: SimConfig,
    /// Seed handed to the protocol factory on every peer.
    pub seed: u64,
    /// Number of worker processes (≥ 1).
    pub workers: u32,
    /// Observability plane (DESIGN.md §15): when set, every worker
    /// arms its socket-thread metrics sink, profiles each executed
    /// contact, and ships delta `ProfReport`s to the coordinator in
    /// `STATS` frames on this cadence (plus a final delta at drain).
    /// `None` (the default) keeps the plane fully off.
    pub stats_cadence: Option<Duration>,
}

impl ClusterSpec {
    /// Builds a spec over the same inputs a [`Simulation`] takes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, the subscription table does not
    /// match the trace, or the schedule is unsorted — the same
    /// contracts [`Simulation::new`] enforces.
    #[must_use]
    pub fn new(
        trace: impl Into<Arc<ContactTrace>>,
        subscriptions: impl Into<Arc<SubscriptionTable>>,
        schedule: impl Into<Arc<[GeneratedMessage]>>,
        config: SimConfig,
        seed: u64,
        workers: u32,
    ) -> Self {
        let trace = trace.into();
        let subscriptions = subscriptions.into();
        let schedule = schedule.into();
        assert!(workers >= 1, "a cluster needs at least one worker");
        assert_eq!(
            subscriptions.node_count(),
            trace.node_count(),
            "subscription table does not match trace"
        );
        assert!(
            schedule.windows(2).all(|w| w[0].at <= w[1].at),
            "message schedule must be sorted by time"
        );
        Self {
            trace,
            subscriptions,
            schedule,
            config,
            seed,
            workers,
            stats_cadence: None,
        }
    }

    /// Enables the live observability plane with the given delta
    /// cadence. Shipping is piggybacked on the worker main loop, so
    /// the effective granularity is bounded below by the loop's poll
    /// interval (200 ms).
    #[must_use]
    pub fn with_stats_cadence(mut self, cadence: Duration) -> Self {
        self.stats_cadence = Some(cadence);
        self
    }

    /// The equivalent serial simulation (the ground truth the cluster
    /// must reproduce exactly).
    #[must_use]
    pub fn simulation(&self) -> Simulation {
        Simulation::new(
            Arc::clone(&self.trace),
            Arc::clone(&self.subscriptions),
            Arc::clone(&self.schedule),
            self.config.clone(),
        )
    }

    /// The worker that owns `node`'s authoritative state.
    #[must_use]
    pub fn node_owner(&self, node: NodeId) -> PeerId {
        PeerId(1 + (node.index() as u32 % self.workers))
    }

    /// Materializes schedule entry `index` exactly like the serial
    /// runner: the message id *is* the schedule index.
    fn message(&self, index: usize) -> Arc<Message> {
        let spec = &self.schedule[index];
        Arc::new(Message {
            id: MessageId::new(index as u64),
            key: Arc::clone(&spec.key),
            size: spec.size,
            created: spec.at,
            ttl: self.config.ttl,
            producer: spec.producer,
        })
    }
}

/// What a finished cluster run hands back.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The master metrics — equal to the serial simulator's report
    /// for the same spec and factory.
    pub report: SimReport,
    /// Wall-clock nanoseconds per exchange (dispatch to result, as
    /// seen by the coordinator), in contact-index order.
    pub exchange_ns: Vec<u64>,
    /// Total wall clock of the run.
    pub wall: Duration,
    /// The cluster-wide merged live report (worker deltas plus the
    /// coordinator's own socket metrics); `None` when the
    /// observability plane was off.
    pub cluster_metrics: Option<ProfReport>,
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn timed_out(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, message.into())
}

// ---- frame body codecs ------------------------------------------------

fn body_u32(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn body_u64(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn read_u32(body: &[u8]) -> io::Result<u32> {
    let mut r = SnapReader::new(body);
    let v = r.u32().ok_or_else(|| bad("truncated u32 body"))?;
    if !r.is_empty() {
        return Err(bad("trailing bytes in u32 body"));
    }
    Ok(v)
}

fn read_u64(body: &[u8]) -> io::Result<u64> {
    let mut r = SnapReader::new(body);
    let v = r.u64().ok_or_else(|| bad("truncated u64 body"))?;
    if !r.is_empty() {
        return Err(bad("trailing bytes in u64 body"));
    }
    Ok(v)
}

fn body_node_bytes(node: u32, bytes: &[u8]) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u32(node);
    w.bytes(bytes);
    w.into_bytes()
}

fn read_node_bytes(body: &[u8]) -> io::Result<(u32, Vec<u8>)> {
    let mut r = SnapReader::new(body);
    let node = r.u32().ok_or_else(|| bad("truncated node id"))?;
    let bytes = r.bytes().ok_or_else(|| bad("truncated snapshot"))?.to_vec();
    if !r.is_empty() {
        return Err(bad("trailing bytes after snapshot"));
    }
    Ok((node, bytes))
}

// ---- STATS sub-protocol (DESIGN.md §15) -------------------------------
//
// body[0] is the stats op; a report payload (the `bsub_obs` wire
// codec) follows for the two delta-carrying ops. Same reset semantics
// as every other frame: a malformed body kills the connection.

/// Coordinator → worker: send your final delta now (no payload).
const STATS_REQUEST: u8 = 0;
/// Worker → coordinator: an unsolicited cadence delta.
const STATS_DELTA: u8 = 1;
/// Worker → coordinator: the final delta, in reply to a request.
const STATS_FINAL: u8 = 2;

fn body_stats(op: u8, report: Option<&ProfReport>) -> Vec<u8> {
    let mut body = vec![op];
    if let Some(report) = report {
        body.extend_from_slice(&report.encode());
    }
    body
}

fn read_stats(body: &[u8]) -> io::Result<(u8, Option<ProfReport>)> {
    let (&op, rest) = body.split_first().ok_or_else(|| bad("empty STATS body"))?;
    match op {
        STATS_REQUEST => {
            if !rest.is_empty() {
                return Err(bad("STATS request carries a payload"));
            }
            Ok((op, None))
        }
        STATS_DELTA | STATS_FINAL => {
            let report = ProfReport::decode(rest).ok_or_else(|| bad("malformed STATS report"))?;
            Ok((op, Some(report)))
        }
        other => Err(bad(format!("unknown STATS op {other}"))),
    }
}

/// One executed contact, as shipped in a `RESULT` frame: the
/// exchange's scalar costs plus its delivery events.
#[derive(Debug, PartialEq, Eq)]
struct ExchangeOutcome {
    index: u64,
    forwardings: u64,
    control_bytes: u64,
    data_bytes: u64,
    injections: u64,
    false_injections: u64,
    /// `(message id, consumer, genuine)` in execution order.
    deliveries: Vec<(u64, u32, bool)>,
}

impl ExchangeOutcome {
    fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u64(self.index);
        w.u64(self.forwardings);
        w.u64(self.control_bytes);
        w.u64(self.data_bytes);
        w.u64(self.injections);
        w.u64(self.false_injections);
        w.u64(self.deliveries.len() as u64);
        for &(msg, node, genuine) in &self.deliveries {
            w.u64(msg);
            w.u32(node);
            w.flag(genuine);
        }
        w.into_bytes()
    }

    fn decode(body: &[u8]) -> io::Result<Self> {
        let mut r = SnapReader::new(body);
        let index = r.u64().ok_or_else(|| bad("truncated result"))?;
        let forwardings = r.u64().ok_or_else(|| bad("truncated result"))?;
        let control_bytes = r.u64().ok_or_else(|| bad("truncated result"))?;
        let data_bytes = r.u64().ok_or_else(|| bad("truncated result"))?;
        let injections = r.u64().ok_or_else(|| bad("truncated result"))?;
        let false_injections = r.u64().ok_or_else(|| bad("truncated result"))?;
        let count = r.u64().ok_or_else(|| bad("truncated result"))?;
        let mut deliveries = Vec::with_capacity(count.min(1 << 16) as usize);
        for _ in 0..count {
            let msg = r.u64().ok_or_else(|| bad("truncated delivery"))?;
            let node = r.u32().ok_or_else(|| bad("truncated delivery"))?;
            let genuine = r.flag().ok_or_else(|| bad("truncated delivery"))?;
            deliveries.push((msg, node, genuine));
        }
        if !r.is_empty() {
            return Err(bad("trailing bytes in result"));
        }
        Ok(Self {
            index,
            forwardings,
            control_bytes,
            data_bytes,
            injections,
            false_injections,
            deliveries,
        })
    }

    /// The scalar costs as a [`SimReport`] shell, for
    /// [`MetricsCollector::absorb_costs`].
    fn as_costs(&self) -> SimReport {
        SimReport {
            protocol: String::new(),
            generated: 0,
            target_pairs: 0,
            delivered: 0,
            false_delivered: 0,
            delay_total: SimDuration::from_millis(0),
            forwardings: self.forwardings,
            control_bytes: self.control_bytes,
            data_bytes: self.data_bytes,
            contacts: 0,
            injections: self.injections,
            false_injections: self.false_injections,
        }
    }
}

/// A recorder that keeps only `Delivered` events — the one event
/// class the coordinator must replay into the master ledger.
#[derive(Debug, Default)]
struct DeliveryTap {
    deliveries: Vec<(u64, u32, bool)>,
}

impl Recorder for DeliveryTap {
    fn is_active(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent) {
        if let TraceEvent::Delivered {
            msg, node, genuine, ..
        } = event
        {
            self.deliveries
                .push((msg.raw(), node.index() as u32, *genuine));
        }
    }
}

/// Applies schedule entries `[from, to)` to `protocol` — the worker
/// side of a publish barrier. Publication has no metric side effects
/// (a publication's only possible delivery is a self-delivery, which
/// the ledger classifies and drops identically on every instance), so
/// a throwaway collector absorbs the context.
fn apply_publishes(spec: &ClusterSpec, protocol: &mut dyn Protocol, from: usize, to: usize) {
    for index in from..to {
        let msg = spec.message(index);
        let mut metrics = MetricsCollector::new();
        let mut recorder = NullRecorder;
        let mut ctx = SimCtx::for_exchange(
            msg.created,
            &spec.subscriptions,
            &mut metrics,
            &mut recorder,
        );
        protocol.on_message(&mut ctx, &msg);
    }
}

// ---- worker -----------------------------------------------------------

/// Runs worker `worker` (1-based, ≤ `spec.workers`) until the
/// coordinator sends `DONE`. Blocks for the whole run.
///
/// # Errors
///
/// Connection failures, malformed frames, a protocol that cannot
/// export/import state, or a coordinator that goes silent for longer
/// than the stall timeout.
///
/// # Panics
///
/// Panics if `worker` is out of range.
pub fn run_worker(
    spec: &ClusterSpec,
    factory: &dyn ProtocolFactory,
    dir: &Path,
    worker: u32,
) -> io::Result<()> {
    assert!(
        (1..=spec.workers).contains(&worker),
        "worker id {worker} out of range 1..={}",
        spec.workers
    );
    let local = PeerId(worker);
    let pm = PeerManager::bind(PeerConfig::new(local, peer_addr(dir, local), spec.seed))?;
    if spec.stats_cadence.is_some() {
        pm.metrics().enable();
    }
    // Deterministic assembly: every peer dials the peers below it, so
    // exactly one side of each link dials in production runs.
    for lower in 0..worker {
        pm.connect(PeerId(lower), &peer_addr(dir, PeerId(lower)))?;
    }
    // Then wait for the peers above to dial in: coordinator plus every
    // other worker = `spec.workers` connections. Without this gate the
    // coordinator (which only counts its own links) can dispatch a
    // contact whose executor immediately needs a worker-worker link
    // that has not assembled yet — the StateReq send then fails
    // NotConnected and the cluster wedges until the stall timeout.
    pm.await_connections(spec.workers as usize, ASSEMBLY)?;

    let protocol: Arc<Mutex<Box<dyn Protocol>>> = Arc::new(Mutex::new(factory.build(spec.seed)));
    let (exec_tx, exec_rx) = mpsc::channel::<u64>();
    let (grant_tx, grant_rx) = mpsc::channel::<(u32, Vec<u8>)>();
    let executor = {
        let pm = Arc::clone(&pm);
        let protocol = Arc::clone(&protocol);
        let spec = spec.clone();
        thread::spawn(move || -> io::Result<()> {
            while let Ok(index) = exec_rx.recv() {
                execute_contact(&spec, &pm, &protocol, &grant_rx, index)?;
            }
            Ok(())
        })
    };

    let mut applied = 0usize;
    let mut last_frame = Instant::now();
    let mut last_stats = Instant::now();
    let mut stats_done = false;
    let main = (|| -> io::Result<()> {
        loop {
            // Cadence shipping: piggybacked on the main loop, so the
            // effective granularity is bounded by POLL. Stops once the
            // final delta has been surrendered, keeping the
            // coordinator's merged total stable from then on.
            if let Some(cadence) = spec.stats_cadence {
                if !stats_done && last_stats.elapsed() >= cadence {
                    last_stats = Instant::now();
                    let delta = pm.metrics().take_delta();
                    if !delta.is_empty() {
                        pm.send(
                            COORDINATOR,
                            Frame::new(FrameKind::Stats, body_stats(STATS_DELTA, Some(&delta))),
                        )?;
                    }
                }
            }
            let Some((from, frame)) = pm.recv_timeout(POLL) else {
                if last_frame.elapsed() > STALL {
                    return Err(timed_out(format!(
                        "coordinator went silent (worker {}, applied={applied}, \
                         stats_done={stats_done})",
                        local.0
                    )));
                }
                continue;
            };
            last_frame = Instant::now();
            match frame.kind {
                FrameKind::Dispatch => {
                    let index = read_u64(&frame.body)?;
                    exec_tx
                        .send(index)
                        .map_err(|_| bad("executor thread is gone"))?;
                }
                FrameKind::StateReq => {
                    let node = read_u32(&frame.body)?;
                    let snapshot = {
                        let guard = protocol.lock().expect("protocol lock");
                        guard
                            .export_node(NodeId::new(node))
                            .ok_or_else(|| bad("protocol cannot export node state"))?
                    };
                    pm.send(
                        from,
                        Frame::new(FrameKind::StateGrant, body_node_bytes(node, &snapshot)),
                    )?;
                }
                FrameKind::StateGrant => {
                    let granted = read_node_bytes(&frame.body)?;
                    // The executor may already have given up on a
                    // wedged run; a dropped receiver is not an error.
                    let _ = grant_tx.send(granted);
                }
                FrameKind::StateRet => {
                    let (node, bytes) = read_node_bytes(&frame.body)?;
                    {
                        let mut guard = protocol.lock().expect("protocol lock");
                        if !guard.import_node(NodeId::new(node), &bytes) {
                            return Err(bad("returned node snapshot rejected"));
                        }
                    }
                    pm.send(COORDINATOR, Frame::new(FrameKind::NodeFree, body_u32(node)))?;
                }
                FrameKind::Advance => {
                    let count = read_u64(&frame.body)? as usize;
                    if count > spec.schedule.len() || count < applied {
                        return Err(bad("ADVANCE outside the schedule"));
                    }
                    {
                        let mut guard = protocol.lock().expect("protocol lock");
                        apply_publishes(spec, &mut **guard, applied, count);
                    }
                    applied = count;
                    pm.send(
                        COORDINATOR,
                        Frame::new(FrameKind::PublishOk, body_u64(count as u64)),
                    )?;
                }
                FrameKind::Stats => {
                    let (op, _) = read_stats(&frame.body)?;
                    if op != STATS_REQUEST {
                        return Err(bad("worker got a non-request STATS frame"));
                    }
                    // Surrender the final delta — even an empty one,
                    // since the coordinator counts replies. Receipt by
                    // the coordinator is the flush guarantee: once it
                    // holds all W finals, nothing is still in flight.
                    let delta = pm.metrics().take_delta();
                    stats_done = true;
                    pm.send(
                        COORDINATOR,
                        Frame::new(FrameKind::Stats, body_stats(STATS_FINAL, Some(&delta))),
                    )?;
                }
                FrameKind::Done => return Ok(()),
                other => return Err(bad(format!("worker got unexpected {other:?} frame"))),
            }
        }
    })();
    drop(exec_tx);
    let exec = executor
        .join()
        .map_err(|_| bad("executor thread panicked"))?;
    pm.shutdown();
    // Surface both failures: the executor's error is usually the root
    // cause (e.g. a dead link), the main loop's stall the symptom.
    match (main, exec) {
        (Err(main), Err(exec)) => Err(io::Error::new(
            main.kind(),
            format!("{main}; executor: {exec}"),
        )),
        (main, exec) => main.and(exec),
    }
}

/// One dispatched contact on the executor worker. See the module docs
/// for the lock discipline this function upholds.
fn execute_contact(
    spec: &ClusterSpec,
    pm: &PeerManager,
    protocol: &Mutex<Box<dyn Protocol>>,
    grants: &mpsc::Receiver<(u32, Vec<u8>)>,
    index: u64,
) -> io::Result<()> {
    let contact = *spec
        .trace
        .events()
        .get(index as usize)
        .ok_or_else(|| bad("dispatch index outside the trace"))?;
    // With the observability plane on, profile this contact with the
    // ordinary thread-local profiler and fold the result into the
    // shared sink — the protocol's own `obs::` instrumentation lights
    // up exactly as it does under the serial profiled runner.
    let profiled = pm.metrics().is_enabled();
    if profiled {
        obs::start();
    }
    let local = pm.local();
    let mut remotes: Vec<NodeId> = Vec::new();
    for node in [contact.a, contact.b] {
        if spec.node_owner(node) != local && !remotes.contains(&node) {
            remotes.push(node);
        }
    }
    // Gather every remote snapshot BEFORE touching the local
    // instance: the main thread must stay free to serve STATE_REQs
    // from other executors meanwhile.
    for &node in &remotes {
        pm.send(
            spec.node_owner(node),
            Frame::new(FrameKind::StateReq, body_u32(node.index() as u32)),
        )?;
    }
    let mut snapshots: HashMap<u32, Vec<u8>> = HashMap::new();
    let deadline = Instant::now() + STALL;
    while snapshots.len() < remotes.len() {
        match grants.recv_timeout(POLL) {
            Ok((node, bytes)) => {
                snapshots.insert(node, bytes);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err(timed_out(format!(
                        "state grant never arrived (worker {} executing contact {index}, \
                         got {} of {} snapshots)",
                        pm.local().0,
                        snapshots.len(),
                        remotes.len(),
                    )));
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(bad("worker main loop is gone"));
            }
        }
    }

    let (report, deliveries, returns) = {
        let mut guard = protocol.lock().expect("protocol lock");
        let instance = &mut **guard;
        for (&node, bytes) in &snapshots {
            if !instance.import_node(NodeId::new(node), bytes) {
                return Err(bad("remote node snapshot rejected"));
            }
        }
        let mut metrics = MetricsCollector::new();
        let mut tap = DeliveryTap::default();
        let mut link = Link::for_contact(contact.duration(), spec.config.bytes_per_sec);
        {
            let mut ctx =
                SimCtx::for_exchange(contact.start, &spec.subscriptions, &mut metrics, &mut tap);
            instance.on_contact(&mut ctx, &contact, &mut link);
        }
        let mut returns = Vec::with_capacity(remotes.len());
        for &node in &remotes {
            let bytes = instance
                .export_node(node)
                .ok_or_else(|| bad("protocol cannot export node state"))?;
            returns.push((node, bytes));
        }
        (metrics.finish("exchange"), tap.deliveries, returns)
    };
    for (node, bytes) in returns {
        pm.send(
            spec.node_owner(node),
            Frame::new(
                FrameKind::StateRet,
                body_node_bytes(node.index() as u32, &bytes),
            ),
        )?;
    }
    let outcome = ExchangeOutcome {
        index,
        forwardings: report.forwardings,
        control_bytes: report.control_bytes,
        data_bytes: report.data_bytes,
        injections: report.injections,
        false_injections: report.false_injections,
        deliveries,
    };
    if profiled {
        // Absorb BEFORE the result frame goes out: once the
        // coordinator holds every result, every contact's profile is
        // already in some worker's sink, so the drain-time STATS
        // collection misses nothing.
        pm.metrics().absorb(&obs::finish());
    }
    pm.send(
        COORDINATOR,
        Frame::new(FrameKind::ExchangeResult, outcome.encode()),
    )?;
    Ok(())
}

// ---- coordinator ------------------------------------------------------

struct PendingContact {
    executor: PeerId,
    at: Instant,
}

struct Coordinator<'a> {
    spec: &'a ClusterSpec,
    pm: Arc<PeerManager>,
    metrics: MetricsCollector,
    /// Materialized messages, indexed by message id (= schedule index).
    messages: Vec<Arc<Message>>,
    /// Schedule entries applied (and accounted) so far.
    applied: usize,
    busy: Vec<bool>,
    busy_nodes: usize,
    /// Dispatched contacts whose RESULT has not arrived yet.
    pending: HashMap<u64, PendingContact>,
    /// Results arrived out of order, waiting for their turn.
    buffered: BTreeMap<u64, ExchangeOutcome>,
    /// Next contact index to replay into the master ledger.
    next_replay: u64,
    exchange_ns: Vec<u64>,
    acks: u32,
    barrier_target: Option<u64>,
    last_progress: Instant,
    /// The live merged cluster report; `None` = plane off.
    stats: Option<StatsHandle>,
    /// Workers whose final STATS delta has arrived.
    stats_finals: u32,
    /// Last time the coordinator folded its own sink into `stats`.
    last_stats: Instant,
}

impl Coordinator<'_> {
    /// Folds the coordinator's own socket-thread metrics into the live
    /// report on the configured cadence.
    fn merge_own_stats(&mut self) {
        let Some(handle) = &self.stats else { return };
        let cadence = self.spec.stats_cadence.unwrap_or(POLL);
        if self.last_stats.elapsed() >= cadence {
            self.last_stats = Instant::now();
            let delta = self.pm.metrics().take_delta();
            if !delta.is_empty() {
                handle.merge(&delta);
            }
        }
    }

    /// Handles one inbound frame (or a liveness check on timeout).
    fn pump(&mut self) -> io::Result<()> {
        self.merge_own_stats();
        let Some((from, frame)) = self.pm.recv_timeout(POLL) else {
            if self.last_progress.elapsed() > STALL {
                // The bookkeeping snapshot names what the coordinator
                // was still owed — usually enough to tell a dead
                // worker from a protocol-level wedge.
                return Err(timed_out(format!(
                    "cluster made no progress — worker dead? \
                     (pending={:?}, busy_nodes={}, buffered={}, next_replay={}, \
                      acks={}/{:?}, stats_finals={})",
                    self.pending.keys().collect::<Vec<_>>(),
                    self.busy_nodes,
                    self.buffered.len(),
                    self.next_replay,
                    self.acks,
                    self.barrier_target,
                    self.stats_finals,
                )));
            }
            return Ok(());
        };
        self.last_progress = Instant::now();
        match frame.kind {
            FrameKind::ExchangeResult => {
                let outcome = ExchangeOutcome::decode(&frame.body)?;
                let pending = self
                    .pending
                    .remove(&outcome.index)
                    .ok_or_else(|| bad("result for a contact that was never dispatched"))?;
                if pending.executor != from {
                    return Err(bad("result arrived from the wrong worker"));
                }
                let ns = pending.at.elapsed().as_nanos() as u64;
                obs::observe_ns(TimeHist::NetExchangeNs, ns);
                self.pm.metrics().observe_ns(TimeHist::NetExchangeNs, ns);
                self.exchange_ns[outcome.index as usize] = ns;
                // Endpoints the executor itself owns are free now;
                // remotely owned ones stay busy until NODE_FREE.
                let contact = self.spec.trace.events()[outcome.index as usize];
                for node in [contact.a, contact.b] {
                    if self.spec.node_owner(node) == from {
                        self.free(node);
                    }
                }
                self.buffered.insert(outcome.index, outcome);
                self.replay_ready()
            }
            FrameKind::NodeFree => {
                let node = read_u32(&frame.body)?;
                self.free(NodeId::new(node));
                Ok(())
            }
            FrameKind::PublishOk => {
                let count = read_u64(&frame.body)?;
                if Some(count) != self.barrier_target {
                    return Err(bad("PUBLISH_OK outside a publish barrier"));
                }
                self.acks += 1;
                Ok(())
            }
            FrameKind::Stats => {
                let (op, report) = read_stats(&frame.body)?;
                let Some(handle) = &self.stats else {
                    return Err(bad("STATS frame but the stats plane is off"));
                };
                let report =
                    report.ok_or_else(|| bad("coordinator got a STATS request, not a delta"))?;
                handle.merge(&report);
                self.pm.metrics().count(Counter::NetStatsFrames, 1);
                if op == STATS_FINAL {
                    self.stats_finals += 1;
                }
                Ok(())
            }
            other => Err(bad(format!("coordinator got unexpected {other:?} frame"))),
        }
    }

    fn free(&mut self, node: NodeId) {
        let slot = &mut self.busy[node.index()];
        if *slot {
            *slot = false;
            self.busy_nodes -= 1;
        }
    }

    /// Replays every contiguous buffered result into the master
    /// ledger, in contact-index order — the step that makes the
    /// distributed run's report equal the serial one.
    fn replay_ready(&mut self) -> io::Result<()> {
        while let Some(outcome) = self.buffered.remove(&self.next_replay) {
            let contact = self.spec.trace.events()[self.next_replay as usize];
            self.metrics.on_contact();
            self.metrics.absorb_costs(&outcome.as_costs());
            for &(msg, node, genuine) in &outcome.deliveries {
                let msg = self
                    .messages
                    .get(msg as usize)
                    .ok_or_else(|| bad("delivery references an unpublished message"))?;
                let _ = self
                    .metrics
                    .on_delivery(msg, NodeId::new(node), contact.start, genuine);
            }
            self.next_replay += 1;
        }
        Ok(())
    }

    /// Waits until no exchange is in flight anywhere in the cluster.
    fn drain_inflight(&mut self) -> io::Result<()> {
        while !self.pending.is_empty() || self.busy_nodes > 0 || !self.buffered.is_empty() {
            self.pump()?;
        }
        Ok(())
    }

    /// The publish barrier: drain, broadcast `ADVANCE(target)`, await
    /// every worker's `PUBLISH_OK`, then account the publications in
    /// the master ledger exactly like the serial runner.
    fn barrier(&mut self, target: usize) -> io::Result<()> {
        self.drain_inflight()?;
        self.acks = 0;
        self.barrier_target = Some(target as u64);
        for worker in 1..=self.spec.workers {
            self.pm.send(
                PeerId(worker),
                Frame::new(FrameKind::Advance, body_u64(target as u64)),
            )?;
        }
        while self.acks < self.spec.workers {
            self.pump()?;
        }
        self.barrier_target = None;
        for index in self.applied..target {
            let entry = &self.spec.schedule[index];
            let targets = self
                .spec
                .subscriptions
                .subscribers_of(&entry.key)
                .filter(|&n| n != entry.producer)
                .count() as u64;
            self.metrics.on_generated(targets);
            let msg = self.spec.message(index);
            self.messages.push(msg);
        }
        self.applied = target;
        Ok(())
    }
}

/// Runs the coordinator over `spec.workers` already-spawned workers
/// rendezvousing in `dir`. Blocks until the run completes and every
/// worker has been told `DONE`.
///
/// The `factory` is used only to name the protocol in the report; the
/// workers build the instances that actually run.
///
/// # Errors
///
/// Assembly timeouts, malformed frames, protocol violations by a
/// worker, or a stall (e.g. a worker process died mid-run).
pub fn run_coordinator(
    spec: &ClusterSpec,
    factory: &dyn ProtocolFactory,
    dir: &Path,
) -> io::Result<ClusterOutcome> {
    let stats = spec.stats_cadence.is_some().then(StatsHandle::new);
    run_coordinator_with(spec, factory, dir, stats)
}

/// [`run_coordinator`] with an externally owned [`StatsHandle`]: pass
/// `Some(handle)` to watch the merged cluster report *while the run is
/// live* — e.g. by serving the handle from a
/// [`StatsServer`](crate::stats::StatsServer), which is exactly what
/// the `net-cluster` binary's `--stats-addr` flag does.
///
/// # Errors
///
/// Same as [`run_coordinator`].
pub fn run_coordinator_with(
    spec: &ClusterSpec,
    factory: &dyn ProtocolFactory,
    dir: &Path,
    stats: Option<StatsHandle>,
) -> io::Result<ClusterOutcome> {
    let started = Instant::now();
    let name = factory.build(spec.seed).name().to_string();
    let pm = PeerManager::bind(PeerConfig::new(
        COORDINATOR,
        peer_addr(dir, COORDINATOR),
        spec.seed,
    ))?;
    if stats.is_some() {
        pm.metrics().enable();
    }
    pm.await_connections(spec.workers as usize, ASSEMBLY)?;

    let contacts = spec.trace.len();
    let mut coord = Coordinator {
        spec,
        pm: Arc::clone(&pm),
        metrics: MetricsCollector::new(),
        messages: Vec::with_capacity(spec.schedule.len()),
        applied: 0,
        busy: vec![false; spec.trace.node_count() as usize],
        busy_nodes: 0,
        pending: HashMap::new(),
        buffered: BTreeMap::new(),
        next_replay: 0,
        exchange_ns: vec![0; contacts],
        acks: 0,
        barrier_target: None,
        last_progress: Instant::now(),
        stats,
        stats_finals: 0,
        last_stats: Instant::now(),
    };

    for index in 0..contacts {
        let contact = spec.trace.events()[index];
        // Publications scheduled at or before this contact's start go
        // first (inclusive boundary, same as the serial runner).
        let mut due = coord.applied;
        while due < spec.schedule.len() && spec.schedule[due].at <= contact.start {
            due += 1;
        }
        if due > coord.applied {
            coord.barrier(due)?;
        }
        while coord.busy[contact.a.index()] || coord.busy[contact.b.index()] {
            coord.pump()?;
        }
        for node in [contact.a, contact.b] {
            if !coord.busy[node.index()] {
                coord.busy[node.index()] = true;
                coord.busy_nodes += 1;
            }
        }
        let executor = spec.node_owner(contact.a);
        coord.pending.insert(
            index as u64,
            PendingContact {
                executor,
                at: Instant::now(),
            },
        );
        coord.last_progress = Instant::now();
        pm.send(
            executor,
            Frame::new(FrameKind::Dispatch, body_u64(index as u64)),
        )?;
    }
    coord.drain_inflight()?;
    // Trailing publications after the last contact (the serial
    // runner's final inclusive flush).
    if coord.applied < spec.schedule.len() {
        coord.barrier(spec.schedule.len())?;
    }
    debug_assert_eq!(coord.next_replay as usize, contacts);

    // Final STATS collection, before DONE goes out: ask every worker
    // for its final delta and pump until all have replied. Receipt is
    // the flush guarantee — once the last final is in, the merged
    // report covers every contact and every cadence delta.
    if coord.stats.is_some() {
        for worker in 1..=spec.workers {
            pm.send(
                PeerId(worker),
                Frame::new(FrameKind::Stats, body_stats(STATS_REQUEST, None)),
            )?;
        }
        while coord.stats_finals < spec.workers {
            coord.pump()?;
        }
        if let Some(handle) = &coord.stats {
            let delta = pm.metrics().take_delta();
            if !delta.is_empty() {
                handle.merge(&delta);
            }
        }
    }

    for worker in 1..=spec.workers {
        pm.send(PeerId(worker), Frame::new(FrameKind::Done, Vec::new()))?;
        // Flush the queue and half-close so DONE is guaranteed out
        // before the manager shuts down.
        pm.drain(PeerId(worker));
    }
    let report = coord.metrics.finish(&name);
    let exchange_ns = coord.exchange_ns;
    let cluster_metrics = coord.stats.as_ref().map(StatsHandle::snapshot);
    Ok(ClusterOutcome {
        report,
        exchange_ns,
        wall: started.elapsed(),
        cluster_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_outcome_round_trips() {
        let outcome = ExchangeOutcome {
            index: 42,
            forwardings: 3,
            control_bytes: 128,
            data_bytes: 4096,
            injections: 2,
            false_injections: 1,
            deliveries: vec![(7, 11, true), (9, 0, false)],
        };
        assert_eq!(ExchangeOutcome::decode(&outcome.encode()).unwrap(), outcome);
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let outcome = ExchangeOutcome {
            index: 1,
            forwardings: 0,
            control_bytes: 0,
            data_bytes: 0,
            injections: 0,
            false_injections: 0,
            deliveries: vec![(1, 2, true)],
        };
        let mut body = outcome.encode();
        body.truncate(body.len() - 1);
        assert!(ExchangeOutcome::decode(&body).is_err());
        assert!(read_u64(&[1, 2, 3]).is_err());
        assert!(read_u32(&[1, 2, 3, 4, 5]).is_err(), "trailing bytes");
        let nb = body_node_bytes(9, b"snapshot");
        assert_eq!(read_node_bytes(&nb).unwrap(), (9, b"snapshot".to_vec()));
    }

    #[test]
    fn stats_bodies_round_trip_pinned_to_the_wire_spec() {
        // DESIGN.md §15: body[0] is the stats op; a report payload in
        // the bsub_obs wire codec follows for delta-carrying ops.
        let request = body_stats(STATS_REQUEST, None);
        assert_eq!(request, vec![0], "request is the op byte alone");
        assert_eq!(read_stats(&request).unwrap(), (STATS_REQUEST, None));

        let mut report = ProfReport::default();
        report.add_counter(Counter::NetFramesSent, 5);
        report.record_time(TimeHist::NetExchangeNs, 777);
        for op in [STATS_DELTA, STATS_FINAL] {
            let body = body_stats(op, Some(&report));
            assert_eq!(body[0], op);
            assert_eq!(body[1], ProfReport::WIRE_VERSION, "payload starts at 1");
            let (got_op, got) = read_stats(&body).unwrap();
            assert_eq!(got_op, op);
            assert_eq!(got, Some(report.clone()));
        }

        // And the full frame wraps it under kind byte 11 with the
        // usual header/CRC (reset semantics on any mismatch).
        let frame = Frame::new(FrameKind::Stats, body_stats(STATS_FINAL, Some(&report)));
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        assert_eq!(wire[0], 11, "kind byte");
        assert_eq!(wire[crate::frame::HEADER_LEN], STATS_FINAL, "op byte");
        assert_eq!(Frame::read_from(&mut wire.as_slice()).unwrap(), frame);
    }

    #[test]
    fn malformed_stats_bodies_are_rejected() {
        assert!(read_stats(&[]).is_err(), "empty body");
        assert!(read_stats(&[9]).is_err(), "unknown op");
        assert!(
            read_stats(&[STATS_REQUEST, 1]).is_err(),
            "request with payload"
        );
        assert!(read_stats(&[STATS_DELTA]).is_err(), "delta without report");
        let mut body = body_stats(STATS_FINAL, Some(&ProfReport::default()));
        body.truncate(body.len() - 1);
        assert!(read_stats(&body).is_err(), "truncated report");
    }

    #[test]
    fn node_ownership_partitions_all_nodes() {
        use bsub_traces::synthetic::SyntheticTrace;
        let trace = SyntheticTrace::new("own", 9, SimDuration::from_mins(30), 20)
            .seed(3)
            .build();
        let nodes = trace.node_count();
        let subs = SubscriptionTable::new(nodes);
        let spec = ClusterSpec::new(
            trace,
            subs,
            Vec::<GeneratedMessage>::new(),
            SimConfig::default(),
            7,
            3,
        );
        for n in 0..nodes {
            let owner = spec.node_owner(NodeId::new(n));
            assert!((1..=3).contains(&owner.0), "owner in worker range");
            assert_ne!(owner, COORDINATOR);
        }
        assert_eq!(spec.node_owner(NodeId::new(0)), PeerId(1));
        assert_eq!(spec.node_owner(NodeId::new(1)), PeerId(2));
        assert_eq!(spec.node_owner(NodeId::new(3)), PeerId(1));
    }
}
