//! The cluster frame codec: every byte that crosses a socket.
//!
//! A frame is an 8-byte header followed by an opaque body (DESIGN.md
//! §12.4 is the normative layout; the tests here check field offsets
//! against that spec, not against this implementation):
//!
//! ```text
//! offset  size  field
//!      0     1  kind   — one of [`FrameKind`]'s discriminants
//!      1     1  flags  — reserved, must be 0
//!      2     4  len    — body length in bytes, u32 little-endian
//!      6     2  crc    — CRC-16/CCITT-FALSE, u16 little-endian
//!      8   len  body
//! ```
//!
//! The CRC covers header bytes 0–5 (kind, flags, len) plus the entire
//! body — the same CRC-16/CCITT-FALSE the TCBF wire codec uses
//! ([`bsub_bloom::wire::crc16`]), so one checksum discipline covers
//! both the filter payloads and the frames that carry them. A frame
//! that fails the CRC, carries an unknown kind, a nonzero flags byte,
//! or an oversized length is rejected with
//! [`std::io::ErrorKind::InvalidData`] and the connection is torn down
//! by the peer layer: streams never resynchronize mid-connection
//! (reset semantics, DESIGN.md §12.4).

use bsub_bloom::wire::crc16;
use std::io::{self, Read, Write};

/// Fixed size of the frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame body. Node-state snapshots dominate frame
/// sizes and stay far below this even for large traces; anything
/// bigger is treated as stream corruption rather than read to
/// exhaustion.
pub const MAX_BODY_LEN: u32 = 64 * 1024 * 1024;

/// The message kinds of the cluster protocol (DESIGN.md §12.3).
///
/// Discriminants are the on-wire `kind` byte and are part of the wire
/// contract — they must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FrameKind {
    /// Handshake: body is the sender's peer id (u32 LE). First frame
    /// in each direction of every connection.
    Hello = 1,
    /// Coordinator → worker: execute one contact (body: contact
    /// index, u64 LE).
    Dispatch = 2,
    /// Executor → owner: request a node-state snapshot.
    StateReq = 3,
    /// Owner → executor: the requested snapshot.
    StateGrant = 4,
    /// Executor → owner: the post-exchange snapshot, returning
    /// ownership.
    StateRet = 5,
    /// Executor → coordinator: one contact's costs and deliveries.
    ExchangeResult = 6,
    /// Owner → coordinator: a returned node is consistent again and
    /// may appear in new dispatches.
    NodeFree = 7,
    /// Coordinator → workers: apply schedule publications (publish
    /// barrier).
    Advance = 8,
    /// Worker → coordinator: publications applied.
    PublishOk = 9,
    /// Coordinator → workers: the run is over, drain and exit.
    Done = 10,
    /// Observability plane (DESIGN.md §15). Worker → coordinator: a
    /// delta `ProfReport` (body: one stats op byte, then the
    /// `bsub_obs` wire codec). Coordinator → worker: a drain-time
    /// poll for the final delta (body: the request op byte alone).
    Stats = 11,
    /// Broker service plane (DESIGN.md §16). Client → broker: register
    /// interest in a key set with an optional real-clock deadline
    /// (body: `broker::SubscribeBody`).
    Subscribe = 12,
    /// Client → broker: withdraw every interest of the sending client
    /// (empty body).
    Unsubscribe = 13,
    /// Client → broker: match one keyed event against the live index
    /// (body: `broker::PublishBody`).
    Publish = 14,
    /// Broker → client: one matched publication, echoing the
    /// publisher's sequence number and send timestamp (body:
    /// `broker::DeliverBody`).
    Deliver = 15,
}

impl FrameKind {
    /// All kinds, in discriminant order.
    pub const ALL: [FrameKind; 15] = [
        FrameKind::Hello,
        FrameKind::Dispatch,
        FrameKind::StateReq,
        FrameKind::StateGrant,
        FrameKind::StateRet,
        FrameKind::ExchangeResult,
        FrameKind::NodeFree,
        FrameKind::Advance,
        FrameKind::PublishOk,
        FrameKind::Done,
        FrameKind::Stats,
        FrameKind::Subscribe,
        FrameKind::Unsubscribe,
        FrameKind::Publish,
        FrameKind::Deliver,
    ];

    /// Decodes the on-wire `kind` byte; `None` for unknown values.
    #[must_use]
    pub fn from_byte(byte: u8) -> Option<Self> {
        Self::ALL.get(byte.wrapping_sub(1) as usize).copied()
    }

    /// The on-wire `kind` byte.
    #[must_use]
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// Stable lowercase name, used in trace events and metric rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Hello => "hello",
            FrameKind::Dispatch => "dispatch",
            FrameKind::StateReq => "state_req",
            FrameKind::StateGrant => "state_grant",
            FrameKind::StateRet => "state_ret",
            FrameKind::ExchangeResult => "exchange_result",
            FrameKind::NodeFree => "node_free",
            FrameKind::Advance => "advance",
            FrameKind::PublishOk => "publish_ok",
            FrameKind::Done => "done",
            FrameKind::Stats => "stats",
            FrameKind::Subscribe => "subscribe",
            FrameKind::Unsubscribe => "unsubscribe",
            FrameKind::Publish => "publish",
            FrameKind::Deliver => "deliver",
        }
    }
}

/// One decoded frame: a kind and an opaque body. The body's meaning
/// is defined per kind by the `cluster` module's body codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind.
    pub kind: FrameKind,
    /// The body bytes (may be empty).
    pub body: Vec<u8>,
}

impl Frame {
    /// Builds a frame.
    #[must_use]
    pub fn new(kind: FrameKind, body: Vec<u8>) -> Self {
        Self { kind, body }
    }

    /// Total encoded size (header + body) in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.body.len()
    }

    /// Encodes the frame's 8-byte header (the body follows verbatim).
    #[must_use]
    fn header(&self) -> [u8; HEADER_LEN] {
        let mut header = [0u8; HEADER_LEN];
        header[0] = self.kind.byte();
        header[1] = 0; // flags: reserved
        header[2..6].copy_from_slice(&(self.body.len() as u32).to_le_bytes());
        let crc = crc16([&header[..6], &self.body]);
        header[6..8].copy_from_slice(&crc.to_le_bytes());
        header
    }

    /// Writes the frame to `w` (header, then body) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects bodies over [`MAX_BODY_LEN`]
    /// with [`io::ErrorKind::InvalidInput`] before writing anything.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        if self.body.len() > MAX_BODY_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame body exceeds MAX_BODY_LEN",
            ));
        }
        w.write_all(&self.header())?;
        w.write_all(&self.body)?;
        w.flush()
    }

    /// Reads and validates one frame from `r`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for an unknown kind, nonzero
    /// flags, an oversized length, or a CRC mismatch; otherwise
    /// whatever the underlying reads return (an EOF mid-frame
    /// surfaces as [`io::ErrorKind::UnexpectedEof`]).
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let kind = FrameKind::from_byte(header[0])
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown frame kind"))?;
        if header[1] != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "reserved frame flags must be zero",
            ));
        }
        let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes"));
        if len > MAX_BODY_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame body length exceeds MAX_BODY_LEN",
            ));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        let expected = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
        if crc16([&header[..6], &body]) != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame CRC mismatch",
            ));
        }
        Ok(Frame { kind, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no
    /// reflection, no final xor), implemented bit by bit from the
    /// DESIGN.md §12.4 spec so the test pins the algorithm rather
    /// than echoing the production table.
    fn spec_crc(bytes: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &byte in bytes {
            crc ^= u16::from(byte) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    fn encode(frame: &Frame) -> Vec<u8> {
        let mut out = Vec::new();
        frame.write_to(&mut out).unwrap();
        out
    }

    /// Field offsets as published in DESIGN.md §12.4: kind at 0,
    /// flags at 1, len LE at 2..6, CRC LE at 6..8, body at 8.
    #[test]
    fn header_layout_matches_spec_offsets() {
        let frame = Frame::new(FrameKind::Dispatch, vec![0xAA, 0xBB, 0xCC]);
        let bytes = encode(&frame);
        assert_eq!(bytes.len(), 8 + 3);
        assert_eq!(bytes[0], 2, "offset 0: kind byte (DISPATCH = 2)");
        assert_eq!(bytes[1], 0, "offset 1: flags, reserved as zero");
        assert_eq!(
            u32::from_le_bytes(bytes[2..6].try_into().unwrap()),
            3,
            "offsets 2..6: body length, u32 LE"
        );
        let mut covered = bytes[..6].to_vec();
        covered.extend_from_slice(&bytes[8..]);
        assert_eq!(
            u16::from_le_bytes(bytes[6..8].try_into().unwrap()),
            spec_crc(&covered),
            "offsets 6..8: CRC-16/CCITT-FALSE over header[0..6] + body, u16 LE"
        );
        assert_eq!(&bytes[8..], &[0xAA, 0xBB, 0xCC], "offset 8: body verbatim");
    }

    #[test]
    fn all_kinds_round_trip() {
        for kind in FrameKind::ALL {
            let frame = Frame::new(kind, vec![kind.byte(); kind.byte() as usize]);
            let bytes = encode(&frame);
            let back = Frame::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back, frame);
            assert_eq!(frame.encoded_len(), bytes.len());
        }
    }

    #[test]
    fn empty_body_round_trips() {
        let frame = Frame::new(FrameKind::Done, Vec::new());
        let back = Frame::read_from(&mut encode(&frame).as_slice()).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let good = encode(&Frame::new(FrameKind::StateGrant, b"snapshot".to_vec()));
        // Flip one body bit: CRC must catch it.
        let mut flipped = good.clone();
        flipped[10] ^= 0x01;
        let err = Frame::read_from(&mut flipped.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Unknown kind byte.
        let mut bad_kind = good.clone();
        bad_kind[0] = 0xEE;
        let err = Frame::read_from(&mut bad_kind.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Nonzero reserved flags.
        let mut bad_flags = good.clone();
        bad_flags[1] = 1;
        let err = Frame::read_from(&mut bad_flags.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Length pointing past MAX_BODY_LEN.
        let mut oversized = good.clone();
        oversized[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Frame::read_from(&mut oversized.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn partial_frame_is_unexpected_eof() {
        let bytes = encode(&Frame::new(FrameKind::StateRet, vec![7; 100]));
        // A connection dropped mid-body: header promises 100 bytes,
        // the stream delivers 10.
        let err = Frame::read_from(&mut &bytes[..HEADER_LEN + 10]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Dropped mid-header.
        let err = Frame::read_from(&mut &bytes[..4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn kind_bytes_are_stable() {
        // The discriminants are the wire contract (DESIGN.md §12.3).
        let expected: [(FrameKind, u8); 15] = [
            (FrameKind::Hello, 1),
            (FrameKind::Dispatch, 2),
            (FrameKind::StateReq, 3),
            (FrameKind::StateGrant, 4),
            (FrameKind::StateRet, 5),
            (FrameKind::ExchangeResult, 6),
            (FrameKind::NodeFree, 7),
            (FrameKind::Advance, 8),
            (FrameKind::PublishOk, 9),
            (FrameKind::Done, 10),
            (FrameKind::Stats, 11),
            (FrameKind::Subscribe, 12),
            (FrameKind::Unsubscribe, 13),
            (FrameKind::Publish, 14),
            (FrameKind::Deliver, 15),
        ];
        for (kind, byte) in expected {
            assert_eq!(kind.byte(), byte);
            assert_eq!(FrameKind::from_byte(byte), Some(kind));
        }
        assert_eq!(FrameKind::from_byte(0), None);
        assert_eq!(FrameKind::from_byte(16), None);
    }
}
