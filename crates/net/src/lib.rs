//! `bsub-net` — the networked runtime for the B-SUB stack.
//!
//! The simulator crates keep the paper's protocols (B-SUB's TCBF
//! routing plus the PUSH/PULL baselines from Section VII) *pure*:
//! a [`Protocol`](bsub_sim::Protocol) sees contacts and messages,
//! never sockets. This crate is the other half of that bargain — it
//! runs those same implementations over real TCP and Unix-domain
//! connections, without forking their logic:
//!
//! - [`frame`] — the length-prefixed, CRC-checked frame codec. The
//!   wire layout is specified normatively in DESIGN.md §12.4; the
//!   unit tests here assert the implementation against the spec's
//!   byte offsets, not the other way round.
//! - [`transport`] — one stream/listener enum over TCP and
//!   Unix-domain sockets, so everything above it is family-agnostic.
//! - [`backoff`] — deterministic jittered exponential backoff for
//!   dial retries (seeded per peer pair; replays identically).
//! - [`peer`] — the connection manager: explicit lifecycle state
//!   machine (idle → dialing/accepting → established → draining →
//!   closed), lower-peer-wins dial-race resolution, bounded outbound
//!   queues for backpressure, and per-connection reader/writer
//!   threads built on blocking std sockets.
//! - [`cluster`] — a multi-process loopback cluster that re-runs the
//!   serial simulator's event loop across OS processes, shipping node
//!   state via the protocols' snapshot seams. Its final report is
//!   **equal** to the serial simulator's, not approximately so.
//! - [`metrics`] — the cross-thread metrics sink socket threads record
//!   into (the thread-local `bsub_obs` profiler cannot see them), plus
//!   the per-frame-kind histogram maps.
//! - [`trace`] — typed wall-clock event tracing for the connection
//!   state machine (dials, races, displacements, retries, stalls,
//!   drains), serializable as JSON lines.
//! - [`stats`] — the live observability endpoint: a [`StatsHandle`]
//!   the coordinator merges worker `STATS` deltas into, served as
//!   Prometheus text and JSON by a [`StatsServer`] (DESIGN.md §15).
//! - [`broker`] — the live broker service (DESIGN.md §16): a
//!   [`BrokerNode`] owns a `bsub_match::MatchIndex` behind the peer
//!   state machine, serving `SUBSCRIBE`/`UNSUBSCRIBE`/`PUBLISH`
//!   streams with real-clock deadline expiry (a coarse [`ClockWheel`])
//!   and batched matching, fanning `DELIVER` frames out on the
//!   backpressured outbound queues.
//!
//! # Run a loopback cluster
//!
//! The `net-cluster` binary (in `bsub-bench`) spawns the worker
//! processes itself and diffs the cluster's delivery columns against
//! the serial simulator's:
//!
//! ```text
//! cargo run --release -p bsub-bench --bin net-cluster -- --smoke
//! ```
//!
//! Everything here is `std`-only — no async runtime, no external
//! dependencies — to honor the repository's zero-dependency rule.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backoff;
pub mod broker;
pub mod cluster;
pub mod frame;
pub mod metrics;
pub mod peer;
pub mod stats;
pub mod trace;
pub mod transport;

pub use backoff::Backoff;
pub use broker::{
    unix_ns, BrokerClient, BrokerConfig, BrokerNode, BrokerOp, ClockWheel, DeliverBody, Delivery,
    PublishBody, SubscribeBody,
};
pub use cluster::{
    peer_addr, run_coordinator, run_coordinator_with, run_worker, ClusterOutcome, ClusterSpec,
    COORDINATOR,
};
pub use frame::{Frame, FrameKind, HEADER_LEN, MAX_BODY_LEN};
pub use metrics::{frame_size_hist, frame_time_hist, NetMetrics};
pub use peer::{ConnState, PeerConfig, PeerId, PeerManager};
pub use stats::{render_prometheus, scrape, StatsHandle, StatsServer};
pub use trace::{NetEvent, NetTrace, TracedEvent};
pub use transport::{EndpointAddr, Listener, Stream};
