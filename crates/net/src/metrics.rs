//! Shared metrics sink for the networked runtime.
//!
//! `bsub_obs`'s profiler is thread-local by design (one simulation, one
//! worker thread), but a [`PeerManager`](crate::PeerManager) spreads its
//! work across reader, writer, and accept threads that never install a
//! profiler. [`NetMetrics`] is the cross-thread collection point: a
//! mutex-guarded [`ProfReport`] that every socket thread records into
//! directly, fronted by one `AtomicBool` so the disabled path costs a
//! single relaxed load — the same zero-cost-when-inactive contract the
//! rest of the workspace observes.
//!
//! The sink is *delta-oriented*: [`NetMetrics::take_delta`] swaps the
//! accumulated report out and leaves a fresh one behind, which is what
//! lets a cluster worker ship monotone deltas to its coordinator on a
//! cadence (DESIGN.md §15) — the coordinator's merged report only ever
//! grows, and because `ProfReport::absorb` is commutative the merged
//! result is independent of frame arrival order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bsub_obs::{Counter, Gauge, ProfReport, SizeHist, TimeHist};

use crate::frame::FrameKind;

/// Cross-thread metrics sink shared by all threads of one peer.
///
/// Disabled by default; [`NetMetrics::enable`] arms it. Every recording
/// method checks the flag first and returns without touching the lock
/// when the sink is off, so an unobserved runtime does no metrics work
/// beyond one atomic load per call site.
#[derive(Debug, Default)]
pub struct NetMetrics {
    enabled: AtomicBool,
    sink: Mutex<ProfReport>,
}

impl NetMetrics {
    /// A disabled sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the sink; recording calls start accumulating.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Whether the sink is armed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `n` to counter `c` when enabled.
    pub fn count(&self, c: Counter, n: u64) {
        if self.is_enabled() {
            self.sink.lock().expect("metrics sink").add_counter(c, n);
        }
    }

    /// Raises gauge `g` to at least `level` when enabled.
    pub fn raise_gauge(&self, g: Gauge, level: u64) {
        if self.is_enabled() {
            self.sink
                .lock()
                .expect("metrics sink")
                .raise_gauge(g, level);
        }
    }

    /// Records `ns` into timing histogram `h` when enabled.
    pub fn observe_ns(&self, h: TimeHist, ns: u64) {
        if self.is_enabled() {
            self.sink.lock().expect("metrics sink").record_time(h, ns);
        }
    }

    /// Records `value` into size histogram `h` when enabled.
    pub fn observe(&self, h: SizeHist, value: u64) {
        if self.is_enabled() {
            self.sink
                .lock()
                .expect("metrics sink")
                .record_size(h, value);
        }
    }

    /// Merges a whole report into the sink when enabled — how a cluster
    /// worker folds per-contact thread-local `ProfReport`s in.
    pub fn absorb(&self, report: &ProfReport) {
        if self.is_enabled() {
            self.sink.lock().expect("metrics sink").merge(report);
        }
    }

    /// Clones the accumulated report without resetting it.
    #[must_use]
    pub fn snapshot(&self) -> ProfReport {
        self.sink.lock().expect("metrics sink").clone()
    }

    /// Swaps the accumulated report for a fresh one and returns it.
    /// Successive deltas merge to the same total as one snapshot, so
    /// cadence shipping loses nothing.
    #[must_use]
    pub fn take_delta(&self) -> ProfReport {
        std::mem::take(&mut *self.sink.lock().expect("metrics sink"))
    }
}

/// The wall-clock write-latency histogram for frames of `kind`.
#[must_use]
pub fn frame_time_hist(kind: FrameKind) -> TimeHist {
    match kind {
        FrameKind::Hello => TimeHist::NetFrameHelloNs,
        FrameKind::Dispatch => TimeHist::NetFrameDispatchNs,
        FrameKind::StateReq => TimeHist::NetFrameStateReqNs,
        FrameKind::StateGrant => TimeHist::NetFrameStateGrantNs,
        FrameKind::StateRet => TimeHist::NetFrameStateRetNs,
        FrameKind::ExchangeResult => TimeHist::NetFrameExchangeResultNs,
        FrameKind::NodeFree => TimeHist::NetFrameNodeFreeNs,
        FrameKind::Advance => TimeHist::NetFrameAdvanceNs,
        FrameKind::PublishOk => TimeHist::NetFramePublishOkNs,
        FrameKind::Done => TimeHist::NetFrameDoneNs,
        FrameKind::Stats => TimeHist::NetFrameStatsNs,
        FrameKind::Subscribe => TimeHist::NetFrameSubscribeNs,
        FrameKind::Unsubscribe => TimeHist::NetFrameUnsubscribeNs,
        FrameKind::Publish => TimeHist::NetFramePublishNs,
        FrameKind::Deliver => TimeHist::NetFrameDeliverNs,
    }
}

/// The encoded-size histogram for frames of `kind`. Recorded on the
/// send side only, so a cluster-wide merge counts each frame once.
#[must_use]
pub fn frame_size_hist(kind: FrameKind) -> SizeHist {
    match kind {
        FrameKind::Hello => SizeHist::NetFrameHelloBytes,
        FrameKind::Dispatch => SizeHist::NetFrameDispatchBytes,
        FrameKind::StateReq => SizeHist::NetFrameStateReqBytes,
        FrameKind::StateGrant => SizeHist::NetFrameStateGrantBytes,
        FrameKind::StateRet => SizeHist::NetFrameStateRetBytes,
        FrameKind::ExchangeResult => SizeHist::NetFrameExchangeResultBytes,
        FrameKind::NodeFree => SizeHist::NetFrameNodeFreeBytes,
        FrameKind::Advance => SizeHist::NetFrameAdvanceBytes,
        FrameKind::PublishOk => SizeHist::NetFramePublishOkBytes,
        FrameKind::Done => SizeHist::NetFrameDoneBytes,
        FrameKind::Stats => SizeHist::NetFrameStatsBytes,
        FrameKind::Subscribe => SizeHist::NetFrameSubscribeBytes,
        FrameKind::Unsubscribe => SizeHist::NetFrameUnsubscribeBytes,
        FrameKind::Publish => SizeHist::NetFramePublishBytes,
        FrameKind::Deliver => SizeHist::NetFrameDeliverBytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let m = NetMetrics::new();
        m.count(Counter::NetFramesSent, 3);
        m.observe_ns(TimeHist::NetFrameHelloNs, 10);
        m.observe(SizeHist::NetFrameHelloBytes, 10);
        assert!(!m.is_enabled());
        assert_eq!(m.snapshot(), ProfReport::default());
    }

    #[test]
    fn deltas_absorb_back_to_the_snapshot_total() {
        let m = NetMetrics::new();
        m.enable();
        m.count(Counter::NetFramesSent, 2);
        m.observe_ns(TimeHist::NetFrameHelloNs, 40);
        let first = m.take_delta();
        m.count(Counter::NetFramesSent, 5);
        m.observe(SizeHist::NetFrameDoneBytes, 8);
        let second = m.take_delta();
        assert_eq!(m.snapshot(), ProfReport::default(), "drained");

        let mut merged = first.clone();
        merged.merge(&second);
        assert_eq!(merged.counter(Counter::NetFramesSent), 7);
        assert_eq!(merged.time_hist(TimeHist::NetFrameHelloNs).count(), 1);
        assert_eq!(merged.size_hist(SizeHist::NetFrameDoneBytes).sum(), 8);

        // Merge is commutative: arrival order cannot matter.
        let mut reversed = second;
        reversed.merge(&first);
        assert_eq!(merged, reversed);
    }

    #[test]
    fn every_frame_kind_maps_to_distinct_histograms() {
        let mut times: Vec<TimeHist> = FrameKind::ALL.iter().map(|&k| frame_time_hist(k)).collect();
        let mut sizes: Vec<SizeHist> = FrameKind::ALL.iter().map(|&k| frame_size_hist(k)).collect();
        times.dedup();
        sizes.dedup();
        assert_eq!(times.len(), FrameKind::ALL.len());
        assert_eq!(sizes.len(), FrameKind::ALL.len());
    }
}
