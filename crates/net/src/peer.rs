//! The peer/connection manager: lifecycle, dial races, backpressure.
//!
//! A [`PeerManager`] owns one listening socket and at most one live
//! connection per remote peer. Each connection moves through the
//! explicit state machine of DESIGN.md §12.1:
//!
//! ```text
//! Idle → Dialing ──┐
//!                  ├→ Established → Draining → Closed
//! Idle → Accepting ┘        │
//!                           └→ Closed   (error / displaced by a race)
//! ```
//!
//! **Handshake.** Three HELLO frames: the dialer announces itself,
//! the acceptor replies, and the dialer confirms. The acceptor only
//! installs the connection after reading the confirmation, so a
//! dialer whose reply read timed out (and who will therefore retry on
//! a fresh socket) never leaves a half-installed ghost behind on the
//! acceptor — on a loaded single-core host that ghost used to win the
//! duplicate-dial tiebreak against the retry and wedge the link. The
//! first two legs are guarded by the handshake timeout; the
//! confirmation read is not (an abandoning dialer closes the socket,
//! which aborts the read with EOF), because timing it out would drop
//! a socket the dialer already considers established.
//!
//! **Dial races.** Two peers that dial each other simultaneously
//! create two sockets for one logical link. Both sides resolve the
//! conflict with the same local rule — *the connection dialed by the
//! lower peer id wins* — so they converge on one surviving socket
//! without exchanging another byte (DESIGN.md §12.2). The loser is
//! torn down and counted under the `net_race_lost` metric. A
//! duplicate dial from the *same* direction is not a race: the remote
//! only re-dials after abandoning its previous socket, so the
//! newcomer always replaces the incumbent.
//!
//! **Backpressure.** Each connection's outbound path is a bounded
//! queue drained by a dedicated writer thread; [`PeerManager::send`]
//! blocks when the queue is full, so a slow peer throttles its
//! producers instead of growing an unbounded buffer. Inbound frames
//! from all peers funnel into one channel read via
//! [`PeerManager::recv_timeout`].
//!
//! **Reset semantics.** Frame streams never resynchronize: any read
//! error (CRC mismatch, unknown kind, EOF mid-frame) closes the
//! connection. Re-establishing is the dialer's job, with the
//! deterministic jittered backoff of [`crate::backoff`].

use crate::backoff::Backoff;
use crate::frame::{Frame, FrameKind, HEADER_LEN};
use crate::metrics::{frame_size_hist, frame_time_hist, NetMetrics};
use crate::trace::{self, NetEvent, NetTrace, TraceSlot};
use crate::transport::{EndpointAddr, Listener, Stream};
use bsub_obs::Counter;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A cluster-wide peer identity. Ids double as the dial-race
/// tiebreaker, so they must be unique within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

/// Lifecycle state of the connection toward one remote peer
/// (DESIGN.md §12.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnState {
    /// No connection and no attempt in progress.
    #[default]
    Idle,
    /// An outbound dial (including its HELLO exchange) is in flight.
    Dialing,
    /// An inbound connection's HELLO exchange is in flight.
    Accepting,
    /// The connection is live in both directions.
    Established,
    /// The outbound queue is closed and flushing; reads continue
    /// until the peer closes.
    Draining,
    /// The connection is gone (drained, errored, or displaced by a
    /// dial race).
    Closed,
}

/// Configuration for a [`PeerManager`].
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// This peer's identity.
    pub local: PeerId,
    /// The address this peer listens on.
    pub addr: EndpointAddr,
    /// Seed for the deterministic dial backoff.
    pub seed: u64,
    /// Outbound queue depth per connection; a full queue blocks
    /// [`PeerManager::send`] (backpressure).
    pub queue_depth: usize,
    /// Read timeout for the HELLO handshake.
    pub handshake_timeout: Duration,
    /// Dial attempts before [`PeerManager::connect`] gives up.
    pub dial_attempts: u32,
}

impl PeerConfig {
    /// A configuration with the defaults: queue depth 64, 2 s
    /// handshake timeout, 200 dial attempts.
    #[must_use]
    pub fn new(local: PeerId, addr: EndpointAddr, seed: u64) -> Self {
        Self {
            local,
            addr,
            seed,
            queue_depth: 64,
            handshake_timeout: Duration::from_secs(2),
            dial_attempts: 200,
        }
    }
}

/// One live connection's bookkeeping. The `stream` handle exists to
/// tear the socket down; the reader and writer threads own clones.
struct Conn {
    tx: SyncSender<Frame>,
    stream: Stream,
    dialer: PeerId,
    epoch: u64,
}

struct Shared {
    local: PeerId,
    queue_depth: usize,
    conns: Mutex<HashMap<PeerId, Conn>>,
    /// Signalled on every `conns` mutation (install, displacement,
    /// retirement, drain, shutdown) so waiters like
    /// [`PeerManager::await_connections`] never have to poll on a
    /// fixed sleep — the fix for the 1-vCPU assembly flake.
    conns_changed: Condvar,
    states: Mutex<HashMap<PeerId, ConnState>>,
    inbound: Sender<(PeerId, Frame)>,
    shutdown: AtomicBool,
    epochs: AtomicU64,
    /// Cross-thread metrics sink (socket threads have no thread-local
    /// profiler); disabled unless armed via [`PeerManager::metrics`].
    metrics: NetMetrics,
    /// Optional wall-clock event trace; empty slot = one atomic load.
    trace: TraceSlot,
}

impl Shared {
    fn set_state(&self, peer: PeerId, state: ConnState) {
        self.states.lock().expect("states lock").insert(peer, state);
    }

    fn trace(&self, event: NetEvent) {
        trace::record(&self.trace, event);
    }
}

/// Manages this peer's listening socket and its connections; see the
/// module docs for the lifecycle, race, and backpressure rules.
pub struct PeerManager {
    shared: Arc<Shared>,
    inbound_rx: Mutex<Receiver<(PeerId, Frame)>>,
    config: PeerConfig,
}

impl fmt::Debug for PeerManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeerManager")
            .field("local", &self.config.local)
            .field("addr", &self.config.addr)
            .field("connections", &self.connection_count())
            .finish_non_exhaustive()
    }
}

impl PeerManager {
    /// Binds the configured address and starts the accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: PeerConfig) -> io::Result<Arc<Self>> {
        let listener = Listener::bind(&config.addr)?;
        let (inbound_tx, inbound_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            local: config.local,
            queue_depth: config.queue_depth,
            conns: Mutex::new(HashMap::new()),
            conns_changed: Condvar::new(),
            states: Mutex::new(HashMap::new()),
            inbound: inbound_tx,
            shutdown: AtomicBool::new(false),
            epochs: AtomicU64::new(0),
            metrics: NetMetrics::new(),
            trace: TraceSlot::new(),
        });
        let manager = Arc::new(Self {
            shared: Arc::clone(&shared),
            inbound_rx: Mutex::new(inbound_rx),
            config: config.clone(),
        });
        let handshake_timeout = config.handshake_timeout;
        thread::spawn(move || accept_loop(&shared, &listener, handshake_timeout));
        Ok(manager)
    }

    /// This peer's identity.
    #[must_use]
    pub fn local(&self) -> PeerId {
        self.config.local
    }

    /// The cross-thread metrics sink shared by this peer's socket
    /// threads. Disabled until [`NetMetrics::enable`] is called, so an
    /// unobserved runtime records nothing.
    #[must_use]
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Attaches a wall-clock event trace. Only the first attach wins;
    /// a later call is ignored (the slot is write-once).
    pub fn attach_trace(&self, trace: Arc<NetTrace>) {
        let _ = self.shared.trace.set(trace);
    }

    /// The lifecycle state of the connection toward `peer`.
    #[must_use]
    pub fn state(&self, peer: PeerId) -> ConnState {
        *self
            .shared
            .states
            .lock()
            .expect("states lock")
            .get(&peer)
            .unwrap_or(&ConnState::Idle)
    }

    /// The number of live connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.shared.conns.lock().expect("conns lock").len()
    }

    /// Dials `peer` at `addr` until a connection is established (in
    /// either direction — losing a dial race to the peer's own dial
    /// still counts as connected), retrying with the deterministic
    /// jittered backoff.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] after the configured number of
    /// attempts; [`io::ErrorKind::Interrupted`] on shutdown.
    pub fn connect(&self, peer: PeerId, addr: &EndpointAddr) -> io::Result<()> {
        let mut backoff = Backoff::new(
            self.config.seed,
            u64::from(self.config.local.0),
            u64::from(peer.0),
        );
        for attempt in 1..=self.config.dial_attempts {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "peer manager is shut down",
                ));
            }
            if self.state(peer) == ConnState::Established {
                return Ok(());
            }
            self.shared.set_state(peer, ConnState::Dialing);
            self.shared.trace(NetEvent::Dial { peer, attempt });
            match self.dial_once(peer, addr) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    self.shared.metrics.count(Counter::NetRetries, 1);
                    if self.state(peer) == ConnState::Dialing {
                        self.shared.set_state(peer, ConnState::Idle);
                    }
                    let delay = backoff.next_delay();
                    self.shared.trace(NetEvent::Retry {
                        peer,
                        delay_ms: delay.as_millis() as u64,
                    });
                    thread::sleep(delay);
                }
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("could not reach {peer} at {addr}"),
        ))
    }

    fn dial_once(&self, peer: PeerId, addr: &EndpointAddr) -> io::Result<()> {
        let mut stream = Stream::connect(addr)?;
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        Frame::new(FrameKind::Hello, self.config.local.0.to_le_bytes().to_vec())
            .write_to(&mut stream)?;
        let reply = Frame::read_from(&mut stream)?;
        let remote = decode_hello(&reply)?;
        if remote != peer {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("dialed {peer}, reached {remote}"),
            ));
        }
        // Third leg of the handshake: confirm so the acceptor knows
        // this socket was not abandoned to a reply timeout. Only after
        // this write does either side install.
        Frame::new(FrameKind::Hello, self.config.local.0.to_le_bytes().to_vec())
            .write_to(&mut stream)?;
        stream.set_read_timeout(None)?;
        // Either this socket was installed or an existing (or
        // race-winning) connection already serves the peer — both
        // mean "connected".
        install(&self.shared, peer, stream, self.config.local)?;
        Ok(())
    }

    /// Queues `frame` for `peer`. Blocks while the peer's bounded
    /// outbound queue is full — this is the backpressure surface.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotConnected`] without a live connection;
    /// [`io::ErrorKind::BrokenPipe`] if the connection died while the
    /// frame was queued.
    pub fn send(&self, peer: PeerId, frame: Frame) -> io::Result<()> {
        let tx = {
            let conns = self.shared.conns.lock().expect("conns lock");
            conns.get(&peer).map(|c| c.tx.clone())
        };
        let tx = tx.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                format!("no connection to {peer}"),
            )
        })?;
        // Try the fast path first so a full queue — the backpressure
        // surface — is observable before this call blocks on it.
        let frame = match tx.try_send(frame) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    format!("{peer} went away"),
                ));
            }
            Err(TrySendError::Full(frame)) => {
                self.shared.metrics.count(Counter::NetSendStalls, 1);
                self.shared.trace(NetEvent::SendStall {
                    peer,
                    kind: frame.kind,
                });
                frame
            }
        };
        tx.send(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, format!("{peer} went away")))
    }

    /// Receives the next inbound frame from any peer, waiting at most
    /// `timeout`. `None` on timeout.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(PeerId, Frame)> {
        self.inbound_rx
            .lock()
            .expect("inbound lock")
            .recv_timeout(timeout)
            .ok()
    }

    /// Waits until `count` connections are live.
    ///
    /// Readiness-driven: the waiter parks on a condvar that every
    /// `conns` mutation signals, so assembly needs no polling interval
    /// — on a 1-vCPU host the old fixed 5 ms sleep could starve the
    /// handshake threads it was waiting for. A bounded wait slice
    /// remains as a backstop; each slice that expires without progress
    /// is counted under `net_poll_starved`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] if the cluster does not assemble
    /// within `timeout`.
    pub fn await_connections(&self, count: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        let mut conns = self.shared.conns.lock().expect("conns lock");
        while conns.len() < count {
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("{} of {count} peers connected before timeout", conns.len()),
                ));
            }
            let before = conns.len();
            let slice = (deadline - now).min(Duration::from_secs(1));
            let (guard, wait) = self
                .shared
                .conns_changed
                .wait_timeout(conns, slice)
                .expect("conns lock");
            conns = guard;
            if wait.timed_out() && conns.len() <= before {
                self.shared.metrics.count(Counter::NetPollStarved, 1);
            }
        }
        Ok(())
    }

    /// Starts a graceful drain toward `peer`: the outbound queue is
    /// closed and flushed by the writer, then the write side shuts
    /// down; the peer observes a clean EOF after the last frame.
    pub fn drain(&self, peer: PeerId) {
        let removed = {
            let mut conns = self.shared.conns.lock().expect("conns lock");
            let removed = conns.remove(&peer);
            self.shared.conns_changed.notify_all();
            removed
        };
        if removed.is_some() {
            // Dropping the Conn drops its SyncSender; the writer
            // thread drains the queue, then half-closes the socket.
            self.shared.set_state(peer, ConnState::Draining);
            self.shared.trace(NetEvent::Drain { peer });
        }
    }

    /// Tears down every connection and stops the accept loop.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let conns: Vec<(PeerId, Conn)> = {
            let mut guard = self.shared.conns.lock().expect("conns lock");
            let drained = guard.drain().collect();
            self.shared.conns_changed.notify_all();
            drained
        };
        for (peer, conn) in conns {
            conn.stream.shutdown_both();
            self.shared.set_state(peer, ConnState::Closed);
            self.shared.trace(NetEvent::Closed { peer });
        }
    }
}

impl Drop for PeerManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn decode_hello(frame: &Frame) -> io::Result<PeerId> {
    if frame.kind != FrameKind::Hello || frame.body.len() != 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HELLO",
        ));
    }
    Ok(PeerId(u32::from_le_bytes(
        frame.body[..4].try_into().expect("4 bytes"),
    )))
}

/// Longest the accept loop sleeps between empty polls.
const ACCEPT_IDLE_CAP: Duration = Duration::from_millis(5);

fn accept_loop(shared: &Arc<Shared>, listener: &Listener, handshake_timeout: Duration) {
    // Adaptive wait instead of a fixed sleep: yield while a burst may
    // still be arriving, then back off geometrically to the cap. On a
    // 1-vCPU host the yields give handshake threads the core instead
    // of parking the loop for a full 5 ms at the worst moment.
    let mut idle = 0u32;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept_pending() {
            Ok(Some(stream)) => {
                idle = 0;
                shared.trace(NetEvent::Accept);
                let shared = Arc::clone(shared);
                thread::spawn(move || accept_handshake(&shared, stream, handshake_timeout));
            }
            Ok(None) => {
                idle = idle.saturating_add(1);
                if idle <= 3 {
                    thread::yield_now();
                } else {
                    let backoff = Duration::from_micros(200).saturating_mul(1 << (idle - 4).min(8));
                    thread::sleep(backoff.min(ACCEPT_IDLE_CAP));
                }
            }
            Err(_) => break,
        }
    }
}

fn accept_handshake(shared: &Arc<Shared>, mut stream: Stream, handshake_timeout: Duration) {
    let outcome = (|| -> io::Result<()> {
        stream.set_read_timeout(Some(handshake_timeout))?;
        let hello = Frame::read_from(&mut stream)?;
        let remote = decode_hello(&hello)?;
        shared.set_state(remote, ConnState::Accepting);
        Frame::new(FrameKind::Hello, shared.local.0.to_le_bytes().to_vec())
            .write_to(&mut stream)?;
        // Wait for the dialer's confirmation before installing: a
        // dialer whose reply read timed out abandons the socket and
        // retries, and installing its ghost here would let the ghost
        // win the duplicate-dial tiebreak against that retry. The
        // confirmation read is NOT timed: the counterparty proved
        // itself live with a valid HELLO, and our dialer either
        // confirms promptly or closes the socket (a clean EOF aborts
        // this read) — while a timeout here would re-open the window
        // in the other direction, dropping a socket the dialer
        // already considers established.
        stream.set_read_timeout(None)?;
        let confirm = decode_hello(&Frame::read_from(&mut stream)?)?;
        if confirm != remote {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake confirmation names a different peer",
            ));
        }
        stream.set_read_timeout(None)?;
        // An accepted connection was dialed by the remote peer.
        install(shared, remote, stream, remote)?;
        Ok(())
    })();
    // A failed handshake leaves no installed connection; nothing to
    // clean up beyond dropping the socket.
    let _ = outcome;
}

/// Installs a freshly handshaken connection, resolving a dial race if
/// a connection to `peer` already exists: the socket dialed by the
/// lower peer id survives, the other is torn down (both sides apply
/// the same rule and converge without coordination).
fn install(shared: &Arc<Shared>, peer: PeerId, stream: Stream, dialer: PeerId) -> io::Result<bool> {
    let reader_stream = stream.try_clone()?;
    let writer_stream = stream.try_clone()?;
    let mut conns = shared.conns.lock().expect("conns lock");
    if let Some(existing) = conns.get(&peer) {
        if existing.dialer < dialer {
            // The established connection wins: it was dialed by the
            // lower id. Discard the newcomer.
            shared.metrics.count(Counter::NetRaceLost, 1);
            shared.trace(NetEvent::RaceLost { peer });
            drop(conns);
            stream.shutdown_both();
            return Ok(false);
        }
        // The newcomer wins: either it was dialed by the lower id
        // (cross race), or this is a duplicate dial of the same
        // direction — the remote only re-dials after abandoning its
        // previous socket, so the incumbent is dead. Displace it; its
        // reader observes the teardown and exits without touching the
        // new entry (epoch check).
        shared.metrics.count(Counter::NetRaceLost, 1);
        shared.trace(NetEvent::Displaced { peer });
        if let Some(old) = conns.remove(&peer) {
            old.stream.shutdown_both();
        }
    }
    let epoch = shared.epochs.fetch_add(1, Ordering::SeqCst) + 1;
    let (tx, rx) = mpsc::sync_channel(shared.queue_depth);
    conns.insert(
        peer,
        Conn {
            tx,
            stream,
            dialer,
            epoch,
        },
    );
    shared.conns_changed.notify_all();
    drop(conns);
    shared.set_state(peer, ConnState::Established);
    shared.trace(NetEvent::HandshakeOk {
        peer,
        dialer: dialer == shared.local,
    });
    {
        let shared = Arc::clone(shared);
        thread::spawn(move || reader_loop(&shared, reader_stream, peer, epoch));
    }
    {
        let shared = Arc::clone(shared);
        thread::spawn(move || writer_loop(&shared, writer_stream, &rx));
    }
    Ok(true)
}

fn reader_loop(shared: &Arc<Shared>, mut stream: Stream, peer: PeerId, epoch: u64) {
    // Reset semantics: any read error — CRC mismatch, EOF mid-frame,
    // socket teardown — ends the connection; the stream is never
    // resynchronized.
    while let Ok(frame) = Frame::read_from(&mut stream) {
        shared.metrics.count(Counter::NetFramesRecv, 1);
        shared.metrics.count(
            Counter::NetBytesRecv,
            (HEADER_LEN + frame.body.len()) as u64,
        );
        if shared.inbound.send((peer, frame)).is_err() {
            break;
        }
    }
    let mut conns = shared.conns.lock().expect("conns lock");
    // Only retire the entry if it is still ours; if a dial race
    // displaced this connection, the winner's entry stays untouched.
    if conns.get(&peer).is_some_and(|c| c.epoch == epoch) {
        if let Some(conn) = conns.remove(&peer) {
            conn.stream.shutdown_both();
        }
        shared.conns_changed.notify_all();
        drop(conns);
        shared.set_state(peer, ConnState::Closed);
        shared.trace(NetEvent::Closed { peer });
    }
}

fn writer_loop(shared: &Arc<Shared>, mut stream: Stream, rx: &Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        // The clock is read only when the sink is armed, keeping the
        // unobserved hot path free of syscalls.
        let started = shared.metrics.is_enabled().then(Instant::now);
        let kind = frame.kind;
        let bytes = frame.encoded_len() as u64;
        if frame.write_to(&mut stream).is_err() {
            return; // reader notices the dead socket and retires it
        }
        if let Some(started) = started {
            // Per-kind wall clock from dequeue to completed write,
            // and per-kind encoded size. Sizes are recorded on the
            // send side only so a cluster-wide merge counts each
            // frame exactly once.
            let ns = started.elapsed().as_nanos() as u64;
            shared.metrics.observe_ns(frame_time_hist(kind), ns);
            shared.metrics.observe(frame_size_hist(kind), bytes);
        }
        shared.metrics.count(Counter::NetFramesSent, 1);
        shared.metrics.count(Counter::NetBytesSent, bytes);
    }
    // Queue closed (drain): everything queued has been written.
    stream.shutdown_write();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn scratch_addr(tag: &str) -> EndpointAddr {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        EndpointAddr::Unix(
            std::env::temp_dir().join(format!("bsub-peer-{}-{tag}-{n}.sock", std::process::id())),
        )
    }

    fn pair(
        tag: &str,
    ) -> (
        Arc<PeerManager>,
        Arc<PeerManager>,
        EndpointAddr,
        EndpointAddr,
    ) {
        let (a_addr, b_addr) = (
            scratch_addr(&format!("{tag}a")),
            scratch_addr(&format!("{tag}b")),
        );
        let a = PeerManager::bind(PeerConfig::new(PeerId(0), a_addr.clone(), 7)).unwrap();
        let b = PeerManager::bind(PeerConfig::new(PeerId(1), b_addr.clone(), 7)).unwrap();
        (a, b, a_addr, b_addr)
    }

    #[test]
    fn connect_send_recv() {
        let (a, b, _a_addr, b_addr) = pair("basic");
        a.connect(PeerId(1), &b_addr).unwrap();
        assert_eq!(a.state(PeerId(1)), ConnState::Established);
        a.send(
            PeerId(1),
            Frame::new(FrameKind::Dispatch, 42u64.to_le_bytes().to_vec()),
        )
        .unwrap();
        let (from, frame) = b
            .recv_timeout(Duration::from_secs(5))
            .expect("frame arrives");
        assert_eq!(from, PeerId(0));
        assert_eq!(frame.kind, FrameKind::Dispatch);
        assert_eq!(b.state(PeerId(0)), ConnState::Established);
        // And the reverse direction over the same socket.
        b.send(PeerId(0), Frame::new(FrameKind::PublishOk, Vec::new()))
            .unwrap();
        let (from, frame) = a
            .recv_timeout(Duration::from_secs(5))
            .expect("reply arrives");
        assert_eq!((from, frame.kind), (PeerId(1), FrameKind::PublishOk));
    }

    #[test]
    fn send_without_connection_errors() {
        let (a, _b, _a_addr, _b_addr) = pair("noconn");
        let err = a
            .send(PeerId(9), Frame::new(FrameKind::Done, Vec::new()))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        assert_eq!(a.state(PeerId(9)), ConnState::Idle);
    }

    #[test]
    fn connect_retries_until_listener_appears() {
        let addr = scratch_addr("late");
        let a = PeerManager::bind(PeerConfig::new(PeerId(0), scratch_addr("latea"), 7)).unwrap();
        let dial_addr = addr.clone();
        let dialer = {
            let a = Arc::clone(&a);
            thread::spawn(move || a.connect(PeerId(1), &dial_addr))
        };
        // Let a few dial attempts fail before the listener exists.
        thread::sleep(Duration::from_millis(60));
        let _b = PeerManager::bind(PeerConfig::new(PeerId(1), addr, 7)).unwrap();
        dialer.join().unwrap().unwrap();
        assert_eq!(a.state(PeerId(1)), ConnState::Established);
    }

    #[test]
    fn metrics_sink_and_trace_observe_the_lifecycle() {
        let (a, b, _a_addr, b_addr) = pair("obsplane");
        a.metrics().enable();
        let trace = Arc::new(NetTrace::new());
        a.attach_trace(Arc::clone(&trace));
        a.connect(PeerId(1), &b_addr).unwrap();
        a.send(PeerId(1), Frame::new(FrameKind::Dispatch, vec![0; 16]))
            .unwrap();
        b.recv_timeout(Duration::from_secs(5)).expect("delivered");
        a.drain(PeerId(1));

        // The writer thread records asynchronously; wait for it.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = a.metrics().snapshot();
            // Dispatch + the dial-side share of the HELLO exchange.
            if snap.counter(Counter::NetFramesSent) >= 1 {
                assert!(snap.counter(Counter::NetBytesSent) >= 16);
                assert_eq!(
                    snap.size_hist(bsub_obs::SizeHist::NetFrameDispatchBytes)
                        .count(),
                    1
                );
                assert_eq!(
                    snap.time_hist(bsub_obs::TimeHist::NetFrameDispatchNs)
                        .count(),
                    1
                );
                break;
            }
            assert!(Instant::now() < deadline, "writer metrics never appeared");
            thread::yield_now();
        }

        let labels: Vec<&str> = trace.events().iter().map(|e| e.event.label()).collect();
        assert!(labels.contains(&"dial"), "{labels:?}");
        assert!(labels.contains(&"handshake_ok"), "{labels:?}");
        assert!(labels.contains(&"drain"), "{labels:?}");
        assert!(trace.to_jsonl().lines().count() == labels.len());

        // B never armed its sink: nothing recorded there.
        assert!(b.metrics().snapshot().is_empty());
    }

    #[test]
    fn drain_flushes_then_closes() {
        let (a, b, _a_addr, b_addr) = pair("drain");
        a.connect(PeerId(1), &b_addr).unwrap();
        a.send(PeerId(1), Frame::new(FrameKind::Done, Vec::new()))
            .unwrap();
        a.drain(PeerId(1));
        assert!(matches!(
            a.state(PeerId(1)),
            ConnState::Draining | ConnState::Closed
        ));
        // The queued frame still arrives before the EOF.
        let (_, frame) = b
            .recv_timeout(Duration::from_secs(5))
            .expect("drained frame");
        assert_eq!(frame.kind, FrameKind::Done);
        // B's reader sees the clean EOF and retires the connection.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.state(PeerId(0)) != ConnState::Closed {
            assert!(std::time::Instant::now() < deadline, "peer retires on EOF");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.connection_count(), 0);
    }
}
