//! Scrapeable stats endpoint for the live observability plane.
//!
//! A running cluster coordinator holds one continuously-merged,
//! cluster-wide [`ProfReport`] (DESIGN.md §15). This module makes that
//! report *reachable from outside the process while the run is live*:
//! a [`StatsHandle`] is the shared, thread-safe slot the coordinator
//! merges worker deltas into, and a [`StatsServer`] serves the slot's
//! current contents over the workspace's unified
//! [`Listener`](crate::transport::Listener) — so the endpoint works
//! identically over TCP (`curl http://…/metrics`) and Unix-domain
//! sockets, with no HTTP library.
//!
//! Two paths are served, both one-shot (`Connection: close`):
//!
//! - `/metrics` — Prometheus-style text exposition (see
//!   [`render_prometheus`]),
//! - `/metrics.json` — the same report as `ProfReport::to_json()`.
//!
//! The server only ever *reads* the handle; scraping cannot perturb
//! the run, which keeps the determinism guarantee intact.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bsub_obs::{Counter, Gauge, Histogram, ProfReport, SizeHist, TimeHist};

use crate::transport::{EndpointAddr, Listener, Stream};

/// How long one scrape connection may take to send its request line
/// before the server gives up on it.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);

/// A shared slot holding the live cluster-wide merged report.
///
/// Clones share the slot. `merge` folds a delta in (commutatively, so
/// out-of-order worker deltas converge to the same total); `snapshot`
/// copies the current merged state out.
#[derive(Debug, Clone, Default)]
pub struct StatsHandle {
    slot: Arc<Mutex<ProfReport>>,
}

impl StatsHandle {
    /// A fresh, empty slot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `delta` into the slot.
    pub fn merge(&self, delta: &ProfReport) {
        self.slot.lock().expect("stats slot").merge(delta);
    }

    /// A copy of the current merged report.
    #[must_use]
    pub fn snapshot(&self) -> ProfReport {
        self.slot.lock().expect("stats slot").clone()
    }
}

/// Appends one summary-typed series for a histogram.
fn render_summary(out: &mut String, name: &str, hist: &Histogram) {
    out.push_str(&format!("# TYPE bsub_{name} summary\n"));
    for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
        out.push_str(&format!(
            "bsub_{name}{{quantile=\"{label}\"}} {}\n",
            hist.quantile(q)
        ));
    }
    out.push_str(&format!("bsub_{name}_sum {}\n", hist.sum()));
    out.push_str(&format!("bsub_{name}_count {}\n", hist.count()));
}

/// Renders a report in Prometheus text exposition format, every metric
/// name prefixed `bsub_`. Counters and gauges come first (taxonomy
/// order), then timing and size histograms as `summary` series with
/// p50/p90/p99 upper bounds plus exact `_sum`/`_count`. Zero-valued
/// counters and gauges and empty histograms are omitted, so a scrape
/// shows exactly what has been observed — and the exposition of a
/// merged cluster report stays a few KiB.
#[must_use]
pub fn render_prometheus(report: &ProfReport) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let v = report.counter(c);
        if v != 0 {
            out.push_str(&format!(
                "# TYPE bsub_{name} counter\nbsub_{name} {v}\n",
                name = c.name()
            ));
        }
    }
    for g in Gauge::ALL {
        let v = report.gauge(g);
        if v != 0 {
            out.push_str(&format!(
                "# TYPE bsub_{name} gauge\nbsub_{name} {v}\n",
                name = g.name()
            ));
        }
    }
    for h in TimeHist::ALL {
        let hist = report.time_hist(h);
        if !hist.is_empty() {
            render_summary(&mut out, h.name(), hist);
        }
    }
    for h in SizeHist::ALL {
        let hist = report.size_hist(h);
        if !hist.is_empty() {
            render_summary(&mut out, h.name(), hist);
        }
    }
    out
}

/// Serves one accepted scrape connection.
fn serve_connection(mut stream: Stream, handle: &StatsHandle) {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let mut request = Vec::new();
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head (we ignore
    // headers, so the body — there is none for GET — never matters).
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(&handle.snapshot()),
            ),
            "/metrics.json" => ("200 OK", "application/json", handle.snapshot().to_json()),
            _ => (
                "404 Not Found",
                "text/plain",
                String::from("try /metrics or /metrics.json\n"),
            ),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// A background HTTP/1.0 server exposing a [`StatsHandle`].
///
/// Dropping the server (or calling [`StatsServer::shutdown`]) stops
/// the accept thread. Bind to a TCP port `0` to let the kernel pick;
/// [`StatsServer::local_addr`] reports the resolved address.
#[derive(Debug)]
pub struct StatsServer {
    addr: EndpointAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` and starts serving `handle` in the background.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve(addr: &EndpointAddr, handle: StatsHandle) -> io::Result<Self> {
        let listener = Listener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("bsub-stats".into())
            .spawn(move || {
                let mut idle = 0u32;
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept_pending() {
                        Ok(Some(stream)) => {
                            idle = 0;
                            serve_connection(stream, &handle);
                        }
                        Ok(None) => {
                            // Adaptive wait: spin briefly on a fresh
                            // burst, then back off to a short sleep so
                            // an idle endpoint costs ~nothing.
                            idle = idle.saturating_add(1);
                            if idle < 4 {
                                thread::yield_now();
                            } else {
                                thread::sleep(Duration::from_millis(2));
                            }
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn stats server thread");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (TCP port 0 resolved to the real port).
    #[must_use]
    pub fn local_addr(&self) -> &EndpointAddr {
        &self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.shutdown();
        if let EndpointAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Scrapes `path` from a stats endpoint at `addr` and returns the
/// response body. The dependency-free client used by the `net-cluster`
/// binary's `--scrape` mode and by CI.
///
/// # Errors
///
/// I/O failures, a malformed response, or a non-200 status.
pub fn scrape(addr: &EndpointAddr, path: &str) -> io::Result<String> {
    let mut stream = Stream::connect(addr)?;
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: bsub\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body split"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.starts_with("HTTP/1.0 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("scrape {path}: {status}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ProfReport {
        let mut r = ProfReport::default();
        r.add_counter(Counter::NetFramesSent, 12);
        r.add_counter(Counter::NetStatsFrames, 2);
        r.raise_gauge(Gauge::BufferMsgs, 17);
        r.record_time(TimeHist::NetExchangeNs, 1_500);
        r.record_time(TimeHist::NetExchangeNs, 900);
        r.record_size(SizeHist::NetFrameStatsBytes, 256);
        r
    }

    #[test]
    fn exposition_is_pinned() {
        // Golden output: taxonomy order, zero series omitted, summary
        // quantiles are log2-bucket upper bounds clamped to max.
        let expected = "\
# TYPE bsub_net_frames_sent counter
bsub_net_frames_sent 12
# TYPE bsub_net_stats_frames counter
bsub_net_stats_frames 2
# TYPE bsub_buffer_msgs_hwm gauge
bsub_buffer_msgs_hwm 17
# TYPE bsub_net_exchange_ns summary
bsub_net_exchange_ns{quantile=\"0.5\"} 1023
bsub_net_exchange_ns{quantile=\"0.9\"} 1500
bsub_net_exchange_ns{quantile=\"0.99\"} 1500
bsub_net_exchange_ns_sum 2400
bsub_net_exchange_ns_count 2
# TYPE bsub_net_frame_stats_bytes summary
bsub_net_frame_stats_bytes{quantile=\"0.5\"} 256
bsub_net_frame_stats_bytes{quantile=\"0.9\"} 256
bsub_net_frame_stats_bytes{quantile=\"0.99\"} 256
bsub_net_frame_stats_bytes_sum 256
bsub_net_frame_stats_bytes_count 1
";
        assert_eq!(render_prometheus(&sample_report()), expected);
        assert_eq!(render_prometheus(&ProfReport::default()), "");
    }

    #[test]
    fn server_serves_text_json_and_404() {
        let handle = StatsHandle::new();
        handle.merge(&sample_report());
        let addr = EndpointAddr::Tcp("127.0.0.1:0".parse().unwrap());
        let server = StatsServer::serve(&addr, handle.clone()).unwrap();
        let bound = server.local_addr().clone();

        let text = scrape(&bound, "/metrics").unwrap();
        assert_eq!(text, render_prometheus(&handle.snapshot()));

        let json = scrape(&bound, "/metrics.json").unwrap();
        assert_eq!(json, handle.snapshot().to_json());

        let err = scrape(&bound, "/nope").unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        // The endpoint is live: a merge between scrapes is visible.
        handle.merge(&sample_report());
        let text2 = scrape(&bound, "/metrics").unwrap();
        assert!(text2.contains("bsub_net_frames_sent 24"), "{text2}");
    }

    #[test]
    fn server_works_over_unix_sockets() {
        let handle = StatsHandle::new();
        handle.merge(&sample_report());
        let path = std::env::temp_dir().join(format!("bsub-stats-{}.sock", std::process::id()));
        let server = StatsServer::serve(&EndpointAddr::Unix(path), handle.clone()).unwrap();
        let text = scrape(server.local_addr(), "/metrics").unwrap();
        assert!(text.contains("bsub_net_frames_sent 12"), "{text}");
    }

    #[test]
    fn handle_merge_is_arrival_order_independent() {
        let mut deltas = Vec::new();
        for i in 1..=4u64 {
            let mut d = ProfReport::default();
            d.add_counter(Counter::NetFramesSent, i);
            d.record_time(TimeHist::NetExchangeNs, i * 100);
            deltas.push(d);
        }
        let forward = StatsHandle::new();
        for d in &deltas {
            forward.merge(d);
        }
        let reverse = StatsHandle::new();
        for d in deltas.iter().rev() {
            reverse.merge(d);
        }
        assert_eq!(forward.snapshot(), reverse.snapshot());
        assert_eq!(forward.snapshot().counter(Counter::NetFramesSent), 10);
    }
}
