//! Wall-clock event tracing for the peer connection state machine.
//!
//! The simulator's `EventLog` records *simulated* time; connection
//! management happens in *wall-clock* time, on threads the simulator
//! never sees. [`NetTrace`] is the equivalent seam for that layer: a
//! shared, append-only log of typed [`NetEvent`]s stamped with
//! microseconds since the trace was attached, serializable to the same
//! JSON-lines shape the simulator's event streams use (one object per
//! line, stable keys) so the two can be eyeballed and post-processed
//! with the same tooling.
//!
//! A trace is attached to a [`PeerManager`](crate::PeerManager) after
//! construction via `attach_trace`; when none is attached the recording
//! path is a single `OnceLock` load. Traces observe only — they never
//! feed back into connection decisions — so attaching one cannot change
//! protocol results, which is what lets the determinism suite assert
//! byte-identical artifacts with the observability plane on and off.

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::frame::FrameKind;
use crate::peer::PeerId;

/// One typed lifecycle event in the peer state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// An outbound dial attempt started (1-based attempt number).
    Dial {
        /// The peer being dialed.
        peer: PeerId,
        /// 1-based dial attempt number.
        attempt: u32,
    },
    /// An inbound connection was accepted (peer unknown until Hello).
    Accept,
    /// A connection finished its handshake and was installed.
    HandshakeOk {
        /// The remote peer.
        peer: PeerId,
        /// Whether the local side dialed (`true`) or accepted.
        dialer: bool,
    },
    /// A dial race was lost; the redundant connection was dropped.
    RaceLost {
        /// The remote peer.
        peer: PeerId,
    },
    /// An established connection was displaced by a newer one.
    Displaced {
        /// The remote peer.
        peer: PeerId,
    },
    /// A failed dial will be retried after a backoff delay.
    Retry {
        /// The peer being dialed.
        peer: PeerId,
        /// Backoff delay before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// A send found the outbound queue full and stalled (backpressure).
    SendStall {
        /// The destination peer.
        peer: PeerId,
        /// The kind of frame that stalled.
        kind: FrameKind,
    },
    /// A graceful drain of a connection started.
    Drain {
        /// The remote peer.
        peer: PeerId,
    },
    /// A connection reached the closed state.
    Closed {
        /// The remote peer.
        peer: PeerId,
    },
}

impl NetEvent {
    /// Stable lowercase event name (the `"event"` key in JSONL).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NetEvent::Dial { .. } => "dial",
            NetEvent::Accept => "accept",
            NetEvent::HandshakeOk { .. } => "handshake_ok",
            NetEvent::RaceLost { .. } => "race_lost",
            NetEvent::Displaced { .. } => "displaced",
            NetEvent::Retry { .. } => "retry",
            NetEvent::SendStall { .. } => "send_stall",
            NetEvent::Drain { .. } => "drain",
            NetEvent::Closed { .. } => "closed",
        }
    }
}

/// One recorded event with its wall-clock offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Microseconds since the trace was created.
    pub us: u64,
    /// The event.
    pub event: NetEvent,
}

/// A shared wall-clock event log for one peer's connection machinery.
#[derive(Debug)]
pub struct NetTrace {
    start: Instant,
    events: Mutex<Vec<TracedEvent>>,
}

impl Default for NetTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl NetTrace {
    /// An empty trace; the clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Appends one event, stamped with the current offset.
    pub fn record(&self, event: NetEvent) {
        let us = self.start.elapsed().as_micros() as u64;
        self.events
            .lock()
            .expect("net trace")
            .push(TracedEvent { us, event });
    }

    /// A copy of every event recorded so far, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<TracedEvent> {
        self.events.lock().expect("net trace").clone()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("net trace").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the trace as JSON lines: one object per event with
    /// an `"us"` offset, an `"event"` label, and the event's fields.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for TracedEvent { us, event } in self.events().iter() {
            let _ = write!(out, "{{\"us\":{us},\"event\":\"{}\"", event.label());
            match *event {
                NetEvent::Dial { peer, attempt } => {
                    let _ = write!(out, ",\"peer\":{},\"attempt\":{attempt}", peer.0);
                }
                NetEvent::Accept => {}
                NetEvent::HandshakeOk { peer, dialer } => {
                    let _ = write!(out, ",\"peer\":{},\"dialer\":{dialer}", peer.0);
                }
                NetEvent::RaceLost { peer }
                | NetEvent::Displaced { peer }
                | NetEvent::Drain { peer }
                | NetEvent::Closed { peer } => {
                    let _ = write!(out, ",\"peer\":{}", peer.0);
                }
                NetEvent::Retry { peer, delay_ms } => {
                    let _ = write!(out, ",\"peer\":{},\"delay_ms\":{delay_ms}", peer.0);
                }
                NetEvent::SendStall { peer, kind } => {
                    let _ = write!(out, ",\"peer\":{},\"kind\":\"{}\"", peer.0, kind.name());
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// A lazily-attached trace slot: one atomic load when empty, so an
/// untraced runtime pays nothing. Shared by all threads of one peer.
pub(crate) type TraceSlot = OnceLock<std::sync::Arc<NetTrace>>;

/// Records into `slot` if a trace is attached.
pub(crate) fn record(slot: &TraceSlot, event: NetEvent) {
    if let Some(trace) = slot.get() {
        trace.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_carry_typed_fields() {
        let trace = NetTrace::new();
        trace.record(NetEvent::Dial {
            peer: PeerId(3),
            attempt: 1,
        });
        trace.record(NetEvent::Accept);
        trace.record(NetEvent::HandshakeOk {
            peer: PeerId(3),
            dialer: true,
        });
        trace.record(NetEvent::Retry {
            peer: PeerId(7),
            delay_ms: 40,
        });
        trace.record(NetEvent::SendStall {
            peer: PeerId(3),
            kind: FrameKind::Dispatch,
        });
        trace.record(NetEvent::Drain { peer: PeerId(3) });

        let jsonl = trace.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"event\":\"dial\""), "{}", lines[0]);
        assert!(lines[0].contains("\"peer\":3"), "{}", lines[0]);
        assert!(lines[0].contains("\"attempt\":1"), "{}", lines[0]);
        assert!(lines[1].ends_with("\"event\":\"accept\"}"), "{}", lines[1]);
        assert!(lines[2].contains("\"dialer\":true"), "{}", lines[2]);
        assert!(lines[3].contains("\"delay_ms\":40"), "{}", lines[3]);
        assert!(lines[4].contains("\"kind\":\"dispatch\""), "{}", lines[4]);
        assert!(lines[5].contains("\"event\":\"drain\""), "{}", lines[5]);
        // Every line is a braced object with a leading "us" offset.
        for line in lines {
            assert!(line.starts_with("{\"us\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn empty_slot_is_a_no_op() {
        let slot = TraceSlot::new();
        record(&slot, NetEvent::Accept); // must not panic
        let trace = std::sync::Arc::new(NetTrace::new());
        slot.set(std::sync::Arc::clone(&trace)).expect("first set");
        record(&slot, NetEvent::Accept);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].event.label(), "accept");
    }
}
