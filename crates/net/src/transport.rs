//! Socket transport: one enum over TCP and Unix-domain endpoints.
//!
//! The cluster protocol is transport-agnostic — everything above this
//! module speaks [`Stream`]/[`Listener`] and never sees which socket
//! family is underneath. Loopback clusters use Unix-domain sockets
//! (no ports to collide, the kernel cleans up with the directory);
//! TCP covers actual remote peers and platforms where a path-named
//! socket is inconvenient.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a peer listens: a TCP socket address or a Unix-domain
/// socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:7700`.
    Tcp(SocketAddr),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            EndpointAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound, non-blocking listening socket.
#[derive(Debug)]
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds `addr` in non-blocking accept mode (the accept loop
    /// polls so it can observe shutdown). A stale Unix socket file
    /// left by a crashed process is removed first.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &EndpointAddr) -> io::Result<Self> {
        match addr {
            EndpointAddr::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            EndpointAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
        }
    }

    /// The address actually bound — for TCP this resolves a port-0
    /// bind to the kernel-assigned port, which is how the stats
    /// endpoint advertises a scrapable address without a fixed port.
    ///
    /// # Errors
    ///
    /// Propagates getsockname failures; fails for an unnamed
    /// Unix-domain listener (never produced by [`Listener::bind`]).
    pub fn local_addr(&self) -> io::Result<EndpointAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().map(EndpointAddr::Tcp),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                addr.as_pathname()
                    .map(|p| EndpointAddr::Unix(p.to_path_buf()))
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "unnamed unix listener")
                    })
            }
        }
    }

    /// Accepts one pending connection, or `None` when nothing is
    /// waiting. The returned stream is switched back to blocking
    /// mode.
    ///
    /// # Errors
    ///
    /// Propagates accept failures other than `WouldBlock`.
    pub fn accept_pending(&self) -> io::Result<Option<Stream>> {
        let accepted = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                stream.set_nonblocking(false)?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// One established connection over either socket family.
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Connects to `addr` (blocking).
    ///
    /// # Errors
    ///
    /// Propagates connection failures (e.g. the peer is not yet
    /// listening — the peer layer retries with backoff).
    pub fn connect(addr: &EndpointAddr) -> io::Result<Self> {
        match addr {
            EndpointAddr::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
            EndpointAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
        }
    }

    /// Clones the handle (reader and writer threads each own one).
    ///
    /// # Errors
    ///
    /// Propagates `dup` failures.
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Sets (or clears) the read timeout — used only during the
    /// HELLO handshake so a silent counterparty cannot pin a thread.
    ///
    /// # Errors
    ///
    /// Propagates setsockopt failures.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(timeout),
            Stream::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Half-closes the write side, signalling a clean end of stream
    /// to the peer while reads continue (the drain path).
    pub fn shutdown_write(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Write),
            Stream::Unix(s) => s.shutdown(Shutdown::Write),
        };
    }

    /// Tears the connection down in both directions, unblocking any
    /// thread parked in a read or write on a clone of this handle.
    pub fn shutdown_both(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameKind};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_unix_addr(tag: &str) -> EndpointAddr {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        EndpointAddr::Unix(
            std::env::temp_dir().join(format!("bsub-net-{}-{tag}-{n}.sock", std::process::id())),
        )
    }

    #[test]
    fn unix_round_trip_and_nonblocking_accept() {
        let addr = scratch_unix_addr("rt");
        let listener = Listener::bind(&addr).unwrap();
        assert!(
            listener.accept_pending().unwrap().is_none(),
            "nothing pending yet"
        );
        let mut client = Stream::connect(&addr).unwrap();
        let mut server = loop {
            if let Some(s) = listener.accept_pending().unwrap() {
                break s;
            }
        };
        let frame = Frame::new(FrameKind::Hello, vec![1, 2, 3]);
        frame.write_to(&mut client).unwrap();
        assert_eq!(Frame::read_from(&mut server).unwrap(), frame);
        if let EndpointAddr::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn tcp_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = EndpointAddr::Tcp(listener.local_addr().unwrap());
        drop(listener);
        let listener = Listener::bind(&addr).unwrap();
        let mut client = Stream::connect(&addr).unwrap();
        let mut server = loop {
            if let Some(s) = listener.accept_pending().unwrap() {
                break s;
            }
        };
        let frame = Frame::new(FrameKind::PublishOk, 9u64.to_le_bytes().to_vec());
        frame.write_to(&mut server).unwrap();
        assert_eq!(Frame::read_from(&mut client).unwrap(), frame);
        assert!(addr.to_string().starts_with("tcp://127.0.0.1:"));
    }

    #[test]
    fn local_addr_resolves_port_zero() {
        let wildcard = EndpointAddr::Tcp("127.0.0.1:0".parse().unwrap());
        let listener = Listener::bind(&wildcard).unwrap();
        let bound = listener.local_addr().unwrap();
        match &bound {
            EndpointAddr::Tcp(addr) => assert_ne!(addr.port(), 0, "kernel assigned a port"),
            EndpointAddr::Unix(_) => panic!("bound a TCP listener"),
        }
        assert!(Stream::connect(&bound).is_ok());

        let unix = scratch_unix_addr("la");
        let listener = Listener::bind(&unix).unwrap();
        assert_eq!(listener.local_addr().unwrap(), unix);
        if let EndpointAddr::Unix(path) = &unix {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn bind_replaces_stale_unix_socket() {
        let addr = scratch_unix_addr("stale");
        let first = Listener::bind(&addr).unwrap();
        drop(first); // leaves the socket file behind
        let second = Listener::bind(&addr);
        assert!(second.is_ok(), "stale socket file is swept on bind");
        if let EndpointAddr::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn half_close_delivers_eof_after_buffered_data() {
        let addr = scratch_unix_addr("drain");
        let listener = Listener::bind(&addr).unwrap();
        let mut client = Stream::connect(&addr).unwrap();
        let mut server = loop {
            if let Some(s) = listener.accept_pending().unwrap() {
                break s;
            }
        };
        let frame = Frame::new(FrameKind::Done, Vec::new());
        frame.write_to(&mut client).unwrap();
        client.shutdown_write();
        // The buffered frame still arrives, then a clean EOF.
        assert_eq!(Frame::read_from(&mut server).unwrap(), frame);
        let err = Frame::read_from(&mut server).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        if let EndpointAddr::Unix(path) = &addr {
            let _ = std::fs::remove_file(path);
        }
    }
}
