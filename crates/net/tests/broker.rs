//! Differential proof for the networked broker: deliveries over real
//! sockets ≡ an in-process [`ReferenceMatcher`] replay.
//!
//! Concurrent client workers drive seeded subscribe / unsubscribe /
//! publish interleavings at a [`BrokerNode`] over Unix-domain sockets.
//! The broker journals the exact order it applied the ops in; the test
//! then replays that journal through the reference scan and demands:
//!
//! 1. **Decision equality** — every journaled publish's delivered set
//!    equals the reference's match for the same op prefix (the
//!    matching index behind sockets is still exactly the reference,
//!    Bloom false positives included — the geometry is chosen small
//!    enough to produce them).
//! 2. **Delivery fidelity** — every `DELIVER` frame each client
//!    actually received equals, in order, what the journal says was
//!    enqueued toward it (the socket plane loses and reorders
//!    nothing).
//!
//! Three seeds × three concurrent workers satisfies the ISSUE's "≥ 3
//! seeded interleavings at 2+ workers" bar; wall-clock deadline expiry
//! and the live-index snapshot seam get their own scenarios.

use bsub_bloom::SplitMix64;
use bsub_match::{Event, MatchParams, ReferenceMatcher};
use bsub_net::broker::{BrokerClient, BrokerConfig, BrokerNode, BrokerOp};
use bsub_net::{EndpointAddr, PeerConfig, PeerId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn scratch_addr(tag: &str) -> EndpointAddr {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    EndpointAddr::Unix(
        std::env::temp_dir().join(format!("bsub-broker-{}-{tag}-{n}.sock", std::process::id())),
    )
}

/// Small geometry: 128 bits across a 20-key pool forces member-level
/// Bloom false positives, which both sides must agree on.
fn fp_params() -> MatchParams {
    MatchParams {
        member_bits: 128,
        member_hashes: 2,
        initial: 8,
        tier_size: 2,
        tier_budget_bytes: 2048,
        keys_per_subscriber_hint: 2,
        compact_ratio: 0.5,
    }
}

const KEY_POOL: u64 = 20;
const WORKERS: u32 = 3;
const OPS_PER_WORKER: usize = 50;

fn key(i: u64) -> String {
    format!("topic-{}", i % KEY_POOL)
}

/// One worker's seeded op script against a shared broker. Returns
/// (subscribes sent, publishes sent).
fn drive_client(client: &BrokerClient, seed: u64) -> (u64, u64) {
    let mut rng = SplitMix64::new(seed);
    let mut subscribed_once = false;
    let (mut subs, mut pubs) = (0u64, 0u64);
    for i in 0..OPS_PER_WORKER {
        match rng.next_u64() % 10 {
            0..=3 => {
                let n = 1 + (rng.next_u64() % 3) as usize;
                let keys: Vec<String> = (0..n).map(|_| key(rng.next_u64())).collect();
                // Occasional TTLs long enough to outlive the run keep
                // the deadline path on without racing the assertions
                // (wheel expiry is pinned separately below).
                let ttl = (rng.next_u64() % 4 == 0).then_some(Duration::from_secs(120));
                client.subscribe(&keys, ttl).expect("subscribe sends");
                subscribed_once = true;
                subs += 1;
            }
            4 if subscribed_once => {
                client.unsubscribe().expect("unsubscribe sends");
            }
            _ => {
                let seq = (u64::from(client.local().0) << 32) | i as u64;
                client
                    .publish(seq, &key(rng.next_u64()))
                    .expect("publish sends");
                pubs += 1;
            }
        }
        if rng.next_u64() % 4 == 0 {
            thread::sleep(Duration::from_micros(200));
        }
    }
    (subs, pubs)
}

fn journal_counts(journal: &[BrokerOp]) -> (u64, u64) {
    let subs = journal
        .iter()
        .filter(|op| matches!(op, BrokerOp::Subscribe { .. }))
        .count() as u64;
    let pubs = journal
        .iter()
        .filter(|op| matches!(op, BrokerOp::Publish { .. }))
        .count() as u64;
    (subs, pubs)
}

/// Replays `journal` through the reference matcher, asserting decision
/// equality per publish and returning each subscriber's expected
/// delivery list in enqueue order.
fn replay(
    journal: &[BrokerOp],
    params: &MatchParams,
    seed: u64,
) -> BTreeMap<u64, Vec<(u32, u64, String)>> {
    let mut reference = ReferenceMatcher::from_params(params);
    let mut expected: BTreeMap<u64, Vec<(u32, u64, String)>> = BTreeMap::new();
    for (at, op) in journal.iter().enumerate() {
        match op {
            BrokerOp::Subscribe { client, keys, .. } => {
                reference.subscribe(u64::from(*client), keys);
            }
            BrokerOp::Unsubscribe { client } => {
                assert!(
                    reference.unsubscribe(u64::from(*client)),
                    "seed {seed} op {at}: broker journaled an unsubscribe \
                     for a client the reference thinks is gone"
                );
            }
            BrokerOp::Expire { clients, .. } => {
                for id in clients {
                    assert!(
                        reference.unsubscribe(*id),
                        "seed {seed} op {at}: broker expired unknown id {id}"
                    );
                }
            }
            BrokerOp::Publish {
                client,
                seq,
                key,
                delivered,
            } => {
                let oracle = reference.match_events(&[Event::new(key.clone())]);
                assert_eq!(
                    &oracle.matches[0], delivered,
                    "seed {seed} op {at}: broker delivery set for {key} (seq {seq}) \
                     diverged from the reference replay"
                );
                for &subscriber in delivered {
                    expected
                        .entry(subscriber)
                        .or_default()
                        .push((*client, *seq, key.clone()));
                }
            }
        }
    }
    expected
}

/// The tentpole: three seeded interleavings, three concurrent workers
/// each, decision equality and delivery fidelity on every one.
#[test]
fn networked_broker_matches_reference_across_seeded_interleavings() {
    for seed in [11u64, 29, 63] {
        let params = fp_params();
        let broker_id = PeerId(1000);
        let broker_addr = scratch_addr(&format!("diff{seed}"));
        let mut config = BrokerConfig::new(broker_id, broker_addr.clone(), seed);
        config.params = params;
        config.journal = true;
        let mut broker = BrokerNode::serve(config).expect("broker binds");

        let clients: Vec<Arc<BrokerClient>> = (1..=WORKERS)
            .map(|c| {
                let addr = scratch_addr(&format!("c{seed}-{c}"));
                Arc::new(
                    BrokerClient::connect(
                        PeerConfig::new(PeerId(c), addr, seed),
                        broker_id,
                        &broker_addr,
                    )
                    .expect("client connects"),
                )
            })
            .collect();

        let workers: Vec<_> = clients
            .iter()
            .map(|client| {
                let client = Arc::clone(client);
                let seed = SplitMix64::mix(seed, u64::from(client.local().0));
                thread::spawn(move || drive_client(&client, seed))
            })
            .collect();
        let (mut sent_subs, mut sent_pubs) = (0u64, 0u64);
        for worker in workers {
            let (s, p) = worker.join().expect("worker completes");
            sent_subs += s;
            sent_pubs += p;
        }
        assert!(sent_pubs > 0, "seed {seed}: the script never published");

        // Every subscribe and publish is journaled exactly once; wait
        // until the broker has applied them all.
        let deadline = Instant::now() + Duration::from_secs(20);
        let journal = loop {
            let journal = broker.journal();
            if journal_counts(&journal) == (sent_subs, sent_pubs) {
                break journal;
            }
            assert!(
                Instant::now() < deadline,
                "seed {seed}: broker applied {:?} of ({sent_subs}, {sent_pubs}) ops",
                journal_counts(&broker.journal())
            );
            thread::sleep(Duration::from_millis(5));
        };

        // Layer 1: the broker's decisions equal the reference replay.
        let expected = replay(&journal, &params, seed);

        // Layer 2: each client received exactly the journaled
        // deliveries, in enqueue order.
        for client in &clients {
            let want = expected
                .get(&u64::from(client.local().0))
                .cloned()
                .unwrap_or_default();
            let mut got = Vec::with_capacity(want.len());
            let deadline = Instant::now() + Duration::from_secs(10);
            while got.len() < want.len() {
                let left = deadline.saturating_duration_since(Instant::now());
                let delivery = client.recv_delivery(left).unwrap_or_else(|| {
                    panic!(
                        "seed {seed} client {}: {} of {} deliveries arrived",
                        client.local(),
                        got.len(),
                        want.len()
                    )
                });
                got.push((
                    delivery.body.publisher,
                    delivery.body.seq,
                    delivery.body.key.clone(),
                ));
            }
            assert_eq!(
                got,
                want,
                "seed {seed} client {}: delivery stream diverged",
                client.local()
            );
            // And nothing extra is in flight.
            assert!(
                client.recv_delivery(Duration::from_millis(100)).is_none(),
                "seed {seed} client {}: surplus delivery",
                client.local()
            );
        }

        broker.shutdown();
    }
}

/// Wall-clock deadline expiry over the wire: a TTL'd subscription
/// serves publishes until its deadline, is reaped by the wheel within
/// a tick of it, and a resubscribe is never clipped by the stale wheel
/// entry its predecessor left behind.
#[test]
fn deadline_expiry_and_resubscribe_safety_over_the_wire() {
    let broker_id = PeerId(2000);
    let broker_addr = scratch_addr("ttl");
    let mut config = BrokerConfig::new(broker_id, broker_addr.clone(), 5);
    config.tick = Duration::from_millis(20);
    config.journal = true;
    let mut broker = BrokerNode::serve(config).expect("broker binds");

    let subscriber = BrokerClient::connect(
        PeerConfig::new(PeerId(1), scratch_addr("ttl-sub"), 5),
        broker_id,
        &broker_addr,
    )
    .expect("subscriber connects");
    let publisher = BrokerClient::connect(
        PeerConfig::new(PeerId(2), scratch_addr("ttl-pub"), 5),
        broker_id,
        &broker_addr,
    )
    .expect("publisher connects");

    // Phase 1: subscribe with a TTL; a pre-deadline publish delivers.
    // The publish is gated on the broker having *applied* the
    // subscription — the two clients feed independent inbound queues,
    // so nothing else orders the frames.
    subscriber
        .subscribe(&["news"], Some(Duration::from_millis(400)))
        .expect("subscribe");
    let applied = Instant::now() + Duration::from_secs(10);
    while broker.live_count() == 0 {
        assert!(Instant::now() < applied, "subscription never applied");
        thread::sleep(Duration::from_millis(2));
    }
    publisher.publish(1, "news").expect("publish");
    let delivery = subscriber
        .recv_delivery(Duration::from_secs(5))
        .expect("pre-deadline publish delivers");
    assert_eq!(delivery.body.seq, 1);
    assert_eq!(delivery.body.publisher, 2);

    // Phase 2: let the deadline and at least two wheel ticks pass; the
    // wheel must have reaped the subscription without any frame
    // arriving to prod the service loop.
    let reaped = Instant::now() + Duration::from_secs(10);
    while broker.live_count() > 0 {
        assert!(Instant::now() < reaped, "wheel never reaped the TTL");
        thread::sleep(Duration::from_millis(10));
    }
    publisher
        .publish(2, "news")
        .expect("publish after deadline");
    assert!(
        subscriber
            .recv_delivery(Duration::from_millis(300))
            .is_none(),
        "post-deadline publish must not deliver"
    );
    assert!(
        broker
            .journal()
            .iter()
            .any(|op| matches!(op, BrokerOp::Expire { clients, .. } if clients == &vec![1])),
        "the eviction must be journaled: {:?}",
        broker.journal()
    );

    // Phase 3: a short TTL immediately replaced by an open-ended
    // subscription; once the *old* deadline has passed (stale wheel
    // entry popped), publishes must still deliver.
    subscriber
        .subscribe(&["news"], Some(Duration::from_millis(80)))
        .expect("short ttl");
    subscriber.subscribe(&["news"], None).expect("replacement");
    let replaced = Instant::now() + Duration::from_secs(10);
    loop {
        let state = broker.export_index();
        if state.subs.iter().any(|s| s.id == 1 && s.deadline.is_none()) {
            break;
        }
        assert!(Instant::now() < replaced, "replacement never applied");
        thread::sleep(Duration::from_millis(2));
    }
    thread::sleep(Duration::from_millis(200));
    publisher
        .publish(3, "news")
        .expect("publish after stale deadline");
    let delivery = subscriber
        .recv_delivery(Duration::from_secs(5))
        .expect("replacement subscription survives its predecessor's wheel entry");
    assert_eq!(delivery.body.seq, 3);
    assert_eq!(broker.live_count(), 1);

    broker.shutdown();
}

/// The live-index snapshot seam: state exported mid-serve round-trips
/// byte-exactly through the `bsub-core` codec and rebuilds an index
/// with identical matching behavior.
#[test]
fn live_index_state_snapshots_through_core_codec() {
    let broker_id = PeerId(3000);
    let broker_addr = scratch_addr("snap");
    let mut config = BrokerConfig::new(broker_id, broker_addr.clone(), 9);
    config.params = fp_params();
    let mut broker = BrokerNode::serve(config).expect("broker binds");

    let client = BrokerClient::connect(
        PeerConfig::new(PeerId(1), scratch_addr("snap-c"), 9),
        broker_id,
        &broker_addr,
    )
    .expect("client connects");
    client
        .subscribe(&["alpha", "beta"], Some(Duration::from_secs(300)))
        .expect("subscribe");
    let settled = Instant::now() + Duration::from_secs(10);
    while broker.live_count() == 0 {
        assert!(Instant::now() < settled, "subscription never applied");
        thread::sleep(Duration::from_millis(5));
    }

    let state = broker.export_index();
    let bytes =
        bsub_core::snapshot::encode_match_index(&bsub_match::MatchIndex::from_state(&state));
    let rebuilt = bsub_core::snapshot::decode_match_index(&bytes).expect("snapshot decodes");
    assert_eq!(rebuilt.export_state(), state, "state survives the codec");
    assert_eq!(
        bsub_core::snapshot::encode_match_index(&rebuilt),
        bytes,
        "re-encode is byte-identical"
    );
    let probe: Vec<Event> = ["alpha", "beta", "gamma"]
        .iter()
        .map(|k| Event::new(*k))
        .collect();
    assert_eq!(
        rebuilt.match_events(&probe).matches,
        bsub_match::MatchIndex::from_state(&state)
            .match_events(&probe)
            .matches,
    );
    assert_eq!(rebuilt.deadline(1).is_some(), true, "TTL survives");

    broker.shutdown();
}
