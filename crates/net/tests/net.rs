//! Integration tests for the networked runtime: dial-race
//! convergence, mid-exchange socket drops, and — the acceptance bar —
//! a multi-worker loopback cluster whose report equals the serial
//! simulator's for every protocol.

use bsub_baselines::{Pull, Push};
use bsub_core::{BsubConfig, BsubProtocol, DfMode};
use bsub_net::{
    peer_addr, render_prometheus, run_coordinator, run_coordinator_with, run_worker, scrape,
    ClusterSpec, ConnState, EndpointAddr, Frame, FrameKind, PeerConfig, PeerId, PeerManager,
    StatsHandle, StatsServer,
};
use bsub_obs::{Counter, TimeHist};
use bsub_sim::{Protocol, ProtocolFactory, SimConfig, SubscriptionTable};
use bsub_traces::synthetic::SyntheticTrace;
use bsub_traces::{NodeId, SimDuration};
use bsub_workload::{interests, keys, WorkloadBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bsub-net-it-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        thread::sleep(Duration::from_millis(5));
    }
}

/// Two peers dialing each other simultaneously must converge on
/// exactly one connection per side (the one dialed by the lower peer
/// id — DESIGN.md §12.2), with traffic flowing both ways afterwards.
#[test]
fn dial_accept_race_resolves_to_one_connection() {
    let dir = scratch_dir("race");
    let a_addr = peer_addr(&dir, PeerId(1));
    let b_addr = peer_addr(&dir, PeerId(2));
    let a = PeerManager::bind(PeerConfig::new(PeerId(1), a_addr.clone(), 42)).unwrap();
    let b = PeerManager::bind(PeerConfig::new(PeerId(2), b_addr.clone(), 42)).unwrap();

    // Dial in both directions at once, repeatedly hitting the race
    // window.
    let dial_a = {
        let a = Arc::clone(&a);
        let b_addr = b_addr.clone();
        thread::spawn(move || a.connect(PeerId(2), &b_addr))
    };
    let dial_b = {
        let b = Arc::clone(&b);
        let a_addr = a_addr.clone();
        thread::spawn(move || b.connect(PeerId(1), &a_addr))
    };
    dial_a.join().unwrap().unwrap();
    dial_b.join().unwrap().unwrap();

    wait_until("both sides established", || {
        a.state(PeerId(2)) == ConnState::Established && b.state(PeerId(1)) == ConnState::Established
    });
    assert_eq!(a.connection_count(), 1, "one connection on the dialer");
    assert_eq!(b.connection_count(), 1, "one connection on the acceptor");

    // Ping-pong with retries: a frame queued on the race loser before
    // displacement is legitimately lost (reset semantics), so resend
    // until the surviving socket carries it.
    let deadline = Instant::now() + Duration::from_secs(10);
    let pong = loop {
        assert!(Instant::now() < deadline, "race survivors never spoke");
        let _ = a.send(PeerId(2), Frame::new(FrameKind::Dispatch, vec![1]));
        if let Some((from, frame)) = b.recv_timeout(Duration::from_millis(300)) {
            assert_eq!((from, frame.kind), (PeerId(1), FrameKind::Dispatch));
            let _ = b.send(PeerId(1), Frame::new(FrameKind::PublishOk, vec![2]));
            if let Some(reply) = a.recv_timeout(Duration::from_millis(300)) {
                break reply;
            }
        }
    };
    assert_eq!((pong.0, pong.1.kind), (PeerId(2), FrameKind::PublishOk));
    assert_eq!(a.connection_count(), 1);
    assert_eq!(b.connection_count(), 1);
}

/// A socket dying mid-exchange must leave both sides recoverable: the
/// survivor observes the reset and retires the connection, a
/// reconnect succeeds, and protocol state shipped over the new
/// connection is byte-identical — no counter corruption from the
/// partial exchange.
#[test]
fn mid_exchange_drop_recovers_without_state_corruption() {
    let dir = scratch_dir("drop");
    let a_addr = peer_addr(&dir, PeerId(1));
    let b_addr = peer_addr(&dir, PeerId(2));
    let a = PeerManager::bind(PeerConfig::new(PeerId(1), a_addr.clone(), 7)).unwrap();
    let b = PeerManager::bind(PeerConfig::new(PeerId(2), b_addr.clone(), 7)).unwrap();
    a.connect(PeerId(2), &b_addr).unwrap();
    a.send(PeerId(2), Frame::new(FrameKind::Dispatch, vec![0]))
        .unwrap();
    b.recv_timeout(Duration::from_secs(5))
        .expect("pre-drop frame");

    // Populate a real B-SUB instance with TCBF counters by running a
    // short serial simulation, then snapshot one node.
    let (spec, _nodes) = small_world(3);
    let factory = bsub_factory(&spec);
    let (_report, protocol) = spec.simulation().run_factory(factory.as_ref(), spec.seed);
    let snapshot = protocol
        .export_node(NodeId::new(0))
        .expect("bsub exports node state");

    // Kill the remote abruptly — mid-exchange from A's perspective.
    b.shutdown();
    drop(b);
    wait_until("survivor retires the dropped connection", || {
        a.state(PeerId(2)) == ConnState::Closed && a.connection_count() == 0
    });

    // The peer comes back under the same identity; reconnect and ship
    // the snapshot over the fresh connection.
    let b2 = PeerManager::bind(PeerConfig::new(PeerId(2), b_addr.clone(), 7)).unwrap();
    a.connect(PeerId(2), &b_addr).unwrap();
    a.send(
        PeerId(2),
        Frame::new(FrameKind::StateGrant, snapshot.clone()),
    )
    .unwrap();
    let (_, frame) = b2
        .recv_timeout(Duration::from_secs(5))
        .expect("snapshot arrives");
    assert_eq!(
        frame.body, snapshot,
        "transport did not corrupt the snapshot"
    );

    // Import into a fresh instance and re-export: byte-identical, the
    // snapshot exactness contract across the network path.
    let mut fresh = factory.build(spec.seed);
    assert!(fresh.import_node(NodeId::new(0), &frame.body));
    assert_eq!(
        fresh.export_node(NodeId::new(0)).expect("re-export"),
        snapshot,
        "imported state re-exports byte-identically (no counter corruption)"
    );
}

// ---- cluster vs. serial simulator -------------------------------------

/// A small deterministic world shared by the cluster tests — built
/// exactly like `Experiment::over` in `bsub-bench`.
fn small_world(workers: u32) -> (ClusterSpec, u32) {
    let seed = 11u64;
    let trace = SyntheticTrace::new("netit", 10, SimDuration::from_hours(1), 150)
        .seed(seed)
        .build();
    let nodes = trace.node_count();
    let subscriptions: SubscriptionTable =
        interests::assign_interests(nodes, keys::trend_keys(), seed ^ 0x1111);
    let schedule = WorkloadBuilder::new(&trace).seed(seed ^ 0x2222).build();
    let config = SimConfig {
        ttl: SimDuration::from_mins(30),
        ..SimConfig::default()
    };
    (
        ClusterSpec::new(trace, subscriptions, schedule, config, seed, workers),
        nodes,
    )
}

fn bsub_factory(spec: &ClusterSpec) -> Box<dyn ProtocolFactory> {
    let config = BsubConfig::builder()
        .df(DfMode::Fixed(2.0))
        .delay_limit(spec.config.ttl)
        .build();
    let subscriptions = Arc::clone(&spec.subscriptions);
    Box::new(move |_seed: u64| {
        Box::new(BsubProtocol::new(config.clone(), &subscriptions)) as Box<dyn Protocol>
    })
}

fn push_factory(nodes: u32) -> Box<dyn ProtocolFactory> {
    Box::new(move |_seed: u64| Box::new(Push::new(nodes)) as Box<dyn Protocol>)
}

fn pull_factory(nodes: u32) -> Box<dyn ProtocolFactory> {
    Box::new(move |_seed: u64| Box::new(Pull::new(nodes)) as Box<dyn Protocol>)
}

fn assert_cluster_matches_serial(tag: &str, factory: &dyn ProtocolFactory, workers: u32) {
    let (spec, _nodes) = small_world(workers);
    let serial = spec.simulation().run_factory(factory, spec.seed).0;

    let dir = scratch_dir(tag);
    let workers_handles: Vec<_> = (1..=workers)
        .map(|w| {
            let spec = spec.clone();
            let dir = dir.clone();
            // Each worker thread builds its own factory-equivalent
            // closure by sharing the one under test via scoped spawn.
            thread::Builder::new()
                .name(format!("net-it-worker-{w}"))
                .spawn({
                    let spec = spec.clone();
                    let dir = dir.clone();
                    let factory = clone_factory_handle(&spec, tag);
                    move || run_worker(&spec, factory.as_ref(), &dir, w)
                })
                .expect("spawn worker")
        })
        .collect();
    let outcome = finish_cluster(run_coordinator(&spec, factory, &dir), workers_handles);
    assert_eq!(
        outcome.report, serial,
        "cluster report equals the serial simulator ({tag})"
    );
    assert_eq!(outcome.exchange_ns.len(), spec.trace.len());
}

/// Joins the worker threads and unwraps the coordinator outcome. On
/// a coordinator failure the workers' own results are part of the
/// panic message — a stalled coordinator usually means a worker died
/// first, and its error is the one that explains the run.
fn finish_cluster(
    outcome: std::io::Result<bsub_net::ClusterOutcome>,
    handles: Vec<thread::JoinHandle<std::io::Result<()>>>,
) -> bsub_net::ClusterOutcome {
    let worker_results: Vec<std::io::Result<()>> = handles
        .into_iter()
        .map(|h| {
            h.join()
                .unwrap_or_else(|_| Err(std::io::Error::other("worker thread panicked")))
        })
        .collect();
    match outcome {
        Ok(outcome) => {
            for (i, result) in worker_results.into_iter().enumerate() {
                result.unwrap_or_else(|e| panic!("worker {} failed: {e}", i + 1));
            }
            outcome
        }
        Err(err) => panic!("coordinator failed: {err}; worker results: {worker_results:?}"),
    }
}

/// Rebuilds the factory for a worker thread from the spec alone —
/// what a worker process does from CLI args in `net-cluster`.
fn clone_factory_handle(spec: &ClusterSpec, tag: &str) -> Box<dyn ProtocolFactory> {
    let nodes = spec.trace.node_count();
    if tag.contains("push") {
        push_factory(nodes)
    } else if tag.contains("pull") {
        pull_factory(nodes)
    } else {
        bsub_factory(spec)
    }
}

#[test]
fn cluster_matches_serial_simulator_push() {
    let (spec, nodes) = small_world(2);
    let factory = push_factory(nodes);
    drop(spec);
    assert_cluster_matches_serial("push", factory.as_ref(), 2);
}

#[test]
fn cluster_matches_serial_simulator_bsub() {
    let (spec, _nodes) = small_world(2);
    let factory = bsub_factory(&spec);
    assert_cluster_matches_serial("bsub", factory.as_ref(), 2);
}

#[test]
fn cluster_matches_serial_simulator_pull() {
    let (spec, nodes) = small_world(2);
    let factory = pull_factory(nodes);
    drop(spec);
    assert_cluster_matches_serial("pull", factory.as_ref(), 2);
}

#[test]
fn cluster_matches_serial_with_three_workers() {
    let (spec, _nodes) = small_world(3);
    let factory = bsub_factory(&spec);
    assert_cluster_matches_serial("bsub-w3", factory.as_ref(), 3);
}

/// The live observability plane end to end: with a stats cadence on,
/// the cluster's protocol report still equals the serial simulator's
/// (the plane observes, never perturbs), the merged live report covers
/// every contact, and a scrape of the running [`StatsServer`] returns
/// exactly the merged report in both exposition formats.
#[test]
fn cluster_stats_plane_merges_and_serves_without_perturbing() {
    let workers = 2u32;
    let (spec, _nodes) = small_world(workers);
    let spec = spec.with_stats_cadence(Duration::from_millis(50));
    let factory = bsub_factory(&spec);
    let serial = spec.simulation().run_factory(factory.as_ref(), spec.seed).0;

    let dir = scratch_dir("stats");
    let worker_handles: Vec<_> = (1..=workers)
        .map(|w| {
            let spec = spec.clone();
            let dir = dir.clone();
            let factory = bsub_factory(&spec);
            thread::Builder::new()
                .name(format!("net-it-stats-worker-{w}"))
                .spawn(move || run_worker(&spec, factory.as_ref(), &dir, w))
                .expect("spawn worker")
        })
        .collect();

    // Serve the handle the coordinator merges into — the endpoint is
    // scrapeable while the run is live.
    let stats = StatsHandle::new();
    let server = StatsServer::serve(
        &EndpointAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        stats.clone(),
    )
    .expect("stats server binds");

    let outcome = finish_cluster(
        run_coordinator_with(&spec, factory.as_ref(), &dir, Some(stats.clone())),
        worker_handles,
    );

    assert_eq!(
        outcome.report, serial,
        "observability plane does not perturb the protocol report"
    );
    let merged = outcome.cluster_metrics.expect("plane was on");
    assert!(!merged.is_empty(), "merged live report is non-empty");
    assert_eq!(
        merged.time_hist(TimeHist::NetExchangeNs).count(),
        spec.trace.len() as u64,
        "one exchange-latency sample per contact"
    );
    assert!(merged.counter(Counter::NetFramesSent) > 0);
    assert!(merged.counter(Counter::NetStatsFrames) > 0, "deltas merged");

    // The endpoint serves exactly the merged slot, live.
    let text = scrape(server.local_addr(), "/metrics").expect("text scrape");
    assert_eq!(text, render_prometheus(&stats.snapshot()));
    let json = scrape(server.local_addr(), "/metrics.json").expect("json scrape");
    assert_eq!(json, stats.snapshot().to_json());
    assert_eq!(
        stats.snapshot(),
        merged,
        "endpoint slot equals the outcome's merged report"
    );
}
