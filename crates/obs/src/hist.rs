//! Log₂-bucketed histogram with exact count/sum/min/max.

/// Number of buckets: one per possible bit length of a `u64` value,
/// plus one for zero (bucket 0 holds only the value 0).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
///
/// Bucket `i > 0` covers values in `[2^(i-1), 2^i)`; bucket 0 holds
/// zeros. Quantiles are answered from bucket boundaries, so a reported
/// p99 is an upper bound within a factor of two of the true value —
/// plenty for spotting order-of-magnitude regressions while staying
/// allocation-free. Exact `count`, `sum`, `min`, and `max` are kept
/// alongside the buckets.
///
/// All arithmetic saturates: a histogram fed `u64::MAX` samples
/// forever pegs at the ceiling instead of wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket covering `value`.
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`0` for the zero bucket).
    fn bucket_ceiling(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; zero when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; zero when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the ceiling
    /// of the first bucket whose cumulative count reaches `q · count`,
    /// clamped to the exact observed `max`. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= target {
                return Self::bucket_ceiling(i).min(self.max);
            }
        }
        self.max
    }

    /// Whether no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges `other` into `self`. Commutative and associative, so
    /// per-run histograms can be combined in any order with the same
    /// result — the property the worker-count-invariance test leans on.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Appends this histogram's wire encoding to `out`: `count`,
    /// `sum`, `min`, `max` as u64 LE, then a sparse bucket list — a
    /// `u8` entry count followed by (`u8` bucket index, u64 LE bucket
    /// count) pairs in strictly ascending index order, zero buckets
    /// omitted. Part of the `ProfReport` wire layout (DESIGN.md §15).
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        let nonzero = self.buckets.iter().filter(|&&b| b != 0).count();
        out.push(nonzero as u8);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b != 0 {
                out.push(i as u8);
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
    }

    /// Decodes one histogram record from the front of `input`,
    /// advancing it past the consumed bytes. `None` on truncation, an
    /// out-of-range or non-ascending bucket index, an explicit zero
    /// bucket (the encoder never emits one), or an empty histogram
    /// whose scalars disagree with [`Histogram::new`].
    pub(crate) fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let count = take_u64(input)?;
        let sum = take_u64(input)?;
        let min = take_u64(input)?;
        let max = take_u64(input)?;
        let entries = take_u8(input)? as usize;
        if entries > BUCKETS {
            return None;
        }
        let mut buckets = [0u64; BUCKETS];
        let mut last: Option<usize> = None;
        for _ in 0..entries {
            let index = take_u8(input)? as usize;
            if index >= BUCKETS || last.is_some_and(|l| index <= l) {
                return None;
            }
            let value = take_u64(input)?;
            if value == 0 {
                return None;
            }
            buckets[index] = value;
            last = Some(index);
        }
        if count == 0 && (sum != 0 || min != u64::MAX || max != 0 || entries != 0) {
            return None;
        }
        Some(Self {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

/// Splits one byte off the front of `input`.
pub(crate) fn take_u8(input: &mut &[u8]) -> Option<u8> {
    let (&first, rest) = input.split_first()?;
    *input = rest;
    Some(first)
}

/// Splits a little-endian u16 off the front of `input`.
pub(crate) fn take_u16(input: &mut &[u8]) -> Option<u16> {
    if input.len() < 2 {
        return None;
    }
    let (head, rest) = input.split_at(2);
    *input = rest;
    Some(u16::from_le_bytes(head.try_into().expect("2 bytes")))
}

/// Splits a little-endian u64 off the front of `input`.
pub(crate) fn take_u64(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn records_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [3, 1000, 7, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True p50 is 50; the covering bucket [32,64) reports 63.
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 100);
        let p99 = h.quantile(0.99);
        assert!((99..=100).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 300, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let mut bytes = Vec::new();
        h.encode_into(&mut bytes);
        let mut input = bytes.as_slice();
        let back = Histogram::decode_from(&mut input).expect("decodes");
        assert!(input.is_empty(), "decoder consumes the whole record");
        assert_eq!(back, h);

        let empty = Histogram::new();
        let mut bytes = Vec::new();
        empty.encode_into(&mut bytes);
        assert_eq!(bytes.len(), 33, "4 scalars + entry count, no entries");
        let mut input = bytes.as_slice();
        assert_eq!(Histogram::decode_from(&mut input), Some(empty));
    }

    #[test]
    fn wire_decode_rejects_malformed_records() {
        let mut h = Histogram::new();
        h.record(9);
        let mut bytes = Vec::new();
        h.encode_into(&mut bytes);
        // Truncation anywhere in the record.
        for cut in 0..bytes.len() {
            let mut input = &bytes[..cut];
            assert!(Histogram::decode_from(&mut input).is_none(), "cut {cut}");
        }
        // A bucket index past the table.
        let mut bad = bytes.clone();
        bad[33] = BUCKETS as u8;
        assert!(Histogram::decode_from(&mut bad.as_slice()).is_none());
        // An empty histogram whose scalars claim samples.
        let mut lying = Vec::new();
        Histogram::new().encode_into(&mut lying);
        lying[8] = 1; // sum = 1 with count = 0
        assert!(Histogram::decode_from(&mut lying.as_slice()).is_none());
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 5, 9, 1 << 40] {
            a.record(v);
        }
        for v in [0, 2, 1 << 20] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.min(), 0);
        assert_eq!(ab.max(), 1 << 40);
    }
}
