//! Tiny hand-rolled JSON emission helpers.
//!
//! The workspace is dependency-free, so every crate that emits JSON
//! (event logs, perf trajectories, metrics reports) needs the same two
//! primitives: string escaping and locale-independent float
//! formatting. They live here, at the bottom of the crate graph, so
//! the logic exists exactly once.

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞; those become
/// `null`). Uses Rust's shortest round-trip float formatting, which is
/// deterministic across platforms; integral values keep a `.0` suffix
/// so they always read back as floats.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = v.to_string();
        if !s.contains('.') && !s.contains('e') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn formats_floats() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
