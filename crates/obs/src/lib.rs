//! In-process metrics and profiling for the B-SUB workspace.
//!
//! The ROADMAP's north star is a system that runs "as fast as the
//! hardware allows"; this crate is how the workspace *sees* where
//! time, bytes, and memory go. It sits at the bottom of the crate
//! graph (no dependencies, nothing below it) so every other crate can
//! instrument its hot paths without API threading.
//!
//! # Design
//!
//! The same zero-cost-when-inactive contract as `bsub_sim`'s
//! `NullRecorder` applies, enforced one layer lower: every
//! instrumentation call first reads a thread-local `Cell<bool>` and
//! returns immediately when no profiler is installed. Timing spans do
//! not even take a clock reading on the inactive path. Because
//! profiling only *observes* (it never feeds back into simulation
//! state), enabling it cannot perturb results — the determinism test
//! in `bsub-bench` proves figure CSVs and event streams are
//! byte-identical with profiling on and off.
//!
//! Metric identity is a closed enum taxonomy ([`Counter`], [`Gauge`],
//! [`TimeHist`], [`SizeHist`]) indexing fixed arrays, so the active
//! path is allocation-free: recording a value is an array index and a
//! saturating add. Histograms are log₂-bucketed (64 buckets cover the
//! full `u64` range) with exact count/sum/min/max, good enough for
//! p50/p90/p99/max summaries without storing samples.
//!
//! Each simulation run executes entirely on one worker thread (the
//! `bsub_bench::engine` contract), so the profiler is thread-local:
//! [`start`] installs a fresh one, [`finish`] collects it as a
//! [`ProfReport`]. Reports merge commutatively (counter sums, gauge
//! high-water maxima, bucket-wise histogram sums), which is what makes
//! the aggregated [`MetricsReport`] invariant under worker count and
//! scheduling order — wall-clock *timing* histograms are the one
//! exception, and are excluded from invariance claims.
//!
//! For components whose work crosses threads or processes — the
//! `bsub-net` runtime's socket threads, a cluster shipping per-worker
//! reports to its coordinator — a report can also be mutated directly
//! ([`ProfReport::add_counter`] and friends) and moved over a wire
//! with the versioned binary codec ([`ProfReport::encode`] /
//! [`ProfReport::decode`]). Merge commutativity is what makes the
//! cluster-wide live report independent of frame arrival order.
//!
//! # Example
//!
//! ```
//! use bsub_obs::{self as obs, Counter, TimeHist};
//!
//! obs::start();
//! obs::count(Counter::TcbfInsert, 1);
//! {
//!     let _span = obs::span(TimeHist::MergeNs); // timed while in scope
//! }
//! let report = obs::finish();
//! assert_eq!(report.counter(Counter::TcbfInsert), 1);
//! assert_eq!(report.time_hist(TimeHist::MergeNs).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod hist;
pub mod json;
mod profiler;
mod report;

pub use crate::hist::Histogram;
pub use crate::profiler::{
    absorb, count, finish, gauge_add, gauge_set, gauge_sub, is_active, observe, observe_ns, span,
    start, Counter, Gauge, SizeHist, Span, TimeHist, OCCUPANCY_SAMPLE_PERIOD,
};
pub use crate::report::{calibrate_ns, MetricsReport, ProfReport};
