//! Thread-local profiler and the workspace metric taxonomy.
//!
//! Metric identity is a closed set of enums so the active recording
//! path is an array index — no hashing, no allocation, no locks. The
//! taxonomy is defined here, at the bottom of the crate graph, because
//! it spans crates: `bsub-bloom` records TCBF and wire-codec metrics,
//! `bsub-core` records election and matching, `bsub-sim` records the
//! contact loop, link budgets, and fault draws, and the baselines
//! record buffer occupancy.

use crate::hist::Histogram;
use crate::report::ProfReport;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Monotonic event counters, recorded with [`count`].
///
/// All byte counters count *payload-level* bytes as the cost model of
/// the paper does; `WireBytes` counts actual encoded control-filter
/// bytes produced by `bsub_bloom::wire::encode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// TCBF key insertions.
    TcbfInsert,
    /// Additive (reinforcement) merges.
    TcbfAMerge,
    /// Maximum merges (broker ↔ broker).
    TcbfMMerge,
    /// Decay applications with a non-zero amount.
    TcbfDecay,
    /// Existential / minimum-counter queries.
    TcbfQuery,
    /// Preferential queries (Section IV-A).
    TcbfPreference,
    /// Successful wire encodings of a control filter.
    WireEncode,
    /// Successful wire decodings.
    WireDecodeOk,
    /// Wire decodings rejected (truncation or CRC mismatch).
    WireDecodeReject,
    /// Broker elections resolving to a promotion.
    ElectionPromote,
    /// Broker elections resolving to a demotion.
    ElectionDemote,
    /// Message-to-interest matching checks.
    MatchChecked,
    /// Matching checks that hit (message delivered or forwarded).
    MatchHit,
    /// Contacts processed by the runner loop.
    Contacts,
    /// Contacts dropped entirely by fault injection.
    FaultContactLost,
    /// Contacts with a fault-truncated link budget.
    FaultTruncated,
    /// Corruption randomness draws taken from a fault stream.
    FaultCorruptionDraw,
    /// Node state resets due to churn rejoin.
    NodeReset,
    /// Transfers refused because the link budget was exhausted.
    LinkExhausted,
    /// Control-plane bytes sent (filters, requests, identities).
    ControlBytes,
    /// Data-plane bytes sent (message payloads).
    DataBytes,
    /// Encoded control-filter bytes produced by the wire codec.
    WireBytes,
    /// Network frames written to a socket (`bsub-net`).
    NetFramesSent,
    /// Network frames read and accepted from a socket (`bsub-net`).
    NetFramesRecv,
    /// Bytes written to sockets, headers included (`bsub-net`).
    NetBytesSent,
    /// Bytes read from sockets, headers included (`bsub-net`).
    NetBytesRecv,
    /// Dial attempts that were retried after a connect failure or
    /// handshake timeout (`bsub-net`).
    NetRetries,
    /// Connections closed as the losing side of a simultaneous-dial
    /// race (`bsub-net`).
    NetRaceLost,
    /// Subscriptions added to a `bsub-match` index.
    MatchSubscribe,
    /// Subscriptions removed from a `bsub-match` index.
    MatchUnsubscribe,
    /// Subscriptions expired out of a `bsub-match` index (deadline
    /// passed or filter fully decayed).
    MatchExpire,
    /// Tier rebuilds triggered by tombstone accumulation
    /// (`bsub-match` compaction).
    MatchCompact,
    /// Events processed through the batched `match_events` path.
    MatchEvents,
    /// Tier-aggregate probes taken while pruning a batch.
    MatchTierProbes,
    /// Exact per-subscriber confirmations attempted after tier
    /// pruning (the candidates the hierarchy could not rule out).
    MatchCandidates,
    /// Confirmed (subscriber, event) matches produced by the index.
    MatchMatched,
    /// Poll/wait intervals that elapsed without observable progress in
    /// `bsub-net`'s connection-assembly waits — the starvation
    /// visibility counter for single-CPU schedulers.
    NetPollStarved,
    /// Outbound sends that found a connection's bounded queue full and
    /// had to block (`bsub-net` backpressure stalls).
    NetSendStalls,
    /// `STATS` frames merged into a live cluster-wide report
    /// (`bsub-net` coordinator side).
    NetStatsFrames,
    /// `SUBSCRIBE` frames applied to a live broker's match index
    /// (`bsub-net` broker service loop).
    BrokerSubscribes,
    /// `UNSUBSCRIBE` frames applied to a live broker's match index.
    BrokerUnsubscribes,
    /// `PUBLISH` frames matched through a live broker's index.
    BrokerPublishes,
    /// `DELIVER` frames a live broker enqueued toward subscribers
    /// (one per confirmed or false-positive match).
    BrokerDeliveries,
    /// Subscriptions a live broker evicted because their real-clock
    /// deadline passed (clock-wheel expiry).
    BrokerExpired,
    /// Service-loop batches a live broker drained from its inbound
    /// queues (each batch is one drain + match + deliver cycle).
    BrokerBatches,
}

impl Counter {
    /// Every counter, in stable report order.
    pub const ALL: [Counter; 45] = [
        Counter::TcbfInsert,
        Counter::TcbfAMerge,
        Counter::TcbfMMerge,
        Counter::TcbfDecay,
        Counter::TcbfQuery,
        Counter::TcbfPreference,
        Counter::WireEncode,
        Counter::WireDecodeOk,
        Counter::WireDecodeReject,
        Counter::ElectionPromote,
        Counter::ElectionDemote,
        Counter::MatchChecked,
        Counter::MatchHit,
        Counter::Contacts,
        Counter::FaultContactLost,
        Counter::FaultTruncated,
        Counter::FaultCorruptionDraw,
        Counter::NodeReset,
        Counter::LinkExhausted,
        Counter::ControlBytes,
        Counter::DataBytes,
        Counter::WireBytes,
        Counter::NetFramesSent,
        Counter::NetFramesRecv,
        Counter::NetBytesSent,
        Counter::NetBytesRecv,
        Counter::NetRetries,
        Counter::NetRaceLost,
        Counter::MatchSubscribe,
        Counter::MatchUnsubscribe,
        Counter::MatchExpire,
        Counter::MatchCompact,
        Counter::MatchEvents,
        Counter::MatchTierProbes,
        Counter::MatchCandidates,
        Counter::MatchMatched,
        Counter::NetPollStarved,
        Counter::NetSendStalls,
        Counter::NetStatsFrames,
        Counter::BrokerSubscribes,
        Counter::BrokerUnsubscribes,
        Counter::BrokerPublishes,
        Counter::BrokerDeliveries,
        Counter::BrokerExpired,
        Counter::BrokerBatches,
    ];

    /// Stable snake-case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::TcbfInsert => "tcbf_insert",
            Counter::TcbfAMerge => "tcbf_a_merge",
            Counter::TcbfMMerge => "tcbf_m_merge",
            Counter::TcbfDecay => "tcbf_decay",
            Counter::TcbfQuery => "tcbf_query",
            Counter::TcbfPreference => "tcbf_preference",
            Counter::WireEncode => "wire_encode",
            Counter::WireDecodeOk => "wire_decode_ok",
            Counter::WireDecodeReject => "wire_decode_reject",
            Counter::ElectionPromote => "election_promote",
            Counter::ElectionDemote => "election_demote",
            Counter::MatchChecked => "match_checked",
            Counter::MatchHit => "match_hit",
            Counter::Contacts => "contacts",
            Counter::FaultContactLost => "fault_contact_lost",
            Counter::FaultTruncated => "fault_truncated",
            Counter::FaultCorruptionDraw => "fault_corruption_draw",
            Counter::NodeReset => "node_reset",
            Counter::LinkExhausted => "link_exhausted",
            Counter::ControlBytes => "control_bytes",
            Counter::DataBytes => "data_bytes",
            Counter::WireBytes => "wire_bytes",
            Counter::NetFramesSent => "net_frames_sent",
            Counter::NetFramesRecv => "net_frames_recv",
            Counter::NetBytesSent => "net_bytes_sent",
            Counter::NetBytesRecv => "net_bytes_recv",
            Counter::NetRetries => "net_retries",
            Counter::NetRaceLost => "net_race_lost",
            Counter::MatchSubscribe => "match_subscribe",
            Counter::MatchUnsubscribe => "match_unsubscribe",
            Counter::MatchExpire => "match_expire",
            Counter::MatchCompact => "match_compact",
            Counter::MatchEvents => "match_events",
            Counter::MatchTierProbes => "match_tier_probes",
            Counter::MatchCandidates => "match_candidates",
            Counter::MatchMatched => "match_matched",
            Counter::NetPollStarved => "net_poll_starved",
            Counter::NetSendStalls => "net_send_stalls",
            Counter::NetStatsFrames => "net_stats_frames",
            Counter::BrokerSubscribes => "broker_subscribes",
            Counter::BrokerUnsubscribes => "broker_unsubscribes",
            Counter::BrokerPublishes => "broker_publishes",
            Counter::BrokerDeliveries => "broker_deliveries",
            Counter::BrokerExpired => "broker_expired",
            Counter::BrokerBatches => "broker_batches",
        }
    }
}

/// Level gauges with high-water tracking, driven by [`gauge_add`] /
/// [`gauge_sub`] (incremental) or [`gauge_set`] (absolute).
///
/// A report keeps only the high-water mark — the peak is what memory
/// sizing cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Messages resident in protocol buffers, across all nodes.
    BufferMsgs,
    /// Payload bytes resident in protocol buffers, across all nodes.
    /// The workspace's memory-high-water proxy: message payloads
    /// dominate the simulator's per-node state.
    BufferBytes,
}

/// How often protocols walk their buffers to refresh the occupancy
/// gauges: on the first contact and every `OCCUPANCY_SAMPLE_PERIOD`-th
/// after. The walk is O(nodes × buffered messages), so doing it on
/// *every* contact turns a profiled full-trace PUSH run from seconds
/// into minutes; sampling keeps the high-water mark representative at
/// a bounded cost. Deterministic: driven by the contact count, never
/// by time.
pub const OCCUPANCY_SAMPLE_PERIOD: u64 = 64;

impl Gauge {
    /// Every gauge, in stable report order.
    pub const ALL: [Gauge; 2] = [Gauge::BufferMsgs, Gauge::BufferBytes];

    /// Stable snake-case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::BufferMsgs => "buffer_msgs_hwm",
            Gauge::BufferBytes => "buffer_bytes_hwm",
        }
    }
}

/// Wall-clock timing histograms (nanoseconds), recorded with [`span`].
///
/// Timing is machine- and scheduling-dependent, so these are *excluded*
/// from worker-count-invariance guarantees; everything else in a
/// report is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TimeHist {
    /// One TCBF merge (A- or M-).
    MergeNs,
    /// One TCBF decay application.
    DecayNs,
    /// One preferential query.
    PreferenceNs,
    /// One wire encode.
    EncodeNs,
    /// One wire decode (accepted or rejected).
    DecodeNs,
    /// One full protocol contact handler.
    ContactNs,
    /// One networked contact exchange, dispatch to result, as seen by
    /// the cluster coordinator (`bsub-net`).
    NetExchangeNs,
    /// One batched `match_events` call on a `bsub-match` index.
    MatchBatchNs,
    /// Socket-write latency of one `HELLO` frame (`bsub-net`). The
    /// per-frame-kind families below measure the writer thread's
    /// wall clock from dequeuing a frame to the flushed socket write,
    /// so OS-buffer backpressure shows up per kind.
    NetFrameHelloNs,
    /// Socket-write latency of one `DISPATCH` frame.
    NetFrameDispatchNs,
    /// Socket-write latency of one `STATE_REQ` frame.
    NetFrameStateReqNs,
    /// Socket-write latency of one `STATE_GRANT` frame.
    NetFrameStateGrantNs,
    /// Socket-write latency of one `STATE_RET` frame.
    NetFrameStateRetNs,
    /// Socket-write latency of one `RESULT` frame.
    NetFrameExchangeResultNs,
    /// Socket-write latency of one `NODE_FREE` frame.
    NetFrameNodeFreeNs,
    /// Socket-write latency of one `ADVANCE` frame.
    NetFrameAdvanceNs,
    /// Socket-write latency of one `PUBLISH_OK` frame.
    NetFramePublishOkNs,
    /// Socket-write latency of one `DONE` frame.
    NetFrameDoneNs,
    /// Socket-write latency of one `STATS` frame.
    NetFrameStatsNs,
    /// Socket-write latency of one `SUBSCRIBE` frame.
    NetFrameSubscribeNs,
    /// Socket-write latency of one `UNSUBSCRIBE` frame.
    NetFrameUnsubscribeNs,
    /// Socket-write latency of one `PUBLISH` frame.
    NetFramePublishNs,
    /// Socket-write latency of one `DELIVER` frame.
    NetFrameDeliverNs,
    /// One broker service-loop batch: drain the inbound queues, expire
    /// due deadlines, apply subscribe/unsubscribe, match the publish
    /// run, enqueue deliveries (`bsub-net` broker).
    BrokerBatchNs,
    /// One epoch's A-merge derivation phase in the sharded scale
    /// engine (phase A, per shard).
    ScaleDeriveNs,
    /// One epoch's cross-shard merge phase (phase B, per shard).
    ScaleMergeNs,
    /// One epoch's query phase (phase C, per shard).
    ScaleQueryNs,
    /// One epoch's decay phase (phase D, per shard).
    ScaleDecayNs,
}

impl TimeHist {
    /// Every timing histogram, in stable report order.
    pub const ALL: [TimeHist; 28] = [
        TimeHist::MergeNs,
        TimeHist::DecayNs,
        TimeHist::PreferenceNs,
        TimeHist::EncodeNs,
        TimeHist::DecodeNs,
        TimeHist::ContactNs,
        TimeHist::NetExchangeNs,
        TimeHist::MatchBatchNs,
        TimeHist::NetFrameHelloNs,
        TimeHist::NetFrameDispatchNs,
        TimeHist::NetFrameStateReqNs,
        TimeHist::NetFrameStateGrantNs,
        TimeHist::NetFrameStateRetNs,
        TimeHist::NetFrameExchangeResultNs,
        TimeHist::NetFrameNodeFreeNs,
        TimeHist::NetFrameAdvanceNs,
        TimeHist::NetFramePublishOkNs,
        TimeHist::NetFrameDoneNs,
        TimeHist::NetFrameStatsNs,
        TimeHist::NetFrameSubscribeNs,
        TimeHist::NetFrameUnsubscribeNs,
        TimeHist::NetFramePublishNs,
        TimeHist::NetFrameDeliverNs,
        TimeHist::BrokerBatchNs,
        TimeHist::ScaleDeriveNs,
        TimeHist::ScaleMergeNs,
        TimeHist::ScaleQueryNs,
        TimeHist::ScaleDecayNs,
    ];

    /// Stable snake-case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TimeHist::MergeNs => "tcbf_merge_ns",
            TimeHist::DecayNs => "tcbf_decay_ns",
            TimeHist::PreferenceNs => "tcbf_preference_ns",
            TimeHist::EncodeNs => "wire_encode_ns",
            TimeHist::DecodeNs => "wire_decode_ns",
            TimeHist::ContactNs => "contact_ns",
            TimeHist::NetExchangeNs => "net_exchange_ns",
            TimeHist::MatchBatchNs => "match_batch_ns",
            TimeHist::NetFrameHelloNs => "net_frame_hello_ns",
            TimeHist::NetFrameDispatchNs => "net_frame_dispatch_ns",
            TimeHist::NetFrameStateReqNs => "net_frame_state_req_ns",
            TimeHist::NetFrameStateGrantNs => "net_frame_state_grant_ns",
            TimeHist::NetFrameStateRetNs => "net_frame_state_ret_ns",
            TimeHist::NetFrameExchangeResultNs => "net_frame_exchange_result_ns",
            TimeHist::NetFrameNodeFreeNs => "net_frame_node_free_ns",
            TimeHist::NetFrameAdvanceNs => "net_frame_advance_ns",
            TimeHist::NetFramePublishOkNs => "net_frame_publish_ok_ns",
            TimeHist::NetFrameDoneNs => "net_frame_done_ns",
            TimeHist::NetFrameStatsNs => "net_frame_stats_ns",
            TimeHist::NetFrameSubscribeNs => "net_frame_subscribe_ns",
            TimeHist::NetFrameUnsubscribeNs => "net_frame_unsubscribe_ns",
            TimeHist::NetFramePublishNs => "net_frame_publish_ns",
            TimeHist::NetFrameDeliverNs => "net_frame_deliver_ns",
            TimeHist::BrokerBatchNs => "broker_batch_ns",
            TimeHist::ScaleDeriveNs => "scale_derive_ns",
            TimeHist::ScaleMergeNs => "scale_merge_ns",
            TimeHist::ScaleQueryNs => "scale_query_ns",
            TimeHist::ScaleDecayNs => "scale_decay_ns",
        }
    }
}

/// Size histograms (bytes), recorded with [`observe`]. Deterministic,
/// unlike [`TimeHist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SizeHist {
    /// Encoded size of each control filter put on the wire.
    EncodedFilterBytes,
    /// Total bytes (control + data) moved per contact.
    ContactBytes,
    /// Events per batched `match_events` call (`bsub-match`).
    MatchBatchEvents,
    /// Exact confirmations attempted per batched `match_events` call
    /// (`bsub-match`) — how much work tier pruning let through.
    MatchBatchCandidates,
    /// Encoded size (header + body) of each `HELLO` frame written to a
    /// socket (`bsub-net`). The per-frame-kind families are recorded
    /// on the send side only, so a cluster-wide merge counts each
    /// frame exactly once.
    NetFrameHelloBytes,
    /// Encoded size of each `DISPATCH` frame written.
    NetFrameDispatchBytes,
    /// Encoded size of each `STATE_REQ` frame written.
    NetFrameStateReqBytes,
    /// Encoded size of each `STATE_GRANT` frame written.
    NetFrameStateGrantBytes,
    /// Encoded size of each `STATE_RET` frame written.
    NetFrameStateRetBytes,
    /// Encoded size of each `RESULT` frame written.
    NetFrameExchangeResultBytes,
    /// Encoded size of each `NODE_FREE` frame written.
    NetFrameNodeFreeBytes,
    /// Encoded size of each `ADVANCE` frame written.
    NetFrameAdvanceBytes,
    /// Encoded size of each `PUBLISH_OK` frame written.
    NetFramePublishOkBytes,
    /// Encoded size of each `DONE` frame written.
    NetFrameDoneBytes,
    /// Encoded size of each `STATS` frame written.
    NetFrameStatsBytes,
    /// Encoded size of each `SUBSCRIBE` frame written.
    NetFrameSubscribeBytes,
    /// Encoded size of each `UNSUBSCRIBE` frame written.
    NetFrameUnsubscribeBytes,
    /// Encoded size of each `PUBLISH` frame written.
    NetFramePublishBytes,
    /// Encoded size of each `DELIVER` frame written.
    NetFrameDeliverBytes,
    /// Operations (subscribes + unsubscribes + publishes) applied per
    /// broker service-loop batch (`bsub-net` broker).
    BrokerBatchOps,
}

impl SizeHist {
    /// Every size histogram, in stable report order.
    pub const ALL: [SizeHist; 20] = [
        SizeHist::EncodedFilterBytes,
        SizeHist::ContactBytes,
        SizeHist::MatchBatchEvents,
        SizeHist::MatchBatchCandidates,
        SizeHist::NetFrameHelloBytes,
        SizeHist::NetFrameDispatchBytes,
        SizeHist::NetFrameStateReqBytes,
        SizeHist::NetFrameStateGrantBytes,
        SizeHist::NetFrameStateRetBytes,
        SizeHist::NetFrameExchangeResultBytes,
        SizeHist::NetFrameNodeFreeBytes,
        SizeHist::NetFrameAdvanceBytes,
        SizeHist::NetFramePublishOkBytes,
        SizeHist::NetFrameDoneBytes,
        SizeHist::NetFrameStatsBytes,
        SizeHist::NetFrameSubscribeBytes,
        SizeHist::NetFrameUnsubscribeBytes,
        SizeHist::NetFramePublishBytes,
        SizeHist::NetFrameDeliverBytes,
        SizeHist::BrokerBatchOps,
    ];

    /// Stable snake-case name used in JSON and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SizeHist::EncodedFilterBytes => "encoded_filter_bytes",
            SizeHist::ContactBytes => "contact_bytes",
            SizeHist::MatchBatchEvents => "match_batch_events",
            SizeHist::MatchBatchCandidates => "match_batch_candidates",
            SizeHist::NetFrameHelloBytes => "net_frame_hello_bytes",
            SizeHist::NetFrameDispatchBytes => "net_frame_dispatch_bytes",
            SizeHist::NetFrameStateReqBytes => "net_frame_state_req_bytes",
            SizeHist::NetFrameStateGrantBytes => "net_frame_state_grant_bytes",
            SizeHist::NetFrameStateRetBytes => "net_frame_state_ret_bytes",
            SizeHist::NetFrameExchangeResultBytes => "net_frame_exchange_result_bytes",
            SizeHist::NetFrameNodeFreeBytes => "net_frame_node_free_bytes",
            SizeHist::NetFrameAdvanceBytes => "net_frame_advance_bytes",
            SizeHist::NetFramePublishOkBytes => "net_frame_publish_ok_bytes",
            SizeHist::NetFrameDoneBytes => "net_frame_done_bytes",
            SizeHist::NetFrameStatsBytes => "net_frame_stats_bytes",
            SizeHist::NetFrameSubscribeBytes => "net_frame_subscribe_bytes",
            SizeHist::NetFrameUnsubscribeBytes => "net_frame_unsubscribe_bytes",
            SizeHist::NetFramePublishBytes => "net_frame_publish_bytes",
            SizeHist::NetFrameDeliverBytes => "net_frame_deliver_bytes",
            SizeHist::BrokerBatchOps => "broker_batch_ops",
        }
    }
}

/// The per-thread metric store. Fixed arrays indexed by the enums
/// above; recording is an index plus a saturating add.
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    pub(crate) counters: [u64; Counter::ALL.len()],
    pub(crate) gauge_cur: [u64; Gauge::ALL.len()],
    pub(crate) gauge_hwm: [u64; Gauge::ALL.len()],
    pub(crate) time_hists: [Histogram; TimeHist::ALL.len()],
    pub(crate) size_hists: [Histogram; SizeHist::ALL.len()],
}

impl Profiler {
    fn new() -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            gauge_cur: [0; Gauge::ALL.len()],
            gauge_hwm: [0; Gauge::ALL.len()],
            time_hists: std::array::from_fn(|_| Histogram::new()),
            size_hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

thread_local! {
    /// Fast active flag: the only cost instrumentation pays when
    /// profiling is off is reading this cell.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static PROFILER: RefCell<Option<Profiler>> = const { RefCell::new(None) };
}

/// Installs a fresh profiler on the current thread, discarding any
/// previous one. Until [`finish`] is called, instrumentation on this
/// thread records into it.
pub fn start() {
    PROFILER.with(|p| *p.borrow_mut() = Some(Profiler::new()));
    ACTIVE.with(|a| a.set(true));
}

/// Uninstalls the current thread's profiler and returns what it
/// collected. Returns an empty report if [`start`] was never called.
pub fn finish() -> ProfReport {
    ACTIVE.with(|a| a.set(false));
    PROFILER
        .with(|p| p.borrow_mut().take())
        .map(|prof| ProfReport::from_profiler(&prof))
        .unwrap_or_default()
}

/// Merges a finished [`ProfReport`] into the profiler active on this
/// thread — counters sum, gauge high-water marks take the max,
/// histograms merge bucket-wise, exactly like
/// [`ProfReport::merge`](crate::ProfReport::merge). No-op when no
/// profiler is installed.
///
/// This is how a sharded run re-aggregates: each worker thread runs
/// its own `start()`/`finish()` pair around its slice of the work, and
/// the orchestrator absorbs the per-shard reports (in deterministic
/// shard order) into the run-level profiler.
pub fn absorb(report: &ProfReport) {
    with_profiler(|p| report.merge_into(p));
}

/// Whether a profiler is installed on this thread. Instrumentation
/// call sites don't need this — [`count`] and friends check it — but
/// it lets callers skip *building* expensive arguments, mirroring the
/// `Recorder::is_active` pattern.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

fn with_profiler(f: impl FnOnce(&mut Profiler)) {
    if !is_active() {
        return;
    }
    PROFILER.with(|p| {
        if let Some(prof) = p.borrow_mut().as_mut() {
            f(prof);
        }
    });
}

/// Adds `n` to a counter (saturating). Free when inactive.
#[inline]
pub fn count(c: Counter, n: u64) {
    with_profiler(|p| {
        let slot = &mut p.counters[c as usize];
        *slot = slot.saturating_add(n);
    });
}

/// Raises a gauge by `n`, updating its high-water mark.
#[inline]
pub fn gauge_add(g: Gauge, n: u64) {
    with_profiler(|p| {
        let i = g as usize;
        p.gauge_cur[i] = p.gauge_cur[i].saturating_add(n);
        p.gauge_hwm[i] = p.gauge_hwm[i].max(p.gauge_cur[i]);
    });
}

/// Lowers a gauge by `n` (saturating at zero).
#[inline]
pub fn gauge_sub(g: Gauge, n: u64) {
    with_profiler(|p| {
        let i = g as usize;
        p.gauge_cur[i] = p.gauge_cur[i].saturating_sub(n);
    });
}

/// Sets a gauge to an absolute level, updating its high-water mark.
#[inline]
pub fn gauge_set(g: Gauge, level: u64) {
    with_profiler(|p| {
        let i = g as usize;
        p.gauge_cur[i] = level;
        p.gauge_hwm[i] = p.gauge_hwm[i].max(level);
    });
}

/// Records a sample into a size histogram. Free when inactive.
#[inline]
pub fn observe(h: SizeHist, value: u64) {
    with_profiler(|p| p.size_hists[h as usize].record(value));
}

/// Records an externally measured duration into a timing histogram —
/// for latencies that cannot be bracketed by a [`span`] (e.g. a
/// request/response round trip observed across threads). Free when
/// inactive.
#[inline]
pub fn observe_ns(h: TimeHist, ns: u64) {
    with_profiler(|p| p.time_hists[h as usize].record(ns));
}

/// A scoped timing guard returned by [`span`]: measures wall-clock
/// nanoseconds from construction to drop and records them into a
/// [`TimeHist`]. When profiling is inactive the guard holds no clock
/// reading and its drop is a no-op — spans on hot paths cost one
/// thread-local read.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to _ drops immediately"]
pub struct Span {
    hist: TimeHist,
    started: Option<Instant>,
}

/// Starts a timing span for `hist`. See [`Span`].
#[inline]
pub fn span(hist: TimeHist) -> Span {
    let started = if is_active() {
        Some(Instant::now())
    } else {
        None
    };
    Span { hist, started }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            with_profiler(|p| p.time_hists[self.hist as usize].record(ns));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_thread_records_nothing() {
        // No start(): everything is a no-op and finish() is empty.
        count(Counter::TcbfInsert, 5);
        gauge_add(Gauge::BufferMsgs, 3);
        observe(SizeHist::ContactBytes, 100);
        drop(span(TimeHist::ContactNs));
        assert!(!is_active());
        let report = finish();
        assert_eq!(report.counter(Counter::TcbfInsert), 0);
        assert!(report.is_empty());
    }

    #[test]
    fn start_finish_collects_and_resets() {
        start();
        assert!(is_active());
        count(Counter::WireEncode, 2);
        count(Counter::WireEncode, 3);
        observe(SizeHist::EncodedFilterBytes, 64);
        let report = finish();
        assert!(!is_active());
        assert_eq!(report.counter(Counter::WireEncode), 5);
        assert_eq!(report.size_hist(SizeHist::EncodedFilterBytes).count(), 1);
        // A second finish without start is empty again.
        assert!(finish().is_empty());
    }

    #[test]
    fn absorb_merges_into_active_profiler() {
        start();
        count(Counter::TcbfAMerge, 2);
        gauge_set(Gauge::BufferMsgs, 5);
        observe(SizeHist::ContactBytes, 64);
        let shard = finish();

        start();
        count(Counter::TcbfAMerge, 3);
        gauge_set(Gauge::BufferMsgs, 4);
        absorb(&shard);
        let merged = finish();
        assert_eq!(merged.counter(Counter::TcbfAMerge), 5);
        assert_eq!(merged.gauge(Gauge::BufferMsgs), 5, "hwm takes the max");
        assert_eq!(merged.size_hist(SizeHist::ContactBytes).count(), 1);

        // Without an active profiler, absorb is a no-op.
        absorb(&shard);
        assert!(finish().is_empty());
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        start();
        count(Counter::DataBytes, u64::MAX);
        count(Counter::DataBytes, u64::MAX);
        assert_eq!(finish().counter(Counter::DataBytes), u64::MAX);
    }

    #[test]
    fn gauges_track_high_water() {
        start();
        gauge_add(Gauge::BufferMsgs, 4);
        gauge_add(Gauge::BufferMsgs, 3);
        gauge_sub(Gauge::BufferMsgs, 6);
        gauge_add(Gauge::BufferMsgs, 1);
        let report = finish();
        assert_eq!(report.gauge(Gauge::BufferMsgs), 7);
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        start();
        gauge_sub(Gauge::BufferBytes, 10);
        gauge_add(Gauge::BufferBytes, 2);
        assert_eq!(finish().gauge(Gauge::BufferBytes), 2);
    }

    #[test]
    fn spans_record_into_the_right_histogram() {
        start();
        {
            let _s = span(TimeHist::MergeNs);
        }
        {
            let _s = span(TimeHist::MergeNs);
        }
        let report = finish();
        assert_eq!(report.time_hist(TimeHist::MergeNs).count(), 2);
        assert_eq!(report.time_hist(TimeHist::DecayNs).count(), 0);
    }
}
