//! Collected profiling reports: per-run [`ProfReport`], label-grouped
//! [`MetricsReport`], and the machine-speed calibration used to
//! normalize timings across hosts.

use crate::hist::{take_u16, take_u64, take_u8, Histogram};
use crate::json::json_string;
use crate::profiler::{Counter, Gauge, Profiler, SizeHist, TimeHist};
use std::fmt::Write as _;
use std::time::Instant;

/// Everything one profiled run recorded: counters, gauge high-water
/// marks, and histograms, addressed by the taxonomy enums.
///
/// Reports [`merge`](ProfReport::merge) commutatively, and everything
/// except the [`TimeHist`] histograms is deterministic for a fixed
/// seed — the property checked by
/// [`eq_deterministic`](ProfReport::eq_deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    counters: [u64; Counter::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    time_hists: [Histogram; TimeHist::ALL.len()],
    size_hists: [Histogram; SizeHist::ALL.len()],
}

impl Default for ProfReport {
    fn default() -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            gauges: [0; Gauge::ALL.len()],
            time_hists: std::array::from_fn(|_| Histogram::new()),
            size_hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl ProfReport {
    /// Version byte leading every wire-encoded report (DESIGN.md §15).
    pub const WIRE_VERSION: u8 = 1;

    pub(crate) fn from_profiler(p: &Profiler) -> Self {
        Self {
            counters: p.counters,
            gauges: p.gauge_hwm,
            time_hists: p.time_hists.clone(),
            size_hists: p.size_hists.clone(),
        }
    }

    /// Value of a counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// High-water mark of a gauge.
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// A timing histogram (nanoseconds).
    #[must_use]
    pub fn time_hist(&self, h: TimeHist) -> &Histogram {
        &self.time_hists[h as usize]
    }

    /// A size histogram (bytes).
    #[must_use]
    pub fn size_hist(&self, h: SizeHist) -> &Histogram {
        &self.size_hists[h as usize]
    }

    /// Whether nothing was recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.time_hists.iter().all(Histogram::is_empty)
            && self.size_hists.iter().all(Histogram::is_empty)
    }

    /// Merges another report into this one: counters sum, gauge
    /// high-water marks take the max, histograms merge bucket-wise.
    /// Commutative and associative, so aggregation over a sweep's runs
    /// is independent of worker count and completion order.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.time_hists.iter_mut().zip(&other.time_hists) {
            a.merge(b);
        }
        for (a, b) in self.size_hists.iter_mut().zip(&other.size_hists) {
            a.merge(b);
        }
    }

    /// Merges this report into a live [`Profiler`] with the same
    /// semantics as [`ProfReport::merge`] — the thread-local side of
    /// [`crate::absorb`].
    pub(crate) fn merge_into(&self, p: &mut Profiler) {
        for (a, b) in p.counters.iter_mut().zip(&self.counters) {
            *a = a.saturating_add(*b);
        }
        for (a, b) in p.gauge_hwm.iter_mut().zip(&self.gauges) {
            *a = (*a).max(*b);
        }
        for (a, b) in p.time_hists.iter_mut().zip(&self.time_hists) {
            a.merge(b);
        }
        for (a, b) in p.size_hists.iter_mut().zip(&self.size_hists) {
            a.merge(b);
        }
    }

    /// Adds `n` to a counter directly on this report (saturating) —
    /// the recording path for aggregation sinks that cannot use the
    /// thread-local profiler, such as `bsub-net`'s socket threads,
    /// which outlive any one profiled run.
    pub fn add_counter(&mut self, c: Counter, n: u64) {
        let slot = &mut self.counters[c as usize];
        *slot = slot.saturating_add(n);
    }

    /// Raises a gauge's high-water mark to at least `level`.
    pub fn raise_gauge(&mut self, g: Gauge, level: u64) {
        let slot = &mut self.gauges[g as usize];
        *slot = (*slot).max(level);
    }

    /// Records one sample into a timing histogram (nanoseconds).
    pub fn record_time(&mut self, h: TimeHist, ns: u64) {
        self.time_hists[h as usize].record(ns);
    }

    /// Records one sample into a size histogram (bytes).
    pub fn record_size(&mut self, h: SizeHist, value: u64) {
        self.size_hists[h as usize].record(value);
    }

    /// Encodes the report for the wire (DESIGN.md §15): a version
    /// byte, a reserved zero byte, the four taxonomy lengths as u16
    /// LE (counters, gauges, timing histograms, size histograms),
    /// then every counter and gauge as u64 LE followed by every
    /// histogram record, all in taxonomy declaration order. Histogram
    /// records are sparse (zero buckets omitted), so an
    /// almost-empty report encodes in a few hundred bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * self.counters.len());
        out.push(Self::WIRE_VERSION);
        out.push(0); // reserved
        for len in [
            Counter::ALL.len(),
            Gauge::ALL.len(),
            TimeHist::ALL.len(),
            SizeHist::ALL.len(),
        ] {
            out.extend_from_slice(&(len as u16).to_le_bytes());
        }
        for &c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &g in &self.gauges {
            out.extend_from_slice(&g.to_le_bytes());
        }
        for h in &self.time_hists {
            h.encode_into(&mut out);
        }
        for h in &self.size_hists {
            h.encode_into(&mut out);
        }
        out
    }

    /// Decodes a report encoded by [`ProfReport::encode`]. `None` on
    /// a version or taxonomy-length mismatch, truncation, a malformed
    /// histogram record, or trailing bytes — decoding never guesses
    /// (the same reset discipline as the frame layer: a peer built
    /// against a different taxonomy is rejected, not reinterpreted).
    #[must_use]
    pub fn decode(body: &[u8]) -> Option<Self> {
        let mut input = body;
        if take_u8(&mut input)? != Self::WIRE_VERSION || take_u8(&mut input)? != 0 {
            return None;
        }
        for expected in [
            Counter::ALL.len(),
            Gauge::ALL.len(),
            TimeHist::ALL.len(),
            SizeHist::ALL.len(),
        ] {
            if take_u16(&mut input)? as usize != expected {
                return None;
            }
        }
        let mut report = Self::default();
        for slot in &mut report.counters {
            *slot = take_u64(&mut input)?;
        }
        for slot in &mut report.gauges {
            *slot = take_u64(&mut input)?;
        }
        for slot in &mut report.time_hists {
            *slot = Histogram::decode_from(&mut input)?;
        }
        for slot in &mut report.size_hists {
            *slot = Histogram::decode_from(&mut input)?;
        }
        if !input.is_empty() {
            return None;
        }
        Some(report)
    }

    /// Equality over the deterministic portion only: counters, gauges,
    /// and size histograms. Wall-clock timing histograms differ from
    /// run to run on any real machine and are excluded.
    #[must_use]
    pub fn eq_deterministic(&self, other: &Self) -> bool {
        self.counters == other.counters
            && self.gauges == other.gauges
            && self.size_hists == other.size_hists
    }

    /// Renders the report as a JSON object. Zero counters, zero
    /// gauges, and empty histograms are omitted for compactness; the
    /// emission order follows the taxonomy declaration order, so equal
    /// reports serialize identically.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        push_pairs(
            &mut out,
            Counter::ALL
                .iter()
                .filter(|&&c| self.counter(c) > 0)
                .map(|&c| (c.name(), self.counter(c).to_string())),
        );
        out.push_str("},\"gauges\":{");
        push_pairs(
            &mut out,
            Gauge::ALL
                .iter()
                .filter(|&&g| self.gauge(g) > 0)
                .map(|&g| (g.name(), self.gauge(g).to_string())),
        );
        out.push_str("},\"time_ns\":{");
        push_pairs(
            &mut out,
            TimeHist::ALL
                .iter()
                .filter(|&&h| !self.time_hist(h).is_empty())
                .map(|&h| (h.name(), hist_json(self.time_hist(h)))),
        );
        out.push_str("},\"size_bytes\":{");
        push_pairs(
            &mut out,
            SizeHist::ALL
                .iter()
                .filter(|&&h| !self.size_hist(h).is_empty())
                .map(|&h| (h.name(), hist_json(self.size_hist(h)))),
        );
        out.push_str("}}");
        out
    }
}

fn push_pairs<'a>(out: &mut String, pairs: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (name, value) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{}", json_string(name), value);
    }
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.sum(),
        h.min(),
        h.quantile(0.5),
        h.quantile(0.9),
        h.quantile(0.99),
        h.max()
    )
}

/// Profiling reports grouped by label (one group per protocol /
/// experiment leg), as attached to a `bsub_bench::engine` sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    groups: Vec<(String, ProfReport)>,
}

impl MetricsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `report` into the group for `label`, creating the group
    /// if needed. Groups are kept sorted by label, so insertion order
    /// (and therefore worker scheduling) does not affect the result.
    pub fn add(&mut self, label: &str, report: &ProfReport) {
        match self.groups.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.groups[i].1.merge(report),
            Err(i) => self.groups.insert(i, (label.to_string(), report.clone())),
        }
    }

    /// The labelled groups, sorted by label.
    #[must_use]
    pub fn groups(&self) -> &[(String, ProfReport)] {
        &self.groups
    }

    /// The group for `label`, if present.
    #[must_use]
    pub fn group(&self, label: &str) -> Option<&ProfReport> {
        self.groups
            .binary_search_by(|(l, _)| l.as_str().cmp(label))
            .ok()
            .map(|i| &self.groups[i].1)
    }

    /// Whether no group holds any data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(|(_, r)| r.is_empty())
    }

    /// Equality over the deterministic portion of every group.
    #[must_use]
    pub fn eq_deterministic(&self, other: &Self) -> bool {
        self.groups.len() == other.groups.len()
            && self
                .groups
                .iter()
                .zip(&other.groups)
                .all(|((la, ra), (lb, rb))| la == lb && ra.eq_deterministic(rb))
    }

    /// Renders the report as a JSON object keyed by label.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_pairs(
            &mut out,
            self.groups
                .iter()
                .map(|(label, report)| (label.as_str(), report.to_json())),
        );
        out.push('}');
        out
    }

    /// Renders a human-readable terminal table: one section per label
    /// with non-zero counters and gauge high-water marks, then
    /// histogram summary rows (count, mean, p50/p99/max).
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for (label, report) in &self.groups {
            let _ = writeln!(out, "── {label} ──");
            for &c in &Counter::ALL {
                if report.counter(c) > 0 {
                    let _ = writeln!(out, "  {:<24} {:>16}", c.name(), report.counter(c));
                }
            }
            for &g in &Gauge::ALL {
                if report.gauge(g) > 0 {
                    let _ = writeln!(out, "  {:<24} {:>16}", g.name(), report.gauge(g));
                }
            }
            let mut hist_row = |name: &str, h: &Histogram| {
                if !h.is_empty() {
                    let _ = writeln!(
                        out,
                        "  {:<24} n={:<10} mean={:<10.0} p50={:<8} p99={:<8} max={}",
                        name,
                        h.count(),
                        h.mean(),
                        h.quantile(0.5),
                        h.quantile(0.99),
                        h.max()
                    );
                }
            };
            for &h in &TimeHist::ALL {
                hist_row(h.name(), report.time_hist(h));
            }
            for &h in &SizeHist::ALL {
                hist_row(h.name(), report.size_hist(h));
            }
        }
        out
    }
}

/// Measures this machine's speed as the wall-clock nanoseconds for a
/// fixed deterministic mixing workload (SplitMix64 finalizer over 2²²
/// iterations, ~5–20 ms on current hardware).
///
/// Perf-trajectory entries store this next to their timings so the
/// regression comparator can normalize across hosts: a run that is 2×
/// slower *relative to its own machine's calibration* is a regression
/// even if the absolute numbers moved the other way.
#[must_use]
pub fn calibrate_ns() -> u64 {
    const ITERS: u64 = 1 << 22;
    let start = Instant::now();
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..ITERS {
        // SplitMix64 finalizer — the same mixing the workspace's
        // deterministic RNG uses, so calibration tracks the real
        // workload's instruction mix.
        let mut z = acc ^ i;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    // Consume `acc` so the loop cannot be optimized away.
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if acc == 0 {
        ns | 1
    } else {
        ns.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler;

    fn report_with(c: Counter, n: u64) -> ProfReport {
        profiler::start();
        profiler::count(c, n);
        profiler::finish()
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        profiler::start();
        profiler::count(Counter::Contacts, 3);
        profiler::gauge_set(Gauge::BufferMsgs, 10);
        let mut a = profiler::finish();

        profiler::start();
        profiler::count(Counter::Contacts, 4);
        profiler::gauge_set(Gauge::BufferMsgs, 7);
        let b = profiler::finish();

        a.merge(&b);
        assert_eq!(a.counter(Counter::Contacts), 7);
        assert_eq!(a.gauge(Gauge::BufferMsgs), 10);
    }

    #[test]
    fn metrics_report_grouping_is_order_invariant() {
        let r1 = report_with(Counter::DataBytes, 5);
        let r2 = report_with(Counter::DataBytes, 7);
        let r3 = report_with(Counter::ControlBytes, 2);

        let mut fwd = MetricsReport::new();
        fwd.add("push", &r1);
        fwd.add("pull", &r3);
        fwd.add("push", &r2);

        let mut rev = MetricsReport::new();
        rev.add("push", &r2);
        rev.add("push", &r1);
        rev.add("pull", &r3);

        assert_eq!(fwd, rev);
        assert_eq!(fwd.group("push").unwrap().counter(Counter::DataBytes), 12);
    }

    #[test]
    fn json_is_valid_shape_and_omits_zeros() {
        let r = report_with(Counter::TcbfInsert, 9);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tcbf_insert\":9"));
        assert!(!json.contains("tcbf_a_merge"));

        let mut m = MetricsReport::new();
        m.add("bsub", &r);
        assert!(m.to_json().contains("\"bsub\":{"));
    }

    #[test]
    fn render_table_mentions_recorded_metrics() {
        profiler::start();
        profiler::count(Counter::WireEncode, 2);
        profiler::observe(SizeHist::EncodedFilterBytes, 128);
        let r = profiler::finish();
        let mut m = MetricsReport::new();
        m.add("bsub", &r);
        let table = m.render_table();
        assert!(table.contains("bsub"));
        assert!(table.contains("wire_encode"));
        assert!(table.contains("encoded_filter_bytes"));
    }

    #[test]
    fn eq_deterministic_ignores_timing_histograms() {
        profiler::start();
        profiler::count(Counter::Contacts, 1);
        {
            let _s = profiler::span(TimeHist::ContactNs);
        }
        let a = profiler::finish();

        profiler::start();
        profiler::count(Counter::Contacts, 1);
        let b = profiler::finish();

        assert!(a.eq_deterministic(&b));
        assert_ne!(a, b); // full equality sees the timing sample
    }

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_ns() > 0);
    }

    fn busy_report() -> ProfReport {
        profiler::start();
        profiler::count(Counter::NetFramesSent, 12);
        profiler::count(Counter::ControlBytes, 9001);
        profiler::gauge_set(Gauge::BufferMsgs, 17);
        profiler::observe(SizeHist::NetFrameStatsBytes, 512);
        profiler::observe_ns(TimeHist::NetExchangeNs, 12_345);
        profiler::observe_ns(TimeHist::NetExchangeNs, 1 << 33);
        profiler::finish()
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let report = busy_report();
        let bytes = report.encode();
        let back = ProfReport::decode(&bytes).expect("decodes");
        assert_eq!(back, report, "full equality, timing histograms included");

        let empty = ProfReport::default();
        assert_eq!(ProfReport::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn wire_header_layout_is_pinned() {
        // DESIGN.md §15: version at 0, reserved at 1, then the four
        // taxonomy lengths as u16 LE at 2, 4, 6, 8; payload at 10.
        let bytes = busy_report().encode();
        assert_eq!(bytes[0], ProfReport::WIRE_VERSION);
        assert_eq!(bytes[1], 0);
        let at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap()) as usize;
        assert_eq!(at(2), Counter::ALL.len());
        assert_eq!(at(4), Gauge::ALL.len());
        assert_eq!(at(6), TimeHist::ALL.len());
        assert_eq!(at(8), SizeHist::ALL.len());
        // First counter (u64 LE) sits at offset 10.
        let first = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
        assert_eq!(first, busy_report().counter(Counter::ALL[0]));
    }

    #[test]
    fn wire_decode_rejects_mismatch_and_truncation() {
        let report = busy_report();
        let bytes = report.encode();
        // Any truncation fails — a decoder never guesses.
        for cut in [0, 1, 9, 10, bytes.len() - 1] {
            assert!(ProfReport::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Trailing bytes fail.
        let mut long = bytes.clone();
        long.push(0);
        assert!(ProfReport::decode(&long).is_none());
        // Version and taxonomy-length mismatches fail.
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(ProfReport::decode(&wrong_version).is_none());
        let mut wrong_len = bytes.clone();
        wrong_len[2] ^= 0x01;
        assert!(ProfReport::decode(&wrong_len).is_none());
        let mut reserved = bytes;
        reserved[1] = 1;
        assert!(ProfReport::decode(&reserved).is_none());
    }

    #[test]
    fn direct_recording_matches_profiled_recording() {
        let via_profiler = busy_report();
        let mut direct = ProfReport::default();
        direct.add_counter(Counter::NetFramesSent, 12);
        direct.add_counter(Counter::ControlBytes, 9001);
        direct.raise_gauge(Gauge::BufferMsgs, 17);
        direct.record_size(SizeHist::NetFrameStatsBytes, 512);
        direct.record_time(TimeHist::NetExchangeNs, 12_345);
        direct.record_time(TimeHist::NetExchangeNs, 1 << 33);
        assert_eq!(direct, via_profiler);
    }
}
