//! Deterministic fault injection: the adversarial weather of a run.
//!
//! The paper evaluates B-SUB under ideal radios — every contact
//! completes its filter exchange and message transfers perfectly. Real
//! human-network contacts are short, lossy and asymmetric, so this
//! module models the classic DTN stressors as a seeded, reproducible
//! [`FaultSpec`]:
//!
//! - **contact loss** — a contact fires but no exchange happens;
//! - **contact truncation** — the usable byte budget is cut to a
//!   fraction of the radio budget, forcing partial exchanges;
//! - **node churn** — nodes go down for whole intervals, losing their
//!   buffered copies and volatile routing state on rejoin;
//! - **control corruption** — a filter encoding arrives truncated or
//!   bit-flipped and must be rejected by `wire::decode` on the
//!   receiving side.
//!
//! # Determinism and monotonicity
//!
//! Fault decisions never consume the workload RNG: each is a *stateless
//! draw* keyed on the spec's seed, a per-fault salt, and the contact
//! index (or node × churn cell). A run with faults is therefore
//! byte-identical at any worker count, and two specs differing only in
//! intensity draw the *same* uniform value per site and compare it
//! against different thresholds — the set of faulted sites at intensity
//! `p` is a subset of the set at `p' > p`, which makes degradation
//! curves monotone by construction rather than by luck.

use bsub_bloom::SplitMix64;
use bsub_traces::{NodeId, SimDuration, SimTime};

/// The fixed-point scale of fault probabilities: parts per million.
/// A probability `p` is expressed as `(p * f64::from(PPM)) as u32`.
pub const PPM: u32 = 1_000_000;

// Per-fault salts keeping the stateless draw streams independent of
// each other (and of everything else keyed on the same seed).
const SALT_LOSS: u64 = 0x1055_1055_1055_1055;
const SALT_TRUNC: u64 = 0x7235_7235_7235_7235;
const SALT_TRUNC_FRAC: u64 = 0xf12a_f12a_f12a_f12a;
const SALT_CHURN: u64 = 0xc503_c503_c503_c503;
const SALT_CORRUPT: u64 = 0xe221_e221_e221_e221;

/// A uniform draw in `[0, PPM)`, fully determined by `(seed, stream)`.
///
/// Because the value does not depend on any threshold, raising a fault
/// probability only *adds* sites to the faulted set — see the module
/// docs on monotonicity.
fn unit_draw(seed: u64, stream: u64) -> u32 {
    let mut rng = SplitMix64::new(SplitMix64::mix(seed, stream));
    rng.below(u64::from(PPM)) as u32
}

/// A deterministic fault model for one run.
///
/// The default [`FaultSpec::none`] injects nothing and is guaranteed
/// (and regression-tested) to leave every run bit-identical to a
/// simulation without the fault layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    seed: u64,
    contact_loss_ppm: u32,
    truncation_ppm: u32,
    churn_ppm: u32,
    churn_period: SimDuration,
    corruption_ppm: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultSpec {
    /// The ideal-radio spec: no faults of any kind.
    #[must_use]
    pub const fn none() -> Self {
        Self {
            seed: 0,
            contact_loss_ppm: 0,
            truncation_ppm: 0,
            churn_ppm: 0,
            churn_period: SimDuration::ZERO,
            corruption_ppm: 0,
        }
    }

    /// Whether this spec injects nothing (the seed is irrelevant then).
    #[must_use]
    pub const fn is_none(&self) -> bool {
        self.contact_loss_ppm == 0
            && self.truncation_ppm == 0
            && self.churn_ppm == 0
            && self.corruption_ppm == 0
    }

    /// Sets the fault seed (independent of the workload seed).
    #[must_use]
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Probability (in parts per million, ≤ [`PPM`]) that a contact is
    /// lost entirely: it still counts as a contact, but no exchange
    /// happens.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > PPM`.
    #[must_use]
    pub const fn with_contact_loss(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "probability above 1.0");
        self.contact_loss_ppm = ppm;
        self
    }

    /// Probability (ppm) that a contact's byte budget is truncated to a
    /// uniformly drawn fraction of the radio budget.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > PPM`.
    #[must_use]
    pub const fn with_truncation(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "probability above 1.0");
        self.truncation_ppm = ppm;
        self
    }

    /// Per-period probability (ppm) that a node is down for a whole
    /// churn cell of width `period`. A node that was down since its
    /// last contact loses its buffered copies and volatile routing
    /// state when it rejoins.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > PPM`, or if `ppm > 0` with a zero `period`.
    #[must_use]
    pub const fn with_churn(mut self, ppm: u32, period: SimDuration) -> Self {
        assert!(ppm <= PPM, "probability above 1.0");
        assert!(ppm == 0 || !period.is_zero(), "churn needs a period");
        self.churn_ppm = ppm;
        self.churn_period = period;
        self
    }

    /// Probability (ppm) that a filter transmission arrives corrupted
    /// (truncated or bit-flipped) and is rejected by the receiver.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > PPM`.
    #[must_use]
    pub const fn with_corruption(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "probability above 1.0");
        self.corruption_ppm = ppm;
        self
    }

    /// The corruption probability in ppm (0 disables the draw stream).
    #[must_use]
    pub const fn corruption_ppm(&self) -> u32 {
        self.corruption_ppm
    }

    /// Whether the contact at `index` in the trace is lost to radio
    /// failure.
    #[must_use]
    pub fn loses_contact(&self, index: u64) -> bool {
        self.contact_loss_ppm > 0 && unit_draw(self.seed ^ SALT_LOSS, index) < self.contact_loss_ppm
    }

    /// Whether (and how hard) the contact at `index` is truncated:
    /// `Some(keep_ppm)` means the byte budget shrinks to
    /// `keep_ppm / PPM` of the radio budget.
    ///
    /// The kept fraction is drawn from a stream independent of the
    /// fault *decision*, so raising the truncation probability truncates
    /// more contacts without changing how hard already-truncated ones
    /// are cut.
    #[must_use]
    pub fn truncates_contact(&self, index: u64) -> Option<u32> {
        if self.truncation_ppm == 0
            || unit_draw(self.seed ^ SALT_TRUNC, index) >= self.truncation_ppm
        {
            return None;
        }
        Some(unit_draw(self.seed ^ SALT_TRUNC_FRAC, index))
    }

    /// Whether `node` is down during churn cell `cell`.
    #[must_use]
    pub fn node_down(&self, node: NodeId, cell: u64) -> bool {
        self.churn_ppm > 0
            && unit_draw(
                self.seed ^ SALT_CHURN,
                SplitMix64::mix(node.index() as u64, cell),
            ) < self.churn_ppm
    }

    /// The churn cell containing `at` (cells are `churn_period` wide).
    /// Returns 0 when churn is disabled.
    #[must_use]
    pub fn churn_cell(&self, at: SimTime) -> u64 {
        if self.churn_ppm == 0 {
            return 0;
        }
        at.as_millis() / self.churn_period.as_millis()
    }

    /// The per-contact corruption draw stream for the contact at
    /// `index`. Each filter transmission of the contact consumes a
    /// fixed number of draws, so the stream stays aligned across
    /// intensity levels.
    #[must_use]
    pub fn corruption_stream(&self, index: u64) -> SplitMix64 {
        SplitMix64::new(SplitMix64::mix(self.seed ^ SALT_CORRUPT, index))
    }
}

/// How a control-plane encoding is damaged in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCorruption {
    /// The transfer broke off: only a prefix of the encoding arrives.
    /// `keep_ppm / PPM` of the bytes survive (always at least one byte
    /// short of the full message).
    Truncate {
        /// Kept fraction of the encoding, in parts per million.
        keep_ppm: u32,
    },
    /// A single bit was flipped somewhere in the encoding.
    BitFlip {
        /// Raw draw selecting the flipped bit (taken modulo the
        /// encoding's bit length).
        bit: u64,
    },
}

impl WireCorruption {
    /// Applies the damage to an encoded buffer in place.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        match *self {
            WireCorruption::Truncate { keep_ppm } => {
                let keep = (bytes.len() as u64) * u64::from(keep_ppm) / u64::from(PPM);
                let keep = (keep as usize).min(bytes.len() - 1);
                bytes.truncate(keep);
            }
            WireCorruption::BitFlip { bit } => {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
        }
    }
}

/// One node's churn bookkeeping: the churn cell it has been checked
/// through, and whether it still owes a state reset from a downtime it
/// has not rejoined from yet. `Copy`, so a cell checks out to a shard
/// worker and back by value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FaultCell {
    checked: u64,
    pending_reset: bool,
}

impl FaultCell {
    /// Advances this cell to the churn cell containing `at`. Any down
    /// cell seen on the way (including the current one) marks a pending
    /// reset; returns whether the node is down *now*.
    fn advance(&mut self, spec: &FaultSpec, node: NodeId, at: SimTime) -> bool {
        let cell = spec.churn_cell(at);
        for c in self.checked..=cell {
            if spec.node_down(node, c) {
                self.pending_reset = true;
            }
        }
        // The current cell is re-examined on the node's next contact,
        // which is harmless: a down cell marks the same pending reset
        // again, and the reset only fires once the node is back up.
        self.checked = cell;
        spec.node_down(node, cell)
    }
}

/// Mutable access to per-node fault cells — implemented by the serial
/// runner's dense [`FaultState`] and the sharded runner's checked-out
/// [`FaultCells`], so the per-contact step function is agnostic to
/// which execution context it runs on.
pub(crate) trait FaultAccess {
    /// See [`FaultCell::advance`].
    fn advance(&mut self, spec: &FaultSpec, node: NodeId, at: SimTime) -> bool;
    /// Takes (and clears) the pending reset flag for `node`.
    fn take_reset(&mut self, node: NodeId) -> bool;
}

/// Per-run churn bookkeeping for every node, dense by node index.
#[derive(Debug)]
pub(crate) struct FaultState {
    cells: Vec<FaultCell>,
}

impl FaultState {
    pub(crate) fn new(nodes: usize) -> Self {
        Self {
            cells: vec![FaultCell::default(); nodes],
        }
    }

    /// Copies the cells of `nodes` out for a shard worker. The caller
    /// must hand the cells back via [`FaultState::import_cells`] —
    /// until then the primary copies are stale (nobody reads them: the
    /// owning component runs entirely on the worker).
    pub(crate) fn export_cells<I>(&self, nodes: I) -> FaultCells
    where
        I: IntoIterator<Item = NodeId>,
    {
        FaultCells {
            cells: nodes
                .into_iter()
                .map(|n| (n, self.cells[n.index()]))
                .collect(),
        }
    }

    /// Writes checked-out cells back after a shard epoch.
    pub(crate) fn import_cells(&mut self, cells: FaultCells) {
        for (node, cell) in cells.cells {
            self.cells[node.index()] = cell;
        }
    }
}

impl FaultAccess for FaultState {
    fn advance(&mut self, spec: &FaultSpec, node: NodeId, at: SimTime) -> bool {
        self.cells[node.index()].advance(spec, node, at)
    }

    fn take_reset(&mut self, node: NodeId) -> bool {
        std::mem::take(&mut self.cells[node.index()].pending_reset)
    }
}

/// A shard worker's checked-out fault cells: exactly the nodes of the
/// components assigned to the worker for one epoch.
#[derive(Debug, Default)]
pub(crate) struct FaultCells {
    cells: std::collections::HashMap<NodeId, FaultCell>,
}

impl FaultAccess for FaultCells {
    fn advance(&mut self, spec: &FaultSpec, node: NodeId, at: SimTime) -> bool {
        self.cells
            .get_mut(&node)
            .expect("every node of a component is checked out with it")
            .advance(spec, node, at)
    }

    fn take_reset(&mut self, node: NodeId) -> bool {
        let cell = self
            .cells
            .get_mut(&node)
            .expect("every node of a component is checked out with it");
        std::mem::take(&mut cell.pending_reset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let spec = FaultSpec::none();
        assert!(spec.is_none());
        assert_eq!(spec, FaultSpec::default());
        for i in 0..1000 {
            assert!(!spec.loses_contact(i));
            assert!(spec.truncates_contact(i).is_none());
            assert!(!spec.node_down(NodeId::new(0), i));
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let a = FaultSpec::none().with_seed(9).with_contact_loss(PPM / 4);
        let b = a.clone();
        for i in 0..500 {
            assert_eq!(a.loses_contact(i), b.loses_contact(i));
        }
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let spec = FaultSpec::none().with_seed(1).with_contact_loss(PPM / 5);
        let lost = (0..10_000).filter(|&i| spec.loses_contact(i)).count();
        assert!((1700..2300).contains(&lost), "20% ± 3%, got {lost}");
    }

    #[test]
    fn fault_sets_nest_as_intensity_rises() {
        let low = FaultSpec::none()
            .with_seed(3)
            .with_contact_loss(PPM / 10)
            .with_truncation(PPM / 10);
        let high = FaultSpec::none()
            .with_seed(3)
            .with_contact_loss(PPM / 2)
            .with_truncation(PPM / 2);
        for i in 0..2000 {
            if low.loses_contact(i) {
                assert!(high.loses_contact(i), "loss set must nest");
            }
            if let Some(keep) = low.truncates_contact(i) {
                assert_eq!(
                    high.truncates_contact(i),
                    Some(keep),
                    "truncation set must nest with identical severity"
                );
            }
        }
    }

    #[test]
    fn fault_streams_are_independent() {
        let spec = FaultSpec::none()
            .with_seed(5)
            .with_contact_loss(PPM / 2)
            .with_truncation(PPM / 2);
        let both = (0..4000)
            .filter(|&i| spec.loses_contact(i) && spec.truncates_contact(i).is_some())
            .count();
        // Independent 50/50 streams intersect on ~25% of contacts; a
        // shared stream would give 0% or 50%.
        assert!((800..1200).contains(&both), "got {both}");
    }

    #[test]
    fn truncation_keep_fraction_is_in_range() {
        let spec = FaultSpec::none().with_seed(2).with_truncation(PPM);
        for i in 0..1000 {
            let keep = spec.truncates_contact(i).expect("p = 1");
            assert!(keep < PPM);
        }
    }

    #[test]
    fn corruption_applies_detectable_damage() {
        let original: Vec<u8> = (0u8..64).collect();

        let mut t = original.clone();
        WireCorruption::Truncate { keep_ppm: PPM }.apply(&mut t);
        assert_eq!(t.len(), 63, "truncation always loses at least a byte");
        let mut t = original.clone();
        WireCorruption::Truncate { keep_ppm: 0 }.apply(&mut t);
        assert!(t.is_empty());

        let mut f = original.clone();
        WireCorruption::BitFlip { bit: 8 * 64 + 3 }.apply(&mut f);
        assert_eq!(f.len(), original.len());
        assert_eq!(f[0], original[0] ^ 0b1000, "bit index wraps modulo len");

        let mut empty: Vec<u8> = Vec::new();
        WireCorruption::BitFlip { bit: 7 }.apply(&mut empty);
        WireCorruption::Truncate { keep_ppm: 0 }.apply(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn churn_cells_partition_time() {
        let spec = FaultSpec::none()
            .with_seed(4)
            .with_churn(PPM / 4, SimDuration::from_hours(1));
        assert_eq!(spec.churn_cell(SimTime::ZERO), 0);
        assert_eq!(spec.churn_cell(SimTime::from_secs(3599)), 0);
        assert_eq!(spec.churn_cell(SimTime::from_secs(3600)), 1);
    }

    #[test]
    fn churn_state_detects_downtime_between_contacts() {
        // Find a node/seed whose cell 1 is down but cells 0 and 2 are up.
        let period = SimDuration::from_hours(1);
        let spec = (0..64)
            .map(|s| FaultSpec::none().with_seed(s).with_churn(PPM / 3, period))
            .find(|spec| {
                let n = NodeId::new(0);
                !spec.node_down(n, 0) && spec.node_down(n, 1) && !spec.node_down(n, 2)
            })
            .expect("some seed produces the pattern");
        let node = NodeId::new(0);
        let mut state = FaultState::new(1);

        assert!(!state.advance(&spec, node, SimTime::from_secs(10)));
        assert!(!state.take_reset(node), "no downtime yet");

        // Contact while down: lost, no reset yet.
        assert!(state.advance(&spec, node, SimTime::from_secs(3600 + 10)));
        // First contact back up: the downtime is noticed exactly once.
        assert!(!state.advance(&spec, node, SimTime::from_secs(2 * 3600 + 10)));
        assert!(state.take_reset(node));
        assert!(!state.take_reset(node), "reset fires once");

        // Downtime is also detected when no contact happened during it.
        let mut skip = FaultState::new(1);
        assert!(!skip.advance(&spec, node, SimTime::from_secs(10)));
        assert!(!skip.advance(&spec, node, SimTime::from_secs(2 * 3600 + 10)));
        assert!(skip.take_reset(node), "cell 1 downtime seen in the scan");
    }

    /// Advancing a node through a checked-out [`FaultCells`] view and
    /// importing it back is indistinguishable from advancing the dense
    /// [`FaultState`] directly.
    #[test]
    fn cell_checkout_matches_dense_state() {
        let period = SimDuration::from_hours(1);
        let spec = FaultSpec::none().with_seed(5).with_churn(PPM / 2, period);
        let times: Vec<SimTime> = (0..6).map(|h| SimTime::from_secs(h * 3600 + 10)).collect();
        let nodes = [NodeId::new(0), NodeId::new(1)];

        let mut dense = FaultState::new(2);
        let mut dense_log = Vec::new();
        for &at in &times {
            for node in nodes {
                let down = dense.advance(&spec, node, at);
                let reset = !down && dense.take_reset(node);
                dense_log.push((down, reset));
            }
        }

        let mut primary = FaultState::new(2);
        let mut split_log = Vec::new();
        for &at in &times {
            // One "epoch" per time step: check both nodes out, advance
            // on the worker view, import back.
            let mut cells = primary.export_cells(nodes);
            for node in nodes {
                let down = cells.advance(&spec, node, at);
                let reset = !down && cells.take_reset(node);
                split_log.push((down, reset));
            }
            primary.import_cells(cells);
        }
        assert_eq!(dense_log, split_log);
    }

    #[test]
    #[should_panic(expected = "probability above 1.0")]
    fn overscale_probability_rejected() {
        let _ = FaultSpec::none().with_contact_loss(PPM + 1);
    }

    #[test]
    #[should_panic(expected = "churn needs a period")]
    fn churn_without_period_rejected() {
        let _ = FaultSpec::none().with_churn(1, SimDuration::ZERO);
    }
}
