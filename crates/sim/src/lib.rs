//! A contact-driven discrete-event simulator for DTN/HUNET
//! publish-subscribe protocols, reproducing the evaluation environment
//! of the B-SUB paper (Section VII).
//!
//! The simulator replays a [`ContactTrace`]: every contact gives the
//! two endpoints a bandwidth-limited [`Link`] (the paper assumes a
//! 250 Kbps effective Bluetooth rate, so a contact of duration `d`
//! carries at most `d × 31,250` bytes). A [`Protocol`] implementation
//! reacts to message generations and contacts; everything it transfers
//! is accounted by the [`metrics`] module, which produces the four
//! quantities the paper plots: delivery ratio, delay, forwardings per
//! delivered message, and the false-positive rate of deliveries.
//!
//! The paper's three protocols — PUSH, PULL (in `bsub-baselines`) and
//! B-SUB itself (in `bsub-core`) — all implement [`Protocol`], so one
//! [`Simulation`] run produces directly comparable reports.
//!
//! Runs can additionally stream typed [`TraceEvent`]s into a
//! [`Recorder`] ([`Simulation::run_recorded`]) for time-series and
//! event-log observability; the default [`NullRecorder`] makes the
//! tracing layer free — see the [`record`] module.
//!
//! [`ContactTrace`]: bsub_traces::ContactTrace
//!
//! # Quickstart
//!
//! ```
//! use bsub_sim::{Simulation, SimConfig, GeneratedMessage, SubscriptionTable};
//! use bsub_sim::protocols::NullProtocol;
//! use bsub_traces::synthetic::SyntheticTrace;
//! use bsub_traces::{SimDuration, SimTime, NodeId};
//!
//! let trace = SyntheticTrace::new("demo", 5, SimDuration::from_hours(2), 50)
//!     .seed(1)
//!     .build();
//! let mut subs = SubscriptionTable::new(5);
//! subs.subscribe(NodeId::new(1), "news");
//! let schedule = vec![GeneratedMessage {
//!     at: SimTime::ZERO,
//!     producer: NodeId::new(0),
//!     key: "news".into(),
//!     size: 100,
//! }];
//! let sim = Simulation::new(trace, subs, schedule, SimConfig::default());
//! let report = sim.run(&mut NullProtocol);
//! assert_eq!(report.generated, 1);
//! assert_eq!(report.delivered, 0); // the null protocol never forwards
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod fault;
mod link;
mod message;
pub mod metrics;
pub mod protocols;
pub mod record;
mod runner;
mod shard;
pub mod snapshot;
mod subscriptions;

pub use crate::fault::{FaultSpec, WireCorruption};
pub use crate::link::Link;
pub use crate::message::{Message, MessageId};
pub use crate::metrics::{DeliveryOutcome, MetricsCollector, SimReport};
pub use crate::protocols::{NullProtocol, Protocol, ProtocolFactory, SimCtx};
pub use crate::record::{
    EpochRow, EventLog, LossCause, MergeKind, NullRecorder, PreferenceValue, Recorder, RunRecorder,
    TimeSeriesRecorder, TraceEvent,
};
pub use crate::runner::{GeneratedMessage, SimConfig, Simulation};
pub use crate::shard::shard_seed;
pub use crate::subscriptions::SubscriptionTable;
