//! The bandwidth-limited contact link.
//!
//! Section VII-A: "The bandwidth of the wireless channel is 1 Mbps
//! [...] We assume that the average transmission rate is 250 Kbps."
//! A contact of duration `d` can therefore move at most `d × rate`
//! bytes; every transfer debits the budget, and a protocol that runs
//! out mid-contact simply stops sending (wireless errors are not
//! modeled, as in the paper).

use bsub_obs::{self as obs, Counter};
use bsub_traces::SimDuration;

/// The byte budget of one contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    budget: u64,
    used: u64,
}

impl Link {
    /// A link with an explicit byte budget.
    #[must_use]
    pub const fn with_budget(budget: u64) -> Self {
        Self { budget, used: 0 }
    }

    /// A link for a contact of the given duration at
    /// `bytes_per_sec` effective rate.
    ///
    /// The budget is computed at the clock's millisecond resolution
    /// (`⌊ms × rate / 1000⌋`), which for whole-second durations equals
    /// the plain `secs × rate` product exactly.
    #[must_use]
    pub fn for_contact(duration: SimDuration, bytes_per_sec: u64) -> Self {
        let budget = u128::from(duration.as_millis()) * u128::from(bytes_per_sec) / 1000;
        Self::with_budget(u64::try_from(budget).unwrap_or(u64::MAX))
    }

    /// Attempts to transfer `bytes`; on success the budget is debited.
    /// Returns whether the transfer fit.
    pub fn try_transfer(&mut self, bytes: u64) -> bool {
        if self.remaining() >= bytes {
            self.used += bytes;
            true
        } else {
            obs::count(Counter::LinkExhausted, 1);
            false
        }
    }

    /// Bytes still available in this contact.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.budget - self.used
    }

    /// Bytes moved so far.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total budget of the contact.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Whether the budget is exhausted.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_from_contact_duration() {
        // 4 seconds at 250 Kbps = 125,000 bytes.
        let l = Link::for_contact(SimDuration::from_secs(4), 31_250);
        assert_eq!(l.budget(), 125_000);
        assert_eq!(l.remaining(), 125_000);
    }

    #[test]
    fn transfer_debits() {
        let mut l = Link::with_budget(100);
        assert!(l.try_transfer(60));
        assert_eq!(l.remaining(), 40);
        assert_eq!(l.used(), 60);
        assert!(!l.try_transfer(41), "over budget refused");
        assert_eq!(l.used(), 60, "failed transfer does not debit");
        assert!(l.try_transfer(40));
        assert!(l.is_exhausted());
    }

    #[test]
    fn zero_byte_transfer_always_fits() {
        let mut l = Link::with_budget(0);
        assert!(l.try_transfer(0));
        assert!(l.is_exhausted());
        assert!(!l.try_transfer(1));
    }

    #[test]
    fn zero_duration_contact_has_no_budget() {
        let l = Link::for_contact(SimDuration::ZERO, 31_250);
        assert_eq!(l.budget(), 0);
    }

    #[test]
    fn zero_rate_link_has_no_budget() {
        let mut l = Link::for_contact(SimDuration::from_hours(5), 0);
        assert_eq!(l.budget(), 0);
        assert!(l.is_exhausted());
        assert!(!l.try_transfer(1));
        assert!(l.try_transfer(0));
    }

    #[test]
    fn transfer_exactly_equal_to_remaining_fits() {
        let mut l = Link::with_budget(100);
        assert!(l.try_transfer(30));
        assert!(l.try_transfer(70), "exact remainder must fit");
        assert!(l.is_exhausted());
        assert_eq!(l.remaining(), 0);
        assert!(!l.try_transfer(1));
        assert_eq!(l.used(), 100);
    }

    #[test]
    fn huge_contact_budget_saturates_instead_of_overflowing() {
        let l = Link::for_contact(SimDuration::from_millis(u64::MAX), u64::MAX);
        assert_eq!(l.budget(), u64::MAX);
        let mut l = Link::with_budget(u64::MAX);
        assert!(l.try_transfer(u64::MAX));
        assert!(l.is_exhausted());
    }

    #[test]
    fn sub_second_contact_gets_proportional_budget() {
        // 400 ms at 31,250 B/s = 12,500 bytes (was 0 at whole-second
        // resolution).
        let l = Link::for_contact(SimDuration::from_millis(400), 31_250);
        assert_eq!(l.budget(), 12_500);
    }
}
