//! Messages: the unit of content in B-SUB.
//!
//! Section V-A: "The content of a message is identified by a single
//! key, which is a string that indicates the content of the message."
//! Messages are small (Twitter-sized, at most 140 bytes) and expire by
//! TTL, counted from creation (Section V-D).

use bsub_traces::{NodeId, SimDuration, SimTime};
use std::sync::Arc;

/// Globally unique message identifier, assigned by the simulation
/// runner in generation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(u64);

impl MessageId {
    /// Creates an id from its raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        MessageId(raw)
    }

    /// The raw id value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A published message.
///
/// Cloning is cheap: the key is reference-counted, and protocols
/// replicate messages freely (PUSH keeps a copy on every node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Unique id.
    pub id: MessageId,
    /// The single key describing the content (Section V-A).
    pub key: Arc<str>,
    /// Payload size in bytes; at most 140 in the paper's workload.
    pub size: u32,
    /// Creation time; the TTL counts from here.
    pub created: SimTime,
    /// Maximum tolerable delay (Section V-D: "their maximum tolerable
    /// delay"); the message is worthless past `created + ttl`.
    pub ttl: SimDuration,
    /// The node that published the message.
    pub producer: NodeId,
}

impl Message {
    /// The instant the message expires.
    #[must_use]
    pub fn expiry(&self) -> SimTime {
        self.created + self.ttl
    }

    /// Whether the message has outlived its TTL at `now`.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        now > self.expiry()
    }

    /// The message's age at `now` (zero if `now` precedes creation).
    #[must_use]
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(created_secs: u64, ttl_secs: u64) -> Message {
        Message {
            id: MessageId::new(1),
            key: "topic".into(),
            size: 140,
            created: SimTime::from_secs(created_secs),
            ttl: SimDuration::from_secs(ttl_secs),
            producer: NodeId::new(0),
        }
    }

    #[test]
    fn expiry_is_created_plus_ttl() {
        let m = msg(100, 50);
        assert_eq!(m.expiry(), SimTime::from_secs(150));
    }

    #[test]
    fn expired_strictly_after_expiry() {
        let m = msg(100, 50);
        assert!(!m.is_expired(SimTime::from_secs(150)), "at expiry: valid");
        assert!(m.is_expired(SimTime::from_secs(151)));
        assert!(!m.is_expired(SimTime::from_secs(0)));
    }

    #[test]
    fn age_saturates_before_creation() {
        let m = msg(100, 50);
        assert_eq!(m.age(SimTime::from_secs(130)).as_secs(), 30);
        assert_eq!(m.age(SimTime::from_secs(50)), SimDuration::ZERO);
    }

    #[test]
    fn clone_shares_key() {
        let m = msg(0, 10);
        let c = m.clone();
        assert!(Arc::ptr_eq(&m.key, &c.key));
        assert_eq!(m, c);
    }

    #[test]
    fn id_display_and_raw() {
        let id = MessageId::new(42);
        assert_eq!(id.to_string(), "m42");
        assert_eq!(id.raw(), 42);
    }
}
